//! Property tests for `ncql_core::rewrite`: the optimizer is a fixpoint
//! operator (its output never fires again — idempotence, which also pins
//! termination of the pass loop), rewriting preserves values on closed
//! queries, and every rule is a no-op on expressions that are already in
//! normal form for it (open arguments defeat constant folding, un-nested
//! maps defeat fusion, binder-entangled bodies defeat hoisting).

use ncql_core::eval::{eval_with_stats, EvalConfig};
use ncql_core::expr::Expr;
use ncql_core::rewrite::optimize;
use ncql_object::{Type, Value};
use proptest::prelude::*;

fn xor_combiner() -> Expr {
    Expr::lam2(
        "a",
        "b",
        Type::prod(Type::Bool, Type::Bool),
        Expr::ite(
            Expr::var("a"),
            Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
            Expr::var("b"),
        ),
    )
}

/// The template family shared with the bound property suite: recursors, a
/// two-singleton `ext` map, and an `esr` fold, parameterized by the argument.
fn query_over(shape: u64, arg: Expr, shift: u64) -> Expr {
    match shape % 4 {
        0 => Expr::dcr(
            Expr::bool_val(false),
            Expr::lam("y", Type::Base, Expr::bool_val(true)),
            xor_combiner(),
            arg,
        ),
        1 => Expr::dcr(
            Expr::nat(0),
            Expr::lam(
                "x",
                Type::Base,
                Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
            ),
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::Nat, Type::Nat),
                Expr::extern_call("nat_add", vec![Expr::var("a"), Expr::var("b")]),
            ),
            arg,
        ),
        2 => Expr::ext(
            Expr::lam(
                "x",
                Type::Base,
                Expr::union(
                    Expr::singleton(Expr::var("x")),
                    Expr::singleton(Expr::extern_call(
                        "nat_to_atom",
                        vec![Expr::extern_call(
                            "nat_add",
                            vec![
                                Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
                                Expr::nat(shift),
                            ],
                        )],
                    )),
                ),
            ),
            arg,
        ),
        _ => Expr::esr(
            Expr::bool_val(false),
            Expr::lam2(
                "y",
                "acc",
                Type::prod(Type::Base, Type::Bool),
                Expr::ite(
                    Expr::var("acc"),
                    Expr::bool_val(false),
                    Expr::bool_val(true),
                ),
            ),
            arg,
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimize_is_idempotent_on_closed_queries(
        shape in 0u64..4,
        atoms in proptest::collection::vec(0u64..500, 0..40),
        shift in 1u64..40,
    ) {
        let q = query_over(shape, Expr::constant(Value::atom_set(atoms)), shift);
        let config = EvalConfig::default();
        let once = optimize(&q, &[], &config);
        let twice = optimize(&once.expr, &[], &config);
        prop_assert!(
            twice.fired.is_empty(),
            "shape {shape}: the optimizer fired again on its own output: {:?}",
            twice.fired.iter().map(|f| f.rule).collect::<Vec<_>>()
        );
        prop_assert_eq!(&twice.expr, &once.expr, "shape {shape}: fixpoint drifted");
    }

    #[test]
    fn optimize_preserves_closed_values(
        shape in 0u64..4,
        atoms in proptest::collection::vec(0u64..500, 0..40),
        shift in 1u64..40,
    ) {
        let q = query_over(shape, Expr::constant(Value::atom_set(atoms)), shift);
        let rewritten = optimize(&q, &[], &EvalConfig::default()).expr;
        let (raw_value, raw_stats) = eval_with_stats(&q).expect("raw eval");
        let (opt_value, opt_stats) = eval_with_stats(&rewritten).expect("optimized eval");
        prop_assert_eq!(opt_value, raw_value, "shape {shape}: value changed");
        prop_assert!(
            opt_stats.work <= raw_stats.work,
            "shape {shape}: measured work regressed ({} > {})",
            opt_stats.work,
            raw_stats.work
        );
    }

    #[test]
    fn every_rule_is_a_noop_on_open_normal_forms(
        shape in 0u64..4,
        shift in 1u64..40,
    ) {
        // With a free schema relation as the argument nothing is closed (no
        // constant folding), no map is nested (no fusion), no leaf filter
        // exists (no pushdown), and every combiner body touches its binders
        // (no hoisting): the whole rule set must leave the query untouched.
        let q = query_over(shape, Expr::var("r"), shift);
        let schema = vec![("r".to_string(), Type::set(Type::Base))];
        let outcome = optimize(&q, &schema, &EvalConfig::default());
        prop_assert!(
            outcome.fired.is_empty(),
            "shape {shape}: fired on a normal form: {:?}",
            outcome.fired.iter().map(|f| f.rule).collect::<Vec<_>>()
        );
        prop_assert_eq!(&outcome.expr, &q, "shape {shape}: expression changed");
    }
}
