//! E7 — PTIME vs NC: wall-clock of the parallel evaluation backend vs the
//! sequential backend on the dcr transitive closure, plus the large-set
//! speedup criterion: a dcr aggregate over a set of 2^14 elements at
//! `parallelism = 4` must beat the sequential backend.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::{eval_closed, EvalConfig};
use ncql_core::expr::Expr;
use ncql_core::parallel::ParallelEvaluator;
use ncql_object::Value;
use ncql_queries::{aggregates, datagen, graph};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ptime_vs_nc");
    group.sample_size(10).warm_up_time(Duration::from_millis(200)).measurement_time(Duration::from_secs(1));
    for n in [16u64, 32] {
        let query = graph::tc_dcr(Expr::Const(datagen::path_graph(n).to_value()));
        group.bench_with_input(BenchmarkId::new("parallel_dcr", n), &n, |b, _| {
            b.iter(|| {
                let mut ev = ParallelEvaluator::with_config(EvalConfig {
                    parallelism: Some(4),
                    parallel_cutoff: 256,
                    ..EvalConfig::default()
                });
                ev.eval_closed(&query).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("sequential_dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&query).unwrap())
        });
    }
    // The speedup criterion: sum of atom values over a set of 2^14 elements —
    // 16384 independent leaf applications followed by a combining tree.
    let n = 1u64 << 14;
    let big = Expr::Const(Value::atom_set(0..n));
    let sum = aggregates::sum_dcr(big, |x| Expr::extern_call("atom_to_nat", vec![x]));
    group.bench_with_input(BenchmarkId::new("parallel_sum_dcr", n), &n, |b, _| {
        b.iter(|| {
            let mut ev = ParallelEvaluator::with_config(EvalConfig {
                parallelism: Some(4),
                ..EvalConfig::default()
            });
            ev.eval_closed(&sum).unwrap()
        })
    });
    group.bench_with_input(BenchmarkId::new("sequential_sum_dcr", n), &n, |b, _| {
        b.iter(|| eval_closed(&sum).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
