//! E7 — PTIME vs NC: wall-clock of the parallel evaluation backend vs the
//! sequential backend on the dcr transitive closure, plus the large-set
//! speedup criterion: a dcr aggregate over a set of 2^14 elements at
//! `parallelism = 4` must beat the sequential backend. The aggregate is also
//! run through the engine's prepared-statement path: `sum_prepared` binds the
//! input set as a parameter of a plan prepared once (`prepare_with_schema` +
//! `execute_with_bindings`), `sum_cold` re-runs the front end per execution —
//! prepared execution skips parse + typecheck entirely.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::{eval_closed, EvalConfig};
use ncql_core::expr::Expr;
use ncql_engine::SessionBuilder;
use ncql_object::{Type, Value};
use ncql_queries::{aggregates, datagen, graph};
use std::time::Duration;

/// The sum aggregate over a bound set `s`, as surface text — the prepared
/// statement the amortized variants execute with per-call bindings.
const SUM_TEXT: &str = "dcr(0, \\x: atom. atom_to_nat(x), \
                        \\p: (nat * nat). nat_add(pi1 p, pi2 p), s)";

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ptime_vs_nc");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));
    for n in [16u64, 32] {
        let query = graph::tc_dcr(Expr::constant(datagen::path_graph(n).to_value()));
        let parallel_session = SessionBuilder::new()
            .parallelism(Some(4))
            .parallel_cutoff(256)
            .build();
        group.bench_with_input(BenchmarkId::new("parallel_dcr", n), &n, |b, _| {
            b.iter(|| parallel_session.evaluate(&query).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sequential_dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&query).unwrap())
        });
    }
    // The speedup criterion: sum of atom values over a set of 2^14 elements —
    // 16384 independent leaf applications followed by a combining tree.
    let n = 1u64 << 14;
    let big = Expr::constant(Value::atom_set(0..n));
    let sum = aggregates::sum_dcr(big, |x| Expr::extern_call("atom_to_nat", vec![x]));
    let parallel_session = SessionBuilder::new()
        .config(EvalConfig {
            parallelism: Some(4),
            ..EvalConfig::default()
        })
        .build();
    group.bench_with_input(BenchmarkId::new("parallel_sum_dcr", n), &n, |b, _| {
        b.iter(|| parallel_session.evaluate(&sum).unwrap())
    });
    group.bench_with_input(BenchmarkId::new("sequential_sum_dcr", n), &n, |b, _| {
        b.iter(|| eval_closed(&sum).unwrap())
    });
    // The fork-overhead delta the work-stealing pool removes: the session
    // above reuses one persistent worker set across iterations, while this
    // variant pays pool construction + lazy spawn + join on every call — the
    // cost every parallel region used to pay per `std::thread::scope` fork.
    group.bench_with_input(
        BenchmarkId::new("parallel_sum_dcr_cold_pool", n),
        &n,
        |b, _| {
            b.iter(|| {
                let cold = SessionBuilder::new()
                    .config(EvalConfig {
                        parallelism: Some(4),
                        ..EvalConfig::default()
                    })
                    .build();
                cold.evaluate(&sum).unwrap()
            })
        },
    );

    // Amortized vs cold on the engine path: the same parameterized aggregate,
    // prepared once vs front-end per execution, on both backends.
    let schema = vec![("s".to_string(), Type::set(Type::Base))];
    let bindings = vec![("s".to_string(), Value::atom_set(0..n))];
    for (label, parallelism) in [("seq", None), ("par4", Some(4))] {
        let cold = SessionBuilder::new()
            .parallelism(parallelism)
            .cache_capacity(0)
            .build();
        group.bench_with_input(
            BenchmarkId::new(format!("sum_cold_{label}"), n),
            &n,
            |b, _| {
                b.iter(|| {
                    let q = cold.prepare_with_schema(SUM_TEXT, &schema).unwrap();
                    cold.execute_with_bindings(&q, &bindings).unwrap()
                })
            },
        );
        let warm = SessionBuilder::new().parallelism(parallelism).build();
        let prepared = warm.prepare_with_schema(SUM_TEXT, &schema).unwrap();
        group.bench_with_input(
            BenchmarkId::new(format!("sum_prepared_{label}"), n),
            &n,
            |b, _| b.iter(|| warm.execute_with_bindings(&prepared, &bindings).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
