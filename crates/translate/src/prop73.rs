//! Proposition 7.3: over ordered databases, `dcr` and `log-loop` have the same
//! expressive power — realized here as two instrumented evaluation strategies.
//!
//! **Direction 1 (`dcr` via `log-loop`)** — [`HalvingSimulator::dcr_by_halving`]:
//! first apply `f` to every element of the input (one parallel step), obtaining a
//! sequence ordered by the lifted `≤`; then repeatedly combine *adjacent* pairs
//! `u(b₁, b₂), u(b₃, b₄), …` (padding an odd tail with the identity `e`), halving
//! the sequence each round. The order relation is what identifies the odd/even
//! positions (in the syntactic encoding this is where transitive closure over the
//! order is used); after exactly `⌈log₂ m⌉` rounds a single value remains, which
//! associativity and commutativity of `u` guarantee to be `dcr(e, f, u)(x)`.
//!
//! **Direction 2 (`log-loop` via `dcr`)** — [`HalvingSimulator::log_loop_by_dcr`]:
//! a divide-and-conquer pass over the counting set whose carrier values are pairs
//! `(cardinality, table of iterates f⁰(y), f¹(y), …)`; the combiner adds the
//! cardinalities and extends the iterate table to `⌈log(i+j+1)⌉` entries — the
//! paper's `u((i, cᵢ), (j, cⱼ)) = (i+j, c₍ᵢ₊ⱼ₎)` combiner. The total number of
//! extra `f` applications is linear in `|x|` (polynomial overhead).

use ncql_core::error::EvalError;
use ncql_core::eval::{log_rounds, EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_core::EvalResult;
use ncql_object::Value;

/// Result of a simulation run, with the instrumentation the experiments report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimulationOutcome {
    /// The computed value (must equal the direct semantics).
    pub value: Value,
    /// Number of sequential halving/combining rounds performed.
    pub rounds: u64,
    /// Number of combiner (`u`) applications.
    pub combiner_applications: u64,
    /// Number of `f` applications (for `log-loop` via `dcr`: iterate-table
    /// extensions; for `dcr` via halving: the initial per-element map).
    pub f_applications: u64,
}

/// Evaluation-strategy simulator for both directions of Proposition 7.3.
pub struct HalvingSimulator {
    evaluator: Evaluator,
}

impl Default for HalvingSimulator {
    fn default() -> Self {
        HalvingSimulator::new(EvalConfig::default())
    }
}

impl HalvingSimulator {
    /// Create a simulator with an explicit evaluator configuration.
    pub fn new(config: EvalConfig) -> HalvingSimulator {
        HalvingSimulator {
            evaluator: Evaluator::new(config),
        }
    }

    fn apply1(&mut self, f: &Expr, arg: &Value) -> EvalResult<Value> {
        let call = Expr::app(f.clone(), Expr::var("%sim_x"));
        self.evaluator
            .eval_with_bindings(&call, &[("%sim_x".to_string(), arg.clone())])
    }

    fn apply2(&mut self, u: &Expr, a: &Value, b: &Value) -> EvalResult<Value> {
        let call = Expr::app(
            u.clone(),
            Expr::pair(Expr::var("%sim_a"), Expr::var("%sim_b")),
        );
        self.evaluator.eval_with_bindings(
            &call,
            &[
                ("%sim_a".to_string(), a.clone()),
                ("%sim_b".to_string(), b.clone()),
            ],
        )
    }

    /// Direction 1: compute `dcr(e, f, u)(x)` with the order-driven halving
    /// strategy. The number of rounds is `⌈log₂ m⌉` where `m = |x|` (0 for empty
    /// or singleton inputs).
    pub fn dcr_by_halving(
        &mut self,
        e: &Expr,
        f: &Expr,
        u: &Expr,
        x: &Value,
    ) -> EvalResult<SimulationOutcome> {
        let set = x
            .as_set()
            .ok_or_else(|| EvalError::stuck(format!("dcr argument is not a set: {x}")))?;
        let e_val = self.evaluator.eval_closed(e)?;
        if set.is_empty() {
            return Ok(SimulationOutcome {
                value: e_val,
                rounds: 0,
                combiner_applications: 0,
                f_applications: 0,
            });
        }
        // One parallel step: f over every element, in the lifted order.
        let mut current: Vec<Value> = Vec::with_capacity(set.len());
        let mut f_applications = 0u64;
        for elem in set.iter() {
            current.push(self.apply1(f, elem)?);
            f_applications += 1;
        }
        let mut rounds = 0u64;
        let mut combiner_applications = 0u64;
        while current.len() > 1 {
            rounds += 1;
            let mut next = Vec::with_capacity(current.len().div_ceil(2));
            let mut it = current.chunks(2);
            for chunk in &mut it {
                match chunk {
                    [a, b] => {
                        next.push(self.apply2(u, a, b)?);
                        combiner_applications += 1;
                    }
                    [a] => {
                        // Odd tail: pair with the identity e, as in the paper's
                        // g(y) = {u(b₁,b₂), …, u(b_m, e)} for odd m.
                        next.push(self.apply2(u, a, &e_val)?);
                        combiner_applications += 1;
                    }
                    _ => unreachable!("chunks(2) yields one- or two-element slices"),
                }
            }
            current = next;
        }
        Ok(SimulationOutcome {
            value: current.pop().expect("non-empty input leaves one value"),
            rounds,
            combiner_applications,
            f_applications,
        })
    }

    /// Direction 2: compute `log-loop(f)(x, y)` by a divide-and-conquer pass over
    /// `x` carrying `(cardinality, iterate table)` pairs.
    pub fn log_loop_by_dcr(
        &mut self,
        f: &Expr,
        x: &Value,
        y: &Value,
    ) -> EvalResult<SimulationOutcome> {
        let set = x
            .as_set()
            .ok_or_else(|| EvalError::stuck(format!("log-loop counting set is not a set: {x}")))?;
        let n = set.len();
        let mut f_applications = 0u64;
        let mut combiner_applications = 0u64;
        // The iterate table is shared/extended as the divide-and-conquer proceeds;
        // each entry k holds f^k(y).
        let mut table: Vec<Value> = vec![y.clone()];
        let extend_to = |this: &mut Self,
                         table: &mut Vec<Value>,
                         k: usize,
                         f_apps: &mut u64|
         -> EvalResult<()> {
            while table.len() <= k {
                let last = table.last().expect("table starts non-empty").clone();
                table.push(this.apply1(f, &last)?);
                *f_apps += 1;
            }
            Ok(())
        };

        // Divide and conquer over the element count: each leaf contributes
        // cardinality 1; combining (i, ·) and (j, ·) yields i + j and requires the
        // iterate table up to ⌈log(i+j+1)⌉.
        let mut rounds = 0u64;
        if n > 0 {
            // Simulate the combining tree level by level over the leaf counts.
            let mut level: Vec<usize> = vec![1; n];
            while level.len() > 1 {
                rounds += 1;
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                for chunk in level.chunks(2) {
                    let total: usize = chunk.iter().sum();
                    let needed = log_rounds(total) as usize;
                    extend_to(self, &mut table, needed, &mut f_applications)?;
                    combiner_applications += 1;
                    next.push(total);
                }
                level = next;
            }
        }
        let needed = log_rounds(n) as usize;
        extend_to(self, &mut table, needed, &mut f_applications)?;
        Ok(SimulationOutcome {
            value: table[needed].clone(),
            rounds,
            combiner_applications,
            f_applications,
        })
    }
}

/// Convenience: check that the halving simulation of a `dcr` instance agrees
/// with the direct evaluator and report both outcomes.
pub fn verify_dcr_halving(
    e: &Expr,
    f: &Expr,
    u: &Expr,
    x: &Value,
) -> EvalResult<(Value, SimulationOutcome)> {
    let direct_expr = Expr::dcr(e.clone(), f.clone(), u.clone(), Expr::constant(x.clone()));
    let direct = ncql_core::eval::eval_closed(&direct_expr)?;
    let mut sim = HalvingSimulator::default();
    let outcome = sim.dcr_by_halving(e, f, u, x)?;
    Ok((direct, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::derived;
    use ncql_object::Type;

    fn atoms(v: Vec<u64>) -> Value {
        Value::atom_set(v)
    }

    fn xor_u() -> Expr {
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            derived::xor(Expr::var("a"), Expr::var("b")),
        )
    }

    #[test]
    fn halving_computes_parity_with_log_rounds() {
        let f = Expr::lam("y", Type::Base, Expr::bool_val(true));
        for n in [0usize, 1, 2, 3, 4, 7, 8, 9, 31, 32, 100] {
            let x = atoms((0..n as u64).collect());
            let (direct, outcome) =
                verify_dcr_halving(&Expr::bool_val(false), &f, &xor_u(), &x).unwrap();
            assert_eq!(direct, outcome.value, "value mismatch at n = {n}");
            let expected_rounds = if n <= 1 {
                0
            } else {
                (n as f64).log2().ceil() as u64
            };
            assert_eq!(outcome.rounds, expected_rounds, "rounds at n = {n}");
        }
    }

    #[test]
    fn halving_computes_transitive_closure() {
        let pairs = vec![(0u64, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let r = Value::relation_from_pairs(pairs);
        let rel_ty = Type::binary_relation();
        let f = Expr::lam("y", Type::Base, Expr::constant(r.clone()));
        let u = Expr::lam2(
            "r1",
            "r2",
            Type::prod(rel_ty.clone(), rel_ty),
            Expr::union(
                Expr::union(Expr::var("r1"), Expr::var("r2")),
                derived::compose(
                    Type::Base,
                    Type::Base,
                    Type::Base,
                    Expr::var("r1"),
                    Expr::var("r2"),
                ),
            ),
        );
        let vertices = atoms((0..5).collect());
        let (direct, outcome) = verify_dcr_halving(
            &Expr::empty(Type::prod(Type::Base, Type::Base)),
            &f,
            &u,
            &vertices,
        )
        .unwrap();
        assert_eq!(direct, outcome.value);
        assert_eq!(outcome.rounds, 3); // ⌈log₂ 5⌉
                                       // The cycle's closure is complete: 25 pairs.
        assert_eq!(outcome.value.cardinality(), Some(25));
    }

    #[test]
    fn log_loop_by_dcr_agrees_with_direct_log_loop() {
        // Body: squaring step on a relation; counting set of size n gives
        // ⌈log(n+1)⌉ applications.
        let rel_ty = Type::binary_relation();
        let path = Value::relation_from_pairs((0..10u64).map(|i| (i, i + 1)));
        let body = Expr::lam(
            "s",
            rel_ty.clone(),
            Expr::union(
                Expr::var("s"),
                derived::compose(
                    Type::Base,
                    Type::Base,
                    Type::Base,
                    Expr::var("s"),
                    Expr::var("s"),
                ),
            ),
        );
        for n in [0usize, 1, 3, 5, 11] {
            let counting = atoms((0..n as u64).collect());
            let direct = ncql_core::eval::eval_closed(&Expr::log_loop(
                body.clone(),
                Expr::constant(counting.clone()),
                Expr::constant(path.clone()),
            ))
            .unwrap();
            let mut sim = HalvingSimulator::default();
            let outcome = sim.log_loop_by_dcr(&body, &counting, &path).unwrap();
            assert_eq!(direct, outcome.value, "n = {n}");
        }
    }

    #[test]
    fn log_loop_by_dcr_has_polynomial_overhead() {
        let body = Expr::lam(
            "c",
            Type::Nat,
            Expr::extern_call("nat_add", vec![Expr::var("c"), Expr::nat(1)]),
        );
        let n = 200usize;
        let counting = atoms((0..n as u64).collect());
        let mut sim = HalvingSimulator::default();
        let outcome = sim
            .log_loop_by_dcr(&body, &counting, &Value::Nat(0))
            .unwrap();
        // The value is the iteration count ⌈log(n+1)⌉.
        assert_eq!(outcome.value, Value::Nat(log_rounds(n)));
        // Overhead: at most one f application per combiner application plus the
        // final table entries — linear, not exponential.
        assert!(outcome.f_applications <= outcome.combiner_applications + log_rounds(n) + 1);
        assert!(outcome.combiner_applications < 2 * n as u64);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let f = Expr::lam("y", Type::Base, Expr::bool_val(true));
        let mut sim = HalvingSimulator::default();
        let empty = sim
            .dcr_by_halving(&Expr::bool_val(false), &f, &xor_u(), &Value::empty_set())
            .unwrap();
        assert_eq!(empty.value, Value::Bool(false));
        assert_eq!(empty.rounds, 0);
        let single = sim
            .dcr_by_halving(&Expr::bool_val(false), &f, &xor_u(), &atoms(vec![7]))
            .unwrap();
        assert_eq!(single.value, Value::Bool(true));
        assert_eq!(single.rounds, 0);
        assert_eq!(single.combiner_applications, 0);
    }
}
