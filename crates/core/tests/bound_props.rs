//! Property tests for the prepare-time cost bounds of `ncql_core::analyze`:
//! for randomly generated queries from the differential template family, the
//! measured `CostStats` must sit between the analyser's guaranteed floor and
//! its upper bound — on the sequential backend and on the work-stealing pool
//! (random thread count, pool size and steal seed), whose stats are
//! bit-identical by the parallel backend's contract.
//!
//! A second property analyses the *open* form of each template once (the set
//! argument is a free schema relation `r`) and checks the one symbolic bound
//! against many concrete cardinalities — the "analyse once, execute many"
//! contract the engine relies on.

use ncql_core::analyze::{analyze_query, QueryAnalysis};
use ncql_core::eval::{eval_with_stats, CostStats, EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_core::externs::ExternRegistry;
use ncql_core::parallel::ParallelEvaluator;
use ncql_object::{Type, Value};
use proptest::prelude::*;

fn xor_combiner() -> Expr {
    Expr::lam2(
        "a",
        "b",
        Type::prod(Type::Bool, Type::Bool),
        Expr::ite(
            Expr::var("a"),
            Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
            Expr::var("b"),
        ),
    )
}

/// The template family of the parallel property suite, parameterized by the
/// set argument so the same shapes serve the closed and the open property.
fn query_over(shape: u64, arg: Expr, shift: u64) -> Expr {
    match shape % 4 {
        0 => Expr::dcr(
            Expr::bool_val(false),
            Expr::lam("y", Type::Base, Expr::bool_val(true)),
            xor_combiner(),
            arg,
        ),
        1 => Expr::dcr(
            Expr::nat(0),
            Expr::lam(
                "x",
                Type::Base,
                Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
            ),
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::Nat, Type::Nat),
                Expr::extern_call("nat_add", vec![Expr::var("a"), Expr::var("b")]),
            ),
            arg,
        ),
        2 => Expr::ext(
            Expr::lam(
                "x",
                Type::Base,
                Expr::union(
                    Expr::singleton(Expr::var("x")),
                    Expr::singleton(Expr::extern_call(
                        "nat_to_atom",
                        vec![Expr::extern_call(
                            "nat_add",
                            vec![
                                Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
                                Expr::nat(shift),
                            ],
                        )],
                    )),
                ),
            ),
            arg,
        ),
        _ => Expr::esr(
            Expr::bool_val(false),
            Expr::lam2(
                "y",
                "acc",
                Type::prod(Type::Base, Type::Bool),
                Expr::ite(
                    Expr::var("acc"),
                    Expr::bool_val(false),
                    Expr::bool_val(true),
                ),
            ),
            arg,
        ),
    }
}

/// Assert floor ≤ measured ≤ bound with the given cardinality lookup; the
/// template family must always get finite bounds.
fn assert_covers(
    analysis: &QueryAnalysis,
    stats: &CostStats,
    lookup: &dyn Fn(&str) -> Option<u64>,
    context: &str,
) {
    let cost = &analysis.cost;
    let work_hi = cost
        .work
        .eval(lookup)
        .unwrap_or_else(|| panic!("{context}: work bound not finite"));
    let span_hi = cost
        .span
        .eval(lookup)
        .unwrap_or_else(|| panic!("{context}: span bound not finite"));
    let floor = cost.work_floor.eval(lookup).unwrap_or(0);
    assert!(
        floor <= stats.work,
        "{context}: floor {floor} exceeds measured work {}",
        stats.work
    );
    assert!(
        stats.work <= work_hi,
        "{context}: measured work {} exceeds bound {work_hi}",
        stats.work
    );
    assert!(
        stats.span <= span_hi,
        "{context}: measured span {} exceeds bound {span_hi}",
        stats.span
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn closed_bounds_cover_both_backends(
        shape in 0u64..4,
        atoms in proptest::collection::vec(0u64..500, 0..50),
        shift in 1u64..40,
        threads in 2usize..9,
        pool_threads in 2usize..10,
        steal_seed in proptest::prelude::any::<u64>(),
    ) {
        let q = query_over(shape, Expr::constant(Value::atom_set(atoms)), shift);
        let analysis = analyze_query(&q, &[], &ExternRegistry::standard());
        let (_, seq) = eval_with_stats(&q).expect("sequential eval");
        assert_covers(&analysis, &seq, &|_| None, &format!("shape {shape} (sequential)"));
        let mut par_ev = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(threads),
            parallel_cutoff: 1,
            pool_threads: Some(pool_threads),
            pool_steal_seed: steal_seed,
            ..EvalConfig::default()
        });
        par_ev.eval_closed(&q).expect("parallel eval");
        assert_covers(&analysis, &par_ev.stats(), &|_| None, &format!("shape {shape} (parallel)"));
    }

    #[test]
    fn one_symbolic_bound_covers_many_cardinalities(
        shape in 0u64..4,
        sets in proptest::collection::vec(proptest::collection::vec(0u64..300, 0..40), 1..6),
        shift in 1u64..40,
    ) {
        // Analyse once, symbolically in |r| ...
        let q = query_over(shape, Expr::var("r"), shift);
        let schema = vec![("r".to_string(), Type::set(Type::Base))];
        let analysis = analyze_query(&q, &schema, &ExternRegistry::standard());
        // ... then check that one bound against every concrete input.
        for atoms in sets {
            let value = Value::atom_set(atoms);
            let m = value.cardinality().unwrap_or(0) as u64;
            let mut ev = Evaluator::new(EvalConfig::default());
            ev.eval_with_bindings(&q, &[("r".to_string(), value)])
                .expect("open eval");
            let lookup = |name: &str| (name == "r").then_some(m);
            assert_covers(&analysis, &ev.stats(), &lookup, &format!("shape {shape} at |r|={m}"));
        }
    }
}
