//! A tiny query runner for the surface syntax: pass a query as the first
//! argument (or pipe it on stdin) and it is parsed, type-checked, analysed for
//! recursion depth, and evaluated, with the cost model reported.
//!
//! Examples:
//!
//! ```text
//! cargo run --example query_repl -- "nat_add(20, 22)"
//! cargo run --example query_repl -- \
//!   "dcr(empty[(atom * atom)], \y: atom. {(@1,@2)} union {(@2,@3)}, \
//!        \p: ({(atom*atom)} * {(atom*atom)}). pi1 p union pi2 p, {@1} union {@2})"
//! echo "{@1} union {@2} union {@1}" | cargo run --example query_repl
//! ```

use ncql::core::eval::{EvalConfig, Evaluator};
use ncql::core::{analysis, typecheck};
use ncql::surface;
use std::io::Read;

fn main() {
    let text = match std::env::args().nth(1) {
        Some(arg) => arg,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("reading the query from stdin");
            buf
        }
    };
    let text = text.trim();
    if text.is_empty() {
        eprintln!("usage: query_repl \"<query>\"   (or pipe a query on stdin)");
        std::process::exit(2);
    }

    let expr = match surface::parse(text) {
        Ok(e) => e,
        Err(err) => {
            eprintln!("parse error: {err}");
            std::process::exit(1);
        }
    };
    println!("parsed      : {}", surface::print_expr(&expr));

    match typecheck::typecheck_closed(&expr) {
        Ok(ty) => println!("type        : {ty}"),
        Err(err) => {
            eprintln!("type error  : {err}");
            std::process::exit(1);
        }
    }
    let depth = analysis::recursion_depth(&expr);
    println!("depth       : {depth} (AC^{} by Theorem 6.1/6.2)", analysis::ac_level(&expr));

    let mut evaluator = Evaluator::new(EvalConfig::default());
    match evaluator.eval_closed(&expr) {
        Ok(value) => {
            let stats = evaluator.stats();
            println!("result      : {value}");
            println!("work / span : {} / {}", stats.work, stats.span);
        }
        Err(err) => {
            eprintln!("evaluation error: {err}");
            std::process::exit(1);
        }
    }
}
