//! Type checker for the NC query language (§3 typing rules plus the side
//! conditions of §2 for the bounded recursors).
//!
//! The checker infers a type for every expression in a typing context. λ-binders
//! are annotated, so inference is syntax-directed. The judgement implemented is
//! the obvious one for the rules listed in §3; the extra conditions are:
//!
//! * `bdcr`/`bsri`/`blog-loop`/`bloop` require the result type to be a PS-type
//!   (product of sets) so that the bounding intersection `⊓ b` is defined.
//! * `Eq`/`Leq` require both sides to have the same *object* type (no functions).
//! * External calls must match the signature registered in [`ExternRegistry`].
//!
//! Every [`TypeError`] is *located*: the failing check names the span of the
//! most specific subexpression it can (usually the operand whose type was
//! wrong), and [`infer`] attaches the enclosing node's span to anything that
//! bubbles out still unlocated — so errors from parsed queries always point
//! back into the source text.

use crate::error::{TypeError, TypeErrorKind};
use crate::expr::{Expr, ExprKind};
use crate::externs::ExternRegistry;
use crate::span::Span;
use ncql_object::{Type, Value};

/// A typing context: an association list from variable names to types (inner
/// bindings shadow outer ones).
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    bindings: Vec<(String, Type)>,
}

impl TypeEnv {
    /// The empty context.
    pub fn new() -> TypeEnv {
        TypeEnv {
            bindings: Vec::new(),
        }
    }

    /// Extend the context with one binding (returns a new context).
    pub fn extend(&self, name: impl Into<String>, ty: Type) -> TypeEnv {
        let mut bindings = self.bindings.clone();
        bindings.push((name.into(), ty));
        TypeEnv { bindings }
    }

    /// Look up a variable (innermost binding wins).
    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// Infer the type of a complex-object literal. Empty sets are given element type
/// `D` by convention; use [`ExprKind::Empty`] with an explicit element type when
/// a differently-typed empty set is needed.
pub fn value_type(v: &Value) -> Type {
    match v {
        Value::Atom(_) => Type::Base,
        Value::Bool(_) => Type::Bool,
        Value::Unit => Type::Unit,
        Value::Nat(_) => Type::Nat,
        Value::Pair(a, b) => Type::prod(value_type(a), value_type(b)),
        Value::Set(s) => match s.iter().next() {
            Some(first) => Type::set(value_type(first)),
            None => Type::set(Type::Base),
        },
    }
}

fn expect_eq(
    context: &str,
    expected: &Type,
    found: &Type,
    span: Option<Span>,
) -> Result<(), TypeError> {
    if expected == found {
        Ok(())
    } else {
        Err(TypeError::new(
            TypeErrorKind::Mismatch {
                context: context.to_string(),
                expected: expected.clone(),
                found: found.clone(),
            },
            span,
        ))
    }
}

fn expect_set(context: &str, ty: &Type, span: Option<Span>) -> Result<Type, TypeError> {
    match ty {
        Type::Set(t) => Ok((**t).clone()),
        _ => Err(TypeError::new(
            TypeErrorKind::NotASet {
                context: context.to_string(),
                found: ty.clone(),
            },
            span,
        )),
    }
}

fn expect_fun(context: &str, ty: &Type, span: Option<Span>) -> Result<(Type, Type), TypeError> {
    match ty {
        Type::Fun(a, b) => Ok(((**a).clone(), (**b).clone())),
        _ => Err(TypeError::new(
            TypeErrorKind::NotAFunction {
                context: context.to_string(),
                found: ty.clone(),
            },
            span,
        )),
    }
}

fn expect_bool(context: &str, ty: &Type, span: Option<Span>) -> Result<(), TypeError> {
    if *ty == Type::Bool {
        Ok(())
    } else {
        Err(TypeError::new(
            TypeErrorKind::NotABool {
                context: context.to_string(),
                found: ty.clone(),
            },
            span,
        ))
    }
}

fn expect_comparable(context: &str, ty: &Type, span: Option<Span>) -> Result<(), TypeError> {
    if ty.is_object_type() {
        Ok(())
    } else {
        Err(TypeError::new(
            TypeErrorKind::NotComparable {
                context: context.to_string(),
                found: ty.clone(),
            },
            span,
        ))
    }
}

fn expect_ps(context: &str, ty: &Type, span: Option<Span>) -> Result<(), TypeError> {
    if ty.is_ps_type() {
        Ok(())
    } else {
        Err(TypeError::new(
            TypeErrorKind::NotAPsType {
                context: context.to_string(),
                found: ty.clone(),
            },
            span,
        ))
    }
}

/// Type-check the shared shape of `dcr`/`sru`: `e : t`, `f : s → t`,
/// `u : t × t → t`, `arg : {s}`; result `t`.
fn check_union_recursor(
    name: &str,
    env: &TypeEnv,
    sigma: &ExternRegistry,
    e: &Expr,
    f: &Expr,
    u: &Expr,
    arg: &Expr,
) -> Result<Type, TypeError> {
    let t = infer(env, sigma, e)?;
    let f_ty = infer(env, sigma, f)?;
    let (s, t_from_f) = expect_fun(&format!("{name} singleton map f"), &f_ty, f.span)?;
    expect_eq(&format!("{name} f result vs e"), &t, &t_from_f, f.span)?;
    let u_ty = infer(env, sigma, u)?;
    let (u_dom, u_cod) = expect_fun(&format!("{name} combiner u"), &u_ty, u.span)?;
    expect_eq(
        &format!("{name} combiner domain"),
        &Type::prod(t.clone(), t.clone()),
        &u_dom,
        u.span,
    )?;
    expect_eq(&format!("{name} combiner codomain"), &t, &u_cod, u.span)?;
    let arg_ty = infer(env, sigma, arg)?;
    let elem = expect_set(&format!("{name} argument"), &arg_ty, arg.span)?;
    expect_eq(
        &format!("{name} argument element type"),
        &s,
        &elem,
        arg.span,
    )?;
    Ok(t)
}

/// Type-check the shared shape of `sri`/`esr`: `e : t`, `i : s × t → t`,
/// `arg : {s}`; result `t`.
fn check_insert_recursor(
    name: &str,
    env: &TypeEnv,
    sigma: &ExternRegistry,
    e: &Expr,
    i: &Expr,
    arg: &Expr,
) -> Result<Type, TypeError> {
    let t = infer(env, sigma, e)?;
    let i_ty = infer(env, sigma, i)?;
    let (dom, cod) = expect_fun(&format!("{name} step i"), &i_ty, i.span)?;
    let (s, t_in) = match dom {
        Type::Prod(a, b) => ((*a).clone(), (*b).clone()),
        other => {
            return Err(TypeError::new(
                TypeErrorKind::NotAProduct {
                    context: format!("{name} step domain"),
                    found: other,
                },
                i.span,
            ))
        }
    };
    expect_eq(&format!("{name} step accumulator"), &t, &t_in, i.span)?;
    expect_eq(&format!("{name} step result"), &t, &cod, i.span)?;
    let arg_ty = infer(env, sigma, arg)?;
    let elem = expect_set(&format!("{name} argument"), &arg_ty, arg.span)?;
    expect_eq(
        &format!("{name} argument element type"),
        &s,
        &elem,
        arg.span,
    )?;
    Ok(t)
}

/// Type-check the shared shape of the iterators: `f : t → t`, `set : {s}`,
/// `init : t`; result `t`.
fn check_iterator(
    name: &str,
    env: &TypeEnv,
    sigma: &ExternRegistry,
    f: &Expr,
    set: &Expr,
    init: &Expr,
) -> Result<Type, TypeError> {
    let f_ty = infer(env, sigma, f)?;
    let (dom, cod) = expect_fun(&format!("{name} body"), &f_ty, f.span)?;
    expect_eq(
        &format!("{name} body must be an endofunction"),
        &dom,
        &cod,
        f.span,
    )?;
    let set_ty = infer(env, sigma, set)?;
    expect_set(&format!("{name} counting set"), &set_ty, set.span)?;
    let init_ty = infer(env, sigma, init)?;
    expect_eq(&format!("{name} initial value"), &dom, &init_ty, init.span)?;
    Ok(dom)
}

/// Infer the type of `expr` in context `env`, with external signatures from
/// `sigma`. Errors carry the span of the most specific locatable
/// subexpression (see the module docs).
pub fn infer(env: &TypeEnv, sigma: &ExternRegistry, expr: &Expr) -> Result<Type, TypeError> {
    infer_kind(env, sigma, expr).map_err(|e| e.with_span_if_missing(expr.span))
}

fn infer_kind(env: &TypeEnv, sigma: &ExternRegistry, expr: &Expr) -> Result<Type, TypeError> {
    match &expr.kind {
        ExprKind::Var(x) => env
            .lookup(x)
            .cloned()
            .ok_or_else(|| TypeErrorKind::UnboundVariable(x.clone()).into()),
        ExprKind::Lam(x, ty, body) => {
            let body_ty = infer(&env.extend(x.clone(), ty.clone()), sigma, body)?;
            Ok(Type::fun(ty.clone(), body_ty))
        }
        ExprKind::App(f, a) => {
            let f_ty = infer(env, sigma, f)?;
            let (dom, cod) = expect_fun("application", &f_ty, f.span)?;
            let a_ty = infer(env, sigma, a)?;
            expect_eq("application argument", &dom, &a_ty, a.span)?;
            Ok(cod)
        }
        ExprKind::Let(x, bound, body) => {
            let bound_ty = infer(env, sigma, bound)?;
            infer(&env.extend(x.clone(), bound_ty), sigma, body)
        }
        ExprKind::Unit => Ok(Type::Unit),
        ExprKind::Pair(a, b) => Ok(Type::prod(infer(env, sigma, a)?, infer(env, sigma, b)?)),
        ExprKind::Proj1(e) => match infer(env, sigma, e)? {
            Type::Prod(a, _) => Ok(*a),
            other => Err(TypeError::new(
                TypeErrorKind::NotAProduct {
                    context: "pi1".to_string(),
                    found: other,
                },
                e.span,
            )),
        },
        ExprKind::Proj2(e) => match infer(env, sigma, e)? {
            Type::Prod(_, b) => Ok(*b),
            other => Err(TypeError::new(
                TypeErrorKind::NotAProduct {
                    context: "pi2".to_string(),
                    found: other,
                },
                e.span,
            )),
        },
        ExprKind::Bool(_) => Ok(Type::Bool),
        ExprKind::If(c, t, e) => {
            let c_ty = infer(env, sigma, c)?;
            expect_bool("if condition", &c_ty, c.span)?;
            let t_ty = infer(env, sigma, t)?;
            let e_ty = infer(env, sigma, e)?;
            expect_eq("if branches", &t_ty, &e_ty, e.span)?;
            Ok(t_ty)
        }
        ExprKind::Eq(a, b) => {
            let a_ty = infer(env, sigma, a)?;
            let b_ty = infer(env, sigma, b)?;
            expect_comparable("equality", &a_ty, a.span)?;
            expect_eq("equality operands", &a_ty, &b_ty, b.span)?;
            Ok(Type::Bool)
        }
        ExprKind::Leq(a, b) => {
            let a_ty = infer(env, sigma, a)?;
            let b_ty = infer(env, sigma, b)?;
            expect_comparable("order comparison", &a_ty, a.span)?;
            expect_eq("order comparison operands", &a_ty, &b_ty, b.span)?;
            Ok(Type::Bool)
        }
        ExprKind::Const(v) => Ok(value_type(v)),
        ExprKind::Empty(t) => Ok(Type::set(t.clone())),
        ExprKind::Singleton(e) => Ok(Type::set(infer(env, sigma, e)?)),
        ExprKind::Union(a, b) => {
            let a_ty = infer(env, sigma, a)?;
            expect_set("union left operand", &a_ty, a.span)?;
            let b_ty = infer(env, sigma, b)?;
            expect_eq("union operands", &a_ty, &b_ty, b.span)?;
            Ok(a_ty)
        }
        ExprKind::IsEmpty(e) => {
            let ty = infer(env, sigma, e)?;
            expect_set("isempty", &ty, e.span)?;
            Ok(Type::Bool)
        }
        ExprKind::Ext(f, e) => {
            let f_ty = infer(env, sigma, f)?;
            let (dom, cod) = expect_fun("ext function", &f_ty, f.span)?;
            expect_set("ext function result", &cod, f.span)?;
            let e_ty = infer(env, sigma, e)?;
            let elem = expect_set("ext argument", &e_ty, e.span)?;
            expect_eq("ext argument element type", &dom, &elem, e.span)?;
            Ok(cod)
        }
        ExprKind::Dcr { e, f, u, arg } => check_union_recursor("dcr", env, sigma, e, f, u, arg),
        ExprKind::Sru { e, f, u, arg } => check_union_recursor("sru", env, sigma, e, f, u, arg),
        ExprKind::Sri { e, i, arg } => check_insert_recursor("sri", env, sigma, e, i, arg),
        ExprKind::Esr { e, i, arg } => check_insert_recursor("esr", env, sigma, e, i, arg),
        ExprKind::BDcr {
            e,
            f,
            u,
            bound,
            arg,
        } => {
            let t = check_union_recursor("bdcr", env, sigma, e, f, u, arg)?;
            expect_ps("bdcr result", &t, expr.span)?;
            let b_ty = infer(env, sigma, bound)?;
            expect_eq("bdcr bound", &t, &b_ty, bound.span)?;
            Ok(t)
        }
        ExprKind::BSri { e, i, bound, arg } => {
            let t = check_insert_recursor("bsri", env, sigma, e, i, arg)?;
            expect_ps("bsri result", &t, expr.span)?;
            let b_ty = infer(env, sigma, bound)?;
            expect_eq("bsri bound", &t, &b_ty, bound.span)?;
            Ok(t)
        }
        ExprKind::LogLoop { f, set, init } => check_iterator("log-loop", env, sigma, f, set, init),
        ExprKind::Loop { f, set, init } => check_iterator("loop", env, sigma, f, set, init),
        ExprKind::BLogLoop {
            f,
            bound,
            set,
            init,
        } => {
            let t = check_iterator("blog-loop", env, sigma, f, set, init)?;
            expect_ps("blog-loop result", &t, expr.span)?;
            let b_ty = infer(env, sigma, bound)?;
            expect_eq("blog-loop bound", &t, &b_ty, bound.span)?;
            Ok(t)
        }
        ExprKind::BLoop {
            f,
            bound,
            set,
            init,
        } => {
            let t = check_iterator("bloop", env, sigma, f, set, init)?;
            expect_ps("bloop result", &t, expr.span)?;
            let b_ty = infer(env, sigma, bound)?;
            expect_eq("bloop bound", &t, &b_ty, bound.span)?;
            Ok(t)
        }
        ExprKind::Extern(name, args) => {
            let ext = sigma
                .get(name)
                .ok_or_else(|| TypeErrorKind::UnknownExtern(name.clone()))?;
            if ext.params.len() != args.len() {
                return Err(TypeErrorKind::ExternArity {
                    name: name.clone(),
                    expected: ext.params.len(),
                    found: args.len(),
                }
                .into());
            }
            for (param, arg) in ext.params.iter().zip(args) {
                let arg_ty = infer(env, sigma, arg)?;
                // `card` and similar polymorphic aggregates declare their set
                // parameter as `{D}`; accept any set type for a declared set
                // parameter whose element type is `D` (width subtyping would be
                // overkill here).
                let compatible = param == &arg_ty
                    || matches!(
                        (param, &arg_ty),
                        (Type::Set(p), Type::Set(_)) if **p == Type::Base
                    );
                if !compatible {
                    return Err(TypeError::new(
                        TypeErrorKind::Mismatch {
                            context: format!("extern `{name}` argument"),
                            expected: param.clone(),
                            found: arg_ty,
                        },
                        arg.span,
                    ));
                }
            }
            Ok(ext.result.clone())
        }
    }
}

/// Type-check an expression in the given context with the standard Σ registry.
pub fn typecheck(env: &TypeEnv, expr: &Expr) -> Result<Type, TypeError> {
    infer(env, &ExternRegistry::standard(), expr)
}

/// Type-check a closed expression with the standard Σ registry.
pub fn typecheck_closed(expr: &Expr) -> Result<Type, TypeError> {
    typecheck(&TypeEnv::new(), expr)
}

/// Check that every type occurring in the expression (binder annotations, empty
/// set annotations, literal types, and the final type) is *flat*, i.e. the
/// expression lies inside the restricted language NRA¹ of §3.
pub fn check_flat(env: &TypeEnv, sigma: &ExternRegistry, expr: &Expr) -> Result<Type, TypeError> {
    let ty = infer(env, sigma, expr)?;
    let mut bad: Option<(Type, Option<Span>)> = None;
    expr.visit(&mut |e| {
        let candidate = match &e.kind {
            ExprKind::Lam(_, t, _) => Some(t.clone()),
            ExprKind::Empty(t) => Some(Type::set(t.clone())),
            ExprKind::Const(v) => Some(value_type(v)),
            _ => None,
        };
        if let Some(t) = candidate {
            if !t.is_flat() && bad.is_none() {
                bad = Some((t, e.span));
            }
        }
    });
    if let Some((found, span)) = bad {
        return Err(TypeError::new(
            TypeErrorKind::NotFlat {
                context: "NRA¹ annotation".to_string(),
                found,
            },
            span.or(expr.span),
        ));
    }
    if !ty.is_flat() {
        return Err(TypeError::new(
            TypeErrorKind::NotFlat {
                context: "NRA¹ result".to_string(),
                found: ty,
            },
            expr.span,
        ));
    }
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_object::Value;

    fn tc(e: &Expr) -> Result<Type, TypeError> {
        typecheck_closed(e)
    }

    #[test]
    fn constants_and_pairs() {
        assert_eq!(tc(&Expr::atom(3)).unwrap(), Type::Base);
        assert_eq!(tc(&Expr::bool_val(true)).unwrap(), Type::Bool);
        assert_eq!(
            tc(&Expr::pair(Expr::atom(1), Expr::bool_val(false))).unwrap(),
            Type::prod(Type::Base, Type::Bool)
        );
    }

    #[test]
    fn lambda_and_application() {
        let id = Expr::lam("x", Type::Base, Expr::var("x"));
        assert_eq!(tc(&id).unwrap(), Type::fun(Type::Base, Type::Base));
        assert_eq!(tc(&Expr::app(id, Expr::atom(1))).unwrap(), Type::Base);
    }

    #[test]
    fn application_argument_mismatch_is_rejected() {
        let id = Expr::lam("x", Type::Base, Expr::var("x"));
        assert!(tc(&Expr::app(id, Expr::bool_val(true))).is_err());
    }

    #[test]
    fn unbound_variable_is_rejected() {
        assert!(matches!(
            tc(&Expr::var("nope")).map_err(|e| e.kind),
            Err(TypeErrorKind::UnboundVariable(_))
        ));
    }

    #[test]
    fn sets_and_ext() {
        let f = Expr::lam("x", Type::Base, Expr::singleton(Expr::var("x")));
        let e = Expr::ext(f, Expr::constant(Value::atom_set(vec![1, 2])));
        assert_eq!(tc(&e).unwrap(), Type::set(Type::Base));
    }

    #[test]
    fn ext_requires_set_valued_function() {
        let f = Expr::lam("x", Type::Base, Expr::var("x"));
        let e = Expr::ext(f, Expr::constant(Value::atom_set(vec![1])));
        assert!(tc(&e).is_err());
    }

    #[test]
    fn union_requires_matching_element_types() {
        let e = Expr::union(
            Expr::singleton(Expr::atom(1)),
            Expr::singleton(Expr::bool_val(true)),
        );
        assert!(tc(&e).is_err());
    }

    #[test]
    fn dcr_typing() {
        // parity : {D} -> bool
        let parity = Expr::dcr(
            Expr::bool_val(false),
            Expr::lam("y", Type::Base, Expr::bool_val(true)),
            Expr::lam2(
                "v1",
                "v2",
                Type::prod(Type::Bool, Type::Bool),
                Expr::ite(
                    Expr::var("v1"),
                    Expr::ite(Expr::var("v2"), Expr::bool_val(false), Expr::bool_val(true)),
                    Expr::var("v2"),
                ),
            ),
            Expr::constant(Value::atom_set(vec![1, 2, 3])),
        );
        assert_eq!(tc(&parity).unwrap(), Type::Bool);
    }

    #[test]
    fn bdcr_requires_ps_type() {
        // bdcr with a boolean accumulator must be rejected: bool is not a PS-type.
        let bad = Expr::bdcr(
            Expr::bool_val(false),
            Expr::lam("y", Type::Base, Expr::bool_val(true)),
            Expr::lam2("a", "b", Type::prod(Type::Bool, Type::Bool), Expr::var("a")),
            Expr::bool_val(true),
            Expr::constant(Value::atom_set(vec![1])),
        );
        assert!(matches!(
            tc(&bad).map_err(|e| e.kind),
            Err(TypeErrorKind::NotAPsType { .. })
        ));
    }

    #[test]
    fn log_loop_typing() {
        let ty = Type::set(Type::Base);
        let f = Expr::lam("r", ty.clone(), Expr::var("r"));
        let e = Expr::log_loop(
            f,
            Expr::constant(Value::atom_set(vec![1, 2, 3])),
            Expr::empty(Type::Base),
        );
        assert_eq!(tc(&e).unwrap(), ty);
    }

    #[test]
    fn extern_typing_and_arity() {
        let ok = Expr::extern_call("nat_add", vec![Expr::nat(1), Expr::nat(2)]);
        assert_eq!(tc(&ok).unwrap(), Type::Nat);
        let bad_arity = Expr::extern_call("nat_add", vec![Expr::nat(1)]);
        assert!(matches!(
            tc(&bad_arity).map_err(|e| e.kind),
            Err(TypeErrorKind::ExternArity { .. })
        ));
        let unknown = Expr::extern_call("no_such_fn", vec![]);
        assert!(matches!(
            tc(&unknown).map_err(|e| e.kind),
            Err(TypeErrorKind::UnknownExtern(_))
        ));
    }

    #[test]
    fn equality_rejected_at_function_type() {
        let id = Expr::lam("x", Type::Base, Expr::var("x"));
        let e = Expr::eq(id.clone(), id);
        assert!(matches!(
            tc(&e).map_err(|e| e.kind),
            Err(TypeErrorKind::NotComparable { .. })
        ));
    }

    #[test]
    fn flat_check_accepts_relational_and_rejects_nested() {
        let sigma = ExternRegistry::standard();
        let flat = Expr::union(
            Expr::constant(Value::relation_from_pairs(vec![(1, 2)])),
            Expr::empty(Type::prod(Type::Base, Type::Base)),
        );
        assert!(check_flat(&TypeEnv::new(), &sigma, &flat).is_ok());
        let nested = Expr::singleton(Expr::constant(Value::atom_set(vec![1])));
        assert!(matches!(
            check_flat(&TypeEnv::new(), &sigma, &nested).map_err(|e| e.kind),
            Err(TypeErrorKind::NotFlat { .. })
        ));
    }

    #[test]
    fn if_branches_must_agree() {
        let e = Expr::ite(Expr::bool_val(true), Expr::atom(1), Expr::bool_val(false));
        assert!(tc(&e).is_err());
    }

    #[test]
    fn let_binding_types_flow_through() {
        let e = Expr::let_in(
            "x",
            Expr::singleton(Expr::atom(1)),
            Expr::union(Expr::var("x"), Expr::var("x")),
        );
        assert_eq!(tc(&e).unwrap(), Type::set(Type::Base));
    }
}
