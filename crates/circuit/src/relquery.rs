//! A small relational IR over the positional encoding of flat relations.
//!
//! Circuit compilation (§7.2) works with bit-string encodings; for flat relations
//! the paper notes that its string encoding and Immerman's positional encoding
//! are inter-translatable inside ACᵏ, so the compiler operates on the positional
//! one: a binary relation over an ordered universe of size `n` is an `n²`-bit
//! characteristic vector.
//!
//! `RelQuery` is the fragment of `NRA¹(dcr/log-loop, ≤)` the compiler supports:
//! the boolean relational operators (constant depth each), relational composition
//! (one unbounded-fan-in OR over AND pairs — depth 2), and the logarithmic
//! iterator `IterateLogN` whose compiled form unrolls `⌈log₂ n⌉` copies of its
//! body. Nesting `IterateLogN` `k` times therefore yields circuits of depth
//! `O(logᵏ n)`, which is the shape Theorem 6.2 predicts.

use crate::gate::GateId;
use serde::{Deserialize, Serialize};

/// A query over binary relations on an ordered universe of size `n`, in the
/// compilable fragment.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RelQuery {
    /// The `i`-th input relation.
    Input(usize),
    /// Inside an [`RelQuery::IterateLogN`] body: the current accumulator.
    Current,
    /// The empty relation.
    Empty,
    /// The full relation (every pair).
    Full,
    /// The identity (diagonal) relation.
    Identity,
    /// Union.
    Union(Box<RelQuery>, Box<RelQuery>),
    /// Intersection.
    Intersect(Box<RelQuery>, Box<RelQuery>),
    /// Difference (left minus right).
    Difference(Box<RelQuery>, Box<RelQuery>),
    /// Complement.
    Complement(Box<RelQuery>),
    /// Converse / transpose `r⁻¹`.
    Transpose(Box<RelQuery>),
    /// Relational composition `left ∘ right`.
    Compose(Box<RelQuery>, Box<RelQuery>),
    /// `⌈log₂ n⌉`-fold iteration: start from `init`, then repeatedly replace the
    /// accumulator by `body` (in which [`RelQuery::Current`] denotes the
    /// accumulator). This is the positional-encoding image of `log-loop` /
    /// `dcr`'s combining tower.
    IterateLogN {
        /// The initial accumulator.
        init: Box<RelQuery>,
        /// The loop body; `Current` refers to the accumulator.
        body: Box<RelQuery>,
    },
}

impl RelQuery {
    /// Union helper.
    pub fn union(a: RelQuery, b: RelQuery) -> RelQuery {
        RelQuery::Union(Box::new(a), Box::new(b))
    }

    /// Intersection helper.
    pub fn intersect(a: RelQuery, b: RelQuery) -> RelQuery {
        RelQuery::Intersect(Box::new(a), Box::new(b))
    }

    /// Difference helper.
    pub fn difference(a: RelQuery, b: RelQuery) -> RelQuery {
        RelQuery::Difference(Box::new(a), Box::new(b))
    }

    /// Composition helper.
    pub fn compose(a: RelQuery, b: RelQuery) -> RelQuery {
        RelQuery::Compose(Box::new(a), Box::new(b))
    }

    /// Transpose helper.
    pub fn transpose(a: RelQuery) -> RelQuery {
        RelQuery::Transpose(Box::new(a))
    }

    /// The transitive closure of a query: iterate squaring `⌈log n⌉` times —
    /// Example 7.1 in the positional IR.
    pub fn transitive_closure(r: RelQuery) -> RelQuery {
        RelQuery::IterateLogN {
            init: Box::new(r),
            body: Box::new(RelQuery::union(
                RelQuery::Current,
                RelQuery::compose(RelQuery::Current, RelQuery::Current),
            )),
        }
    }

    /// A family with iteration-nesting depth `k ≥ 1`, used by experiment E6: for
    /// `k = 1` it is the transitive closure of the input; each further level
    /// wraps the body in another `⌈log n⌉`-fold iteration applied to the outer
    /// accumulator (the inner `Current` shadows the outer one, exactly like the
    /// nested `log-loop`s of Example 7.2). The compiled circuit depth therefore
    /// grows by a `Θ(log n)` factor per level while the *semantics* stays the
    /// transitive closure, so correctness remains checkable at every `k`.
    pub fn nested_depth_k(k: usize) -> RelQuery {
        fn body(level: usize) -> RelQuery {
            if level <= 1 {
                RelQuery::union(
                    RelQuery::Current,
                    RelQuery::compose(RelQuery::Current, RelQuery::Current),
                )
            } else {
                RelQuery::IterateLogN {
                    init: Box::new(RelQuery::Current),
                    body: Box::new(body(level - 1)),
                }
            }
        }
        RelQuery::IterateLogN {
            init: Box::new(RelQuery::Input(0)),
            body: Box::new(body(k.max(1))),
        }
    }

    /// The iteration-nesting depth of the query (the `k` of Theorem 6.2).
    pub fn nesting_depth(&self) -> usize {
        match self {
            RelQuery::Input(_)
            | RelQuery::Current
            | RelQuery::Empty
            | RelQuery::Full
            | RelQuery::Identity => 0,
            RelQuery::Complement(a) | RelQuery::Transpose(a) => a.nesting_depth(),
            RelQuery::Union(a, b)
            | RelQuery::Intersect(a, b)
            | RelQuery::Difference(a, b)
            | RelQuery::Compose(a, b) => a.nesting_depth().max(b.nesting_depth()),
            RelQuery::IterateLogN { init, body } => {
                init.nesting_depth().max(1 + body.nesting_depth())
            }
        }
    }

    /// Number of distinct input relations referenced.
    pub fn num_inputs(&self) -> usize {
        match self {
            RelQuery::Input(i) => i + 1,
            RelQuery::Current | RelQuery::Empty | RelQuery::Full | RelQuery::Identity => 0,
            RelQuery::Complement(a) | RelQuery::Transpose(a) => a.num_inputs(),
            RelQuery::Union(a, b)
            | RelQuery::Intersect(a, b)
            | RelQuery::Difference(a, b)
            | RelQuery::Compose(a, b) => a.num_inputs().max(b.num_inputs()),
            RelQuery::IterateLogN { init, body } => init.num_inputs().max(body.num_inputs()),
        }
    }
}

/// A dense boolean matrix representation of a binary relation over `0 … n−1`,
/// used by the reference evaluator and by the compiler's wire bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitRelation {
    /// Universe size.
    pub n: usize,
    /// Row-major characteristic vector of length `n²`.
    pub bits: Vec<bool>,
}

impl BitRelation {
    /// The empty relation over a universe of size `n`.
    pub fn empty(n: usize) -> BitRelation {
        BitRelation {
            n,
            bits: vec![false; n * n],
        }
    }

    /// Build from a list of pairs.
    pub fn from_pairs(n: usize, pairs: &[(usize, usize)]) -> BitRelation {
        let mut r = BitRelation::empty(n);
        for &(a, b) in pairs {
            r.set(a, b, true);
        }
        r
    }

    /// Read entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.bits[i * self.n + j]
    }

    /// Write entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: bool) {
        self.bits[i * self.n + j] = v;
    }

    /// The pairs present, in row-major order.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        (0..self.n)
            .flat_map(|i| {
                (0..self.n)
                    .filter(move |&j| self.get(i, j))
                    .map(move |j| (i, j))
            })
            .collect()
    }
}

/// Reference (semantic) evaluation of a query over concrete input relations —
/// what the compiled circuits are checked against.
pub fn eval_reference(query: &RelQuery, inputs: &[BitRelation], n: usize) -> BitRelation {
    eval_ref_inner(query, inputs, n, None)
}

fn eval_ref_inner(
    query: &RelQuery,
    inputs: &[BitRelation],
    n: usize,
    current: Option<&BitRelation>,
) -> BitRelation {
    match query {
        RelQuery::Input(i) => inputs[*i].clone(),
        RelQuery::Current => current
            .expect("Current used outside an IterateLogN body")
            .clone(),
        RelQuery::Empty => BitRelation::empty(n),
        RelQuery::Full => BitRelation {
            n,
            bits: vec![true; n * n],
        },
        RelQuery::Identity => {
            let mut r = BitRelation::empty(n);
            for i in 0..n {
                r.set(i, i, true);
            }
            r
        }
        RelQuery::Union(a, b) => {
            let (ra, rb) = (
                eval_ref_inner(a, inputs, n, current),
                eval_ref_inner(b, inputs, n, current),
            );
            BitRelation {
                n,
                bits: ra
                    .bits
                    .iter()
                    .zip(&rb.bits)
                    .map(|(x, y)| *x || *y)
                    .collect(),
            }
        }
        RelQuery::Intersect(a, b) => {
            let (ra, rb) = (
                eval_ref_inner(a, inputs, n, current),
                eval_ref_inner(b, inputs, n, current),
            );
            BitRelation {
                n,
                bits: ra
                    .bits
                    .iter()
                    .zip(&rb.bits)
                    .map(|(x, y)| *x && *y)
                    .collect(),
            }
        }
        RelQuery::Difference(a, b) => {
            let (ra, rb) = (
                eval_ref_inner(a, inputs, n, current),
                eval_ref_inner(b, inputs, n, current),
            );
            BitRelation {
                n,
                bits: ra
                    .bits
                    .iter()
                    .zip(&rb.bits)
                    .map(|(x, y)| *x && !*y)
                    .collect(),
            }
        }
        RelQuery::Complement(a) => {
            let ra = eval_ref_inner(a, inputs, n, current);
            BitRelation {
                n,
                bits: ra.bits.iter().map(|x| !*x).collect(),
            }
        }
        RelQuery::Transpose(a) => {
            let ra = eval_ref_inner(a, inputs, n, current);
            let mut out = BitRelation::empty(n);
            for i in 0..n {
                for j in 0..n {
                    out.set(i, j, ra.get(j, i));
                }
            }
            out
        }
        RelQuery::Compose(a, b) => {
            let ra = eval_ref_inner(a, inputs, n, current);
            let rb = eval_ref_inner(b, inputs, n, current);
            let mut out = BitRelation::empty(n);
            for i in 0..n {
                for j in 0..n {
                    let any = (0..n).any(|k| ra.get(i, k) && rb.get(k, j));
                    out.set(i, j, any);
                }
            }
            out
        }
        RelQuery::IterateLogN { init, body } => {
            let mut acc = eval_ref_inner(init, inputs, n, current);
            let rounds = usize::BITS - n.leading_zeros();
            for _ in 0..rounds {
                acc = eval_ref_inner(body, inputs, n, Some(&acc));
            }
            acc
        }
    }
}

/// A compiled relation: the wire (gate) ids carrying each of the `n²` bits.
#[derive(Debug, Clone)]
pub struct RelWires {
    /// Universe size.
    pub n: usize,
    /// Row-major gate ids, length `n²`.
    pub wires: Vec<GateId>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> BitRelation {
        BitRelation::from_pairs(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    #[test]
    fn reference_eval_of_basic_operators() {
        let n = 4;
        let r = path(n);
        let id = eval_reference(&RelQuery::Identity, &[], n);
        assert!(id.get(2, 2) && !id.get(2, 3));
        let u = eval_reference(
            &RelQuery::union(RelQuery::Input(0), RelQuery::Identity),
            std::slice::from_ref(&r),
            n,
        );
        assert!(u.get(0, 1) && u.get(3, 3));
        let t = eval_reference(
            &RelQuery::transpose(RelQuery::Input(0)),
            std::slice::from_ref(&r),
            n,
        );
        assert!(t.get(1, 0) && !t.get(0, 1));
        let c = eval_reference(
            &RelQuery::compose(RelQuery::Input(0), RelQuery::Input(0)),
            std::slice::from_ref(&r),
            n,
        );
        assert!(c.get(0, 2) && !c.get(0, 1));
        let d = eval_reference(
            &RelQuery::difference(RelQuery::Full, RelQuery::Input(0)),
            &[r],
            n,
        );
        assert!(!d.get(0, 1) && d.get(1, 0));
    }

    #[test]
    fn transitive_closure_matches_direct_computation() {
        let n = 8;
        let r = path(n);
        let tc = eval_reference(&RelQuery::transitive_closure(RelQuery::Input(0)), &[r], n);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(tc.get(i, j), i < j, "({i},{j})");
            }
        }
    }

    #[test]
    fn nesting_depth_counts_iterations() {
        assert_eq!(RelQuery::Input(0).nesting_depth(), 0);
        assert_eq!(
            RelQuery::transitive_closure(RelQuery::Input(0)).nesting_depth(),
            1
        );
        assert_eq!(RelQuery::nested_depth_k(3).nesting_depth(), 3);
    }

    #[test]
    fn num_inputs_is_computed() {
        let q = RelQuery::union(RelQuery::Input(0), RelQuery::transpose(RelQuery::Input(2)));
        assert_eq!(q.num_inputs(), 3);
    }

    #[test]
    fn bit_relation_round_trips_pairs() {
        let r = BitRelation::from_pairs(5, &[(0, 1), (4, 4)]);
        assert_eq!(r.pairs(), vec![(0, 1), (4, 4)]);
    }
}
