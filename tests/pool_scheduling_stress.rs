//! Scheduling-stress suite for the persistent work-stealing pool: the whole
//! `ncql_queries` corpus, run under pool sizes {1, 2, 4, 8} × repeated
//! iterations, with the pool's steal-order shim (`EvalConfig::pool_steal_seed`)
//! randomizing which victim each worker steals from on every iteration.
//!
//! Work stealing makes *execution order* nondeterministic by design: a chunk
//! may run on its home worker, a thief, or the region's opening caller, and
//! the interleaving differs run to run. The observational-equivalence contract
//! of `tests/parallel_differential.rs` must survive all of it — every run of
//! every query must produce the `(Value, CostStats)` pair the sequential
//! backend produces, bit-identically. This suite is that contract under
//! adversarial schedules: different pool sizes (including a single-worker pool
//! and, via `NCQL_POOL_THREADS`, an oversubscribed pool wider than the region
//! fan-out), different steal orders, and pool reuse across all 49 corpus
//! queries (one session, one worker set — a scheduling history the
//! fresh-pool-per-test differential suite never builds up).

use ncql::core::eval::EvalConfig;
use ncql::queries::differential_corpus;
use ncql::{Backend, Outcome, Session, SessionBuilder};

/// A forking parallel session: low cutover so the corpus's mid-sized sets
/// actually fork, with the given worker count and steal seed.
fn stress_session(pool_size: usize, pool_threads: Option<usize>, seed: u64) -> Session {
    SessionBuilder::new()
        .config(EvalConfig {
            parallel_cutoff: 64,
            pool_steal_seed: seed,
            ..EvalConfig::default()
        })
        .parallelism(Some(pool_size))
        .pool_threads(pool_threads)
        .build()
}

/// The oversubscription request from the CI matrix: `NCQL_POOL_THREADS=8`
/// makes every stress leg run its pool at 8 workers regardless of the
/// parallelism knob, so stealing runs contended even on a single-core runner.
fn pool_threads_from_env() -> Option<usize> {
    let raw = std::env::var("NCQL_POOL_THREADS").ok()?;
    raw.trim().parse::<usize>().ok().filter(|n| *n >= 2)
}

#[test]
fn corpus_is_schedule_invariant_across_pool_sizes_and_steal_orders() {
    let corpus = differential_corpus();
    assert!(corpus.len() >= 40, "corpus unexpectedly small: {}", corpus.len());

    // Sequential ground truth, computed once per query.
    let seq_session = SessionBuilder::new().parallel_cutoff(64).build();
    let expected: Vec<Outcome> = corpus
        .iter()
        .map(|entry| {
            seq_session
                .evaluate(&entry.expr)
                .unwrap_or_else(|e| panic!("{}: sequential backend failed: {e}", entry.name))
        })
        .collect();

    let pool_threads = pool_threads_from_env();
    for pool_size in [1usize, 2, 4, 8] {
        for iteration in 0..2u64 {
            // A fresh steal order every iteration: the seed feeds each
            // worker's victim-selection RNG, so two iterations of the same
            // pool size execute the same chunks along different schedules.
            let seed = (pool_size as u64) * 1_000 + iteration * 7_919 + 1;
            let session = stress_session(pool_size, pool_threads, seed);
            if pool_size <= 1 {
                // `parallelism = 1` normalizes to the sequential backend: the
                // degenerate rung of the ladder runs no pool at all.
                assert_eq!(session.backend(), Backend::Sequential);
            } else {
                assert_eq!(session.backend(), Backend::Parallel { threads: pool_size });
            }
            // ONE session — one persistent pool, one worker set — across the
            // whole corpus, so later queries run on a pool whose deques and
            // steal history earlier queries already churned.
            for (entry, want) in corpus.iter().zip(&expected) {
                let got = session.evaluate(&entry.expr).unwrap_or_else(|e| {
                    panic!(
                        "{}: pool_size={pool_size} iteration={iteration} failed: {e}",
                        entry.name
                    )
                });
                assert_eq!(
                    got.value, want.value,
                    "{}: value diverged at pool_size={pool_size} iteration={iteration} seed={seed}",
                    entry.name
                );
                assert_eq!(
                    got.stats, want.stats,
                    "{}: cost stats diverged at pool_size={pool_size} iteration={iteration} seed={seed}",
                    entry.name
                );
            }
        }
    }
}

#[test]
fn steal_order_shim_is_invisible_at_a_fixed_pool_size() {
    // Many seeds, one query, one pool size: only the steal schedule varies,
    // and nothing observable may move. The query is the corpus's most
    // region-dense one (transitive closure: leaf maps + log-depth combining
    // rounds + nested ext regions inside every combiner call).
    let corpus = differential_corpus();
    let entry = corpus
        .iter()
        .find(|e| e.name == "graph/tc_dcr/path/18")
        .expect("corpus entry");
    let baseline = stress_session(4, None, 0)
        .evaluate(&entry.expr)
        .expect("baseline run");
    for seed in 1..=12u64 {
        let again = stress_session(4, None, seed * 0x9E37_79B9)
            .evaluate(&entry.expr)
            .unwrap_or_else(|e| panic!("seed {seed} failed: {e}"));
        assert_eq!(again.value, baseline.value, "value moved under seed {seed}");
        assert_eq!(again.stats, baseline.stats, "stats moved under seed {seed}");
    }
}

#[test]
fn oversubscribed_pool_matches_a_matched_pool() {
    // pool_threads wider than parallelism (more workers than the per-region
    // borrow ever asks for): extra workers only add stealing pressure, never
    // observable behaviour.
    let corpus = differential_corpus();
    let sample: Vec<_> = corpus
        .iter()
        .filter(|e| {
            e.name.starts_with("parity/dcr") || e.name.starts_with("graph/tc_dcr")
        })
        .collect();
    assert!(!sample.is_empty());
    let matched = stress_session(4, None, 3);
    let oversubscribed = stress_session(4, Some(8), 3);
    for entry in sample {
        let a = matched.evaluate(&entry.expr).unwrap();
        let b = oversubscribed.evaluate(&entry.expr).unwrap();
        assert_eq!(a.value, b.value, "{}", entry.name);
        assert_eq!(a.stats, b.stats, "{}", entry.name);
    }
}
