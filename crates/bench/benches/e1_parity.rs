//! E1 — §1 parity example: evaluation time of the dcr, esr and loop variants,
//! with the dcr variant additionally timed on the parallel backend (threads
//! from `NCQL_TEST_PARALLELISM`, default 4).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::eval_closed;
use ncql_core::expr::Expr;
use ncql_core::parallelism_from_env;
use ncql_object::Value;
use ncql_queries::{eval_query, parity};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_parity");
    group.sample_size(10).warm_up_time(Duration::from_millis(200)).measurement_time(Duration::from_millis(600));
    for n in [64u64, 256, 1024] {
        let input = Expr::Const(Value::atom_set(0..n));
        group.bench_with_input(BenchmarkId::new("dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&parity::parity_dcr(input.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("esr", n), &n, |b, _| {
            b.iter(|| eval_closed(&parity::parity_esr(input.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("loop", n), &n, |b, _| {
            b.iter(|| eval_closed(&parity::parity_loop(input.clone())).unwrap())
        });
        let threads = parallelism_from_env().unwrap_or(4);
        group.bench_with_input(BenchmarkId::new(format!("dcr_par{threads}"), n), &n, |b, _| {
            b.iter(|| eval_query(&parity::parity_dcr(input.clone()), Some(threads)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
