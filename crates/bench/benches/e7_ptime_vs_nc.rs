//! E7 — PTIME vs NC: wall-clock of the parallel dcr tree vs the sequential fold.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::derived;
use ncql_core::eval::EvalConfig;
use ncql_core::expr::Expr;
use ncql_object::{Type, Value};
use ncql_pram::{ParallelConfig, ParallelExecutor};
use ncql_queries::{datagen, graph};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_ptime_vs_nc");
    group.sample_size(10).warm_up_time(Duration::from_millis(200)).measurement_time(Duration::from_secs(1));
    let executor = ParallelExecutor::new(ParallelConfig {
        threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
        sequential_cutoff: 4,
        eval: EvalConfig::default(),
    });
    for n in [16u64, 32] {
        let rel = datagen::path_graph(n).to_value();
        let rel_ty = Type::binary_relation();
        let f = Expr::lam("y", Type::Base, Expr::Const(rel.clone()));
        let u = graph::tc_combiner();
        let i = Expr::lam2(
            "v",
            "acc",
            Type::prod(Type::Base, rel_ty),
            Expr::union(
                Expr::union(Expr::var("acc"), Expr::Const(rel.clone())),
                derived::compose(Type::Base, Type::Base, Type::Base, Expr::var("acc"), Expr::Const(rel.clone())),
            ),
        );
        let vertices = Value::atom_set(0..=n);
        let empty = Expr::Empty(Type::prod(Type::Base, Type::Base));
        group.bench_with_input(BenchmarkId::new("parallel_dcr", n), &n, |b, _| {
            b.iter(|| executor.par_dcr(&empty, &f, &u, &vertices).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("sequential_fold", n), &n, |b, _| {
            b.iter(|| executor.seq_fold(&empty, &i, &vertices).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
