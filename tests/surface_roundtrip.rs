//! Surface-syntax round-trip suite over the E1–E12 query corpus:
//! `parse ∘ pretty ∘ parse` must be the identity on ASTs, so the REPL path
//! (`Session::prepare` → `Session::execute`, with the `parallelism` knob a
//! session-level choice) cannot silently drift from the builder API.
//!
//! The corpus below is the surface-syntax rendering of the queries the E1–E12
//! experiments exercise: every recursion form (`dcr`, `sru`, `sri`, `esr`,
//! `bdcr`, `bsri`), every iterator (`loop`, `logloop`, `bloop`, `blogloop`),
//! the NRA constructs, and the external arithmetic Σ.

use ncql::surface;
use ncql::{Session, SessionBuilder};

/// Surface-syntax corpus: `(label, query text)`.
fn corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        // E1 — parity: dcr, esr and loop variants.
        (
            "e1/parity_dcr",
            "dcr(false, \\y: atom. true, \
             \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, \
             {@1} union {@2} union {@3} union {@4} union {@5})",
        ),
        (
            "e1/parity_esr",
            "esr(false, \\p: (atom * bool). if pi2 p then false else true, \
             {@1} union {@2} union {@3})",
        ),
        (
            "e1/parity_loop",
            "loop(\\acc: bool. if acc then false else true, {@1} union {@2} union {@3}, false)",
        ),
        // E2 — transitive closure: the §1 dcr form and the Example 7.1
        // log-loop squaring form over a small path graph.
        (
            "e2/tc_dcr",
            "let r = {(@1, @2)} union {(@2, @3)} union {(@3, @4)} in \
             dcr(empty[(atom * atom)], \\y: atom. r, \
                 \\p: ({(atom * atom)} * {(atom * atom)}). \
                   pi1 p union pi2 p union \
                   ext(\\e1: (atom * atom). \
                     ext(\\e2: (atom * atom). \
                       if (pi2 e1) = (pi1 e2) then {(pi1 e1, pi2 e2)} else empty[(atom * atom)], \
                     pi2 p), \
                   pi1 p), \
                 {@1} union {@2} union {@3} union {@4})",
        ),
        (
            "e2/tc_logloop",
            "let r = {(@1, @2)} union {(@2, @3)} in \
             logloop(\\s: {(atom * atom)}. \
               s union ext(\\e1: (atom * atom). \
                 ext(\\e2: (atom * atom). \
                   if (pi2 e1) = (pi1 e2) then {(pi1 e1, pi2 e2)} else empty[(atom * atom)], \
                 s), s), \
             {@1} union {@2} union {@3}, r)",
        ),
        // E3 — Prop 2.1: the same recursion phrased with sru and sri.
        (
            "e3/union_sru",
            "sru(empty[atom], \\y: atom. {y}, \
             \\p: ({atom} * {atom}). pi1 p union pi2 p, {@3} union {@1} union {@2})",
        ),
        (
            "e3/identity_sri",
            "sri(empty[atom], \\p: (atom * {atom}). {pi1 p} union pi2 p, \
             {@5} union {@1} union {@9})",
        ),
        // E4 — bounded recursion: bdcr and bsri with explicit bounds.
        (
            "e4/bdcr_bounded_union",
            "bdcr(empty[atom], \\y: atom. {y}, \
              \\p: ({atom} * {atom}). pi1 p union pi2 p, \
              {@1} union {@2}, {@1} union {@2} union {@3})",
        ),
        (
            "e4/bsri_bounded_fold",
            "bsri(empty[atom], \\p: (atom * {atom}). {pi1 p} union pi2 p, \
              {@2} union {@3}, {@1} union {@2} union {@3})",
        ),
        // E5/E11 — iterators, including the bounded forms and depth-2 nesting.
        (
            "e5/logloop_counter",
            "logloop(\\c: nat. nat_add(c, 1), \
             {@1} union {@2} union {@3} union {@4} union {@5}, 0)",
        ),
        (
            "e11/loop_nested_counter",
            "let s = {@1} union {@2} union {@3} in \
             logloop(\\outer: nat. logloop(\\c: nat. nat_add(c, 1), s, outer), s, 0)",
        ),
        (
            "e11/bloop_bounded",
            "bloop(\\r: {atom}. r union {@1}, {@1} union {@2}, {@1} union {@2} union {@3}, empty[atom])",
        ),
        (
            "e11/blogloop_bounded",
            "blogloop(\\r: {atom}. r union {@2}, {@1} union {@2}, \
             {@1} union {@2} union {@3} union {@4}, empty[atom])",
        ),
        // E7/E8 — aggregates over the external arithmetic Σ.
        (
            "e8/sum_dcr_externs",
            "dcr(0, \\x: atom. atom_to_nat(x), \
             \\p: (nat * nat). nat_add(pi1 p, pi2 p), \
             {@4} union {@7} union {@9})",
        ),
        ("e8/card_extern", "card({@1} union {@2} union {@3})"),
        ("e8/nat_arith", "nat_add(nat_mul(6, 7), nat_sub(10, 10))"),
        ("e8/nat_bit", "nat_bit(5, 2)"),
        // E9-adjacent — NRA constructs: pairs, projections, conditionals,
        // equality and order, emptiness, application, let.
        ("nra/pair_projections", "pi1 (pi2 ((@1, (@2, @3))))"),
        ("nra/eq_leq", "if (@1 <= @2) then ((@1, @2) = (@1, @2)) else false"),
        ("nra/isempty", "isempty(ext(\\x: atom. empty[atom], {@1} union {@2}))"),
        ("nra/apply_lambda", "apply(\\x: {atom}. x union {@9}, {@1})"),
        (
            "nra/let_shadowing",
            "let x = {@1} in let y = x union {@2} in (let x = y in x) union x",
        ),
        ("nra/unit_value", "if true then () else ()"),
        // E8 powerset-shaped nested sets (kept tiny).
        (
            "e8/nested_sets",
            "ext(\\a: {atom}. ext(\\b: {atom}. {a union b}, {{@2}} union {empty[atom]}), \
             {{@1}} union {{@3}})",
        ),
        // E12 — a combiner that the well-formedness experiment flags (still
        // must round-trip syntactically).
        (
            "e12/left_projection_combiner",
            "dcr(empty[atom], \\y: atom. {y}, \\p: ({atom} * {atom}). pi1 p, {@1} union {@2})",
        ),
    ]
}

#[test]
fn parse_pretty_parse_is_identity_on_the_corpus() {
    for (label, text) in corpus() {
        let parsed = surface::parse(text).unwrap_or_else(|e| panic!("{label}: parse failed: {e}"));
        let printed = surface::print_expr(&parsed);
        let reparsed = surface::parse(&printed)
            .unwrap_or_else(|e| panic!("{label}: reparse of pretty output failed: {e}\n{printed}"));
        assert_eq!(parsed, reparsed, "{label}: round trip changed the AST\npretty: {printed}");
        // And the fixpoint: printing the reparse reproduces the same text.
        assert_eq!(
            printed,
            surface::print_expr(&reparsed),
            "{label}: pretty output is not a fixpoint"
        );
    }
}

#[test]
fn corpus_typechecks_and_evaluates_identically_on_both_backends() {
    // The REPL path: prepare (parse + typecheck + analysis) once per session,
    // execute on both backends.
    let seq = Session::new();
    let par = SessionBuilder::new()
        .parallelism(Some(4))
        .parallel_cutoff(1)
        .build();
    for (label, text) in corpus() {
        let seq_out = seq
            .run(text)
            .unwrap_or_else(|e| panic!("{label}: sequential session failed: {e}"));
        let par_out = par
            .run(text)
            .unwrap_or_else(|e| panic!("{label}: parallel session failed: {e}"));
        assert_eq!(par_out.value, seq_out.value, "{label}: backends disagree");
        assert_eq!(par_out.stats, seq_out.stats, "{label}: cost statistics disagree");
    }
}

#[test]
fn pretty_printed_corpus_still_evaluates_to_the_same_value() {
    let session = Session::new();
    for (label, text) in corpus() {
        let prepared =
            session.prepare(text).unwrap_or_else(|e| panic!("{label}: prepare failed: {e}"));
        // The prepared plan's normal form is the pretty-printed query; running
        // *that* text must produce the same value.
        let v1 = session
            .execute(&prepared)
            .unwrap_or_else(|e| panic!("{label}: eval failed: {e}"))
            .value;
        let v2 = session
            .run(prepared.normal_form())
            .unwrap_or_else(|e| panic!("{label}: eval of round trip failed: {e}"))
            .value;
        assert_eq!(v1, v2, "{label}");
    }
}
