//! Property-based equivalence of the compiled row-kernel path and the
//! interpreted `ext` element map.
//!
//! For random flat sets and random kernel-liftable closure bodies, evaluating
//! `ext(\x. body, set)` with row kernels enabled must be **bit-identical** —
//! value *and* `CostStats` — to evaluating with kernels disabled, on both the
//! sequential and the parallel backend. Unliftable bodies must reject at
//! compile time (prepare-time analysis and the runtime dispatch make the same
//! decision) and fall back to the interpreter with no observable change.

use ncql::core::externs::ExternRegistry;
use ncql::core::kernel::analyze_sites;
use ncql::core::{CostStats, Expr};
use ncql::object::{Type, Value};
use ncql::SessionBuilder;
use proptest::prelude::*;

fn pair_ty() -> Type {
    Type::prod(Type::Base, Type::Nat)
}

/// Random input sets of `(atom, nat)` pairs. The size range deliberately
/// straddles the columnar promotion threshold, so the suite exercises both
/// the kernel path (columnar input) and the boxed path (small input) under
/// the same bodies.
fn arb_input_set() -> impl Strategy<Value = Vec<(u64, u64)>> {
    proptest::collection::vec((0u64..40, 0u64..30), 0..96)
}

/// Random kernel-liftable nat-valued scalars over `x : atom * nat`.
fn arb_nat_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::proj2(Expr::var("x"))),
        (0u64..40).prop_map(Expr::nat),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        (
            inner.clone(),
            inner,
            prop::sample::select(vec![
                "nat_add", "nat_sub", "nat_mul", "nat_div", "nat_min", "nat_max",
            ]),
        )
            .prop_map(|(a, b, op)| Expr::extern_call(op, vec![a, b]))
    })
}

/// Random kernel-liftable boolean scalars over `x : atom * nat`: word-level
/// comparisons, scalar equality, and a whole-row `<=` that exercises the
/// multi-word lexicographic compare.
fn arb_bool_expr() -> impl Strategy<Value = Expr> {
    (arb_nat_expr(), arb_nat_expr(), 0u8..3, 0u64..40, 0u64..30).prop_map(
        |(a, b, pick, probe_a, probe_n)| match pick {
            0 => Expr::extern_call("nat_leq", vec![a, b]),
            1 => Expr::eq(a, b),
            _ => Expr::leq(
                Expr::var("x"),
                Expr::pair(Expr::atom(probe_a), Expr::nat(probe_n)),
            ),
        },
    )
}

/// Random kernel-liftable `ext` bodies emitting `(atom, nat)` rows: filters,
/// projections-with-rebuild, lets, and nested conditionals.
fn arb_liftable_body() -> impl Strategy<Value = Expr> {
    let emit = prop_oneof![
        // {(pi1 x, nat-expr)} — rebuild the pair with a computed column.
        arb_nat_expr().prop_map(|n| Expr::singleton(Expr::pair(Expr::proj1(Expr::var("x")), n))),
        // {x} — the identity emit.
        Just(Expr::singleton(Expr::var("x"))),
        // {} — drop the row.
        Just(Expr::empty(pair_ty())),
    ];
    let guarded = (arb_bool_expr(), emit.clone(), emit)
        .prop_map(|(c, t, e)| Expr::ite(c, t, e))
        .boxed();
    prop_oneof![
        guarded.clone(),
        // let y = nat-expr in if nat_leq(y, k) then <emit> else <emit>
        (arb_nat_expr(), guarded).prop_map(|(bound, body)| Expr::let_in("y", bound, body)),
    ]
}

fn input_value(rows: &[(u64, u64)]) -> Value {
    Value::set_from(
        rows.iter()
            .map(|&(a, n)| Value::pair(Value::Atom(a), Value::Nat(n))),
    )
}

/// Evaluate on the chosen backend through the engine's `Session` front door
/// (no optimizer — `evaluate` is the trusted raw path), returning
/// `(value, stats)`. The low cutoff makes the 64+-row cases actually fork.
fn run(expr: &Expr, kernels: bool, threads: Option<usize>) -> (Value, CostStats) {
    let session = SessionBuilder::new()
        .parallel_cutoff(64)
        .parallelism(threads)
        .row_kernels(kernels)
        .build();
    let out = session.evaluate(expr).expect("evaluation succeeds");
    (out.value, out.stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline property: for random liftable bodies over random flat
    /// sets, the kernel strategy is invisible — identical values, identical
    /// statistics — across all four (backend × kernels) combinations.
    #[test]
    fn kernel_and_interpreted_ext_are_bit_identical(
        rows in arb_input_set(),
        body in arb_liftable_body(),
    ) {
        let expr = Expr::ext(
            Expr::lam("x", pair_ty(), body.clone()),
            Expr::constant(input_value(&rows)),
        );
        // The compiler must accept every body this generator produces —
        // otherwise the property is vacuously comparing interpreter to
        // interpreter.
        let sites = analyze_sites(&expr, &ExternRegistry::standard());
        prop_assert_eq!(sites.len(), 1);
        prop_assert!(sites[0].compiled, "generator produced an unliftable body: {}", sites[0].detail);

        let (v_seq_on, s_seq_on) = run(&expr, true, None);
        let (v_seq_off, s_seq_off) = run(&expr, false, None);
        prop_assert_eq!(&v_seq_on, &v_seq_off);
        prop_assert_eq!(s_seq_on, s_seq_off);
        let (v_par_on, s_par_on) = run(&expr, true, Some(4));
        let (v_par_off, s_par_off) = run(&expr, false, Some(4));
        prop_assert_eq!(&v_par_on, &v_par_off);
        prop_assert_eq!(s_par_on, s_par_off);
        // And the two backends agree with each other, kernels or not.
        prop_assert_eq!(&v_seq_on, &v_par_on);
        prop_assert_eq!(s_seq_on, s_par_on);
    }

    /// Unliftable bodies reject deterministically at prepare time and the
    /// runtime fallback changes nothing observable.
    #[test]
    fn unliftable_bodies_fall_back_identically(
        rows in arb_input_set(),
        which in 0usize..4,
    ) {
        let body = match which {
            // Union of two singletons: set-level union is not liftable.
            0 => Expr::union(
                Expr::singleton(Expr::var("x")),
                Expr::singleton(Expr::pair(Expr::proj1(Expr::var("x")), Expr::nat(0))),
            ),
            // A non-flat constant (a set literal) in the body.
            1 => Expr::ite(
                Expr::is_empty(Expr::constant(Value::atom_set([1, 2]))),
                Expr::singleton(Expr::var("x")),
                Expr::empty(pair_ty()),
            ),
            // A nested ext: set-typed subterms reject.
            2 => Expr::ext(
                Expr::lam("y", pair_ty(), Expr::singleton(Expr::var("y"))),
                Expr::singleton(Expr::var("x")),
            ),
            // The `card` external consumes a set — no word-level twin.
            _ => Expr::singleton(Expr::pair(
                Expr::proj1(Expr::var("x")),
                Expr::extern_call("card", vec![Expr::singleton(Expr::proj1(Expr::var("x")))]),
            )),
        };
        let expr = Expr::ext(
            Expr::lam("x", pair_ty(), body),
            Expr::constant(input_value(&rows)),
        );
        let outer = &analyze_sites(&expr, &ExternRegistry::standard())[0];
        prop_assert!(!outer.compiled, "body {which} unexpectedly compiled");

        let (v_on, s_on) = run(&expr, true, None);
        let (v_off, s_off) = run(&expr, false, None);
        prop_assert_eq!(v_on, v_off);
        prop_assert_eq!(s_on, s_off);
    }
}

/// A deterministic large-input check pinning the kernel path against the
/// interpreter at a size where the columnar representation and the parallel
/// merge are both certainly engaged.
#[test]
fn large_kernel_ext_is_bit_identical_across_strategies_and_backends() {
    let rows: Vec<(u64, u64)> = (0..4096u64)
        .map(|i| {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            (k % 997, k % 613)
        })
        .collect();
    let body = Expr::let_in(
        "y",
        Expr::extern_call("nat_add", vec![Expr::proj2(Expr::var("x")), Expr::nat(17)]),
        Expr::ite(
            Expr::extern_call("nat_leq", vec![Expr::var("y"), Expr::nat(400)]),
            Expr::singleton(Expr::pair(Expr::var("y"), Expr::proj1(Expr::var("x")))),
            Expr::empty(Type::prod(Type::Nat, Type::Base)),
        ),
    );
    let expr = Expr::ext(
        Expr::lam("x", pair_ty(), body),
        Expr::constant(input_value(&rows)),
    );
    let mut results = Vec::new();
    for kernels in [true, false] {
        for threads in [None, Some(4)] {
            results.push(run(&expr, kernels, threads));
        }
    }
    let (v0, s0) = &results[0];
    for (v, s) in &results[1..] {
        assert_eq!(v, v0);
        assert_eq!(s, s0);
    }
    if let Value::Set(s) = v0 {
        assert!(!s.is_empty());
    } else {
        panic!("ext must return a set");
    }
}
