//! Rendering located errors as caret diagnostics, with no external deps.
//!
//! A [`Diagnostic`] pairs an error message with the byte [`Span`] it refers
//! to, resolved against the source text into a 1-based line/column and a
//! single-line snippet with a caret underline:
//!
//! ```text
//! error: type error: union operands: expected type {atom}, found {bool}
//!  --> line 1, column 12
//!   |
//! 1 | {@1} union {true}
//!   |            ^^^^^^
//! ```
//!
//! Errors without a span (raised from programmatically built expressions)
//! render as the bare `error:` line. Spans wider than one source line are
//! clipped to the first line — one line is enough to locate the construct,
//! and it keeps snapshots stable.

use ncql_core::{Finding, Severity, Span};
use std::fmt;

/// A rendered-form error: the message plus, when located, the resolved
/// line/column and the snippet line the caret points into.
///
/// Build one with [`crate::Error::diagnostic`] (or render straight to a
/// string with [`crate::Error::render`]). Lint findings render through
/// [`Diagnostic::from_finding`], which labels warnings `warning:` instead of
/// `error:`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The severity label the rendered form leads with (`error` or
    /// `warning`).
    label: &'static str,
    /// The error message (the `Display` form of the underlying error).
    pub message: String,
    /// The byte span in the source text, when the error is located.
    pub span: Option<Span>,
    /// 1-based line of the span's start (`None` when unlocated).
    pub line: Option<usize>,
    /// 1-based column (in bytes) of the span's start on its line.
    pub column: Option<usize>,
    /// The full source line the span starts on.
    snippet: Option<String>,
    /// Caret underline aligned under `snippet`.
    underline: Option<String>,
}

impl Diagnostic {
    /// Resolve `span` against `source` and build the diagnostic for
    /// `message`. A span that does not lie within `source` (e.g. the error
    /// came from a different text than the one supplied) is treated as
    /// unlocated rather than panicking.
    pub fn new(message: impl Into<String>, span: Option<Span>, source: &str) -> Diagnostic {
        Diagnostic::with_label("error", message, span, source)
    }

    /// [`Diagnostic::new`] for a lint finding: the message is
    /// `<lint-name>: <finding message>` and the label is `warning` unless the
    /// finding is deny-level.
    pub fn from_finding(finding: &Finding, source: &str) -> Diagnostic {
        let label = match finding.severity {
            Severity::Deny => "error",
            Severity::Warning => "warning",
        };
        Diagnostic::with_label(
            label,
            format!("{}: {}", finding.lint.name(), finding.message),
            finding.span,
            source,
        )
    }

    fn with_label(
        label: &'static str,
        message: impl Into<String>,
        span: Option<Span>,
        source: &str,
    ) -> Diagnostic {
        let message = message.into();
        // Foreign spans — wrong text entirely, or offsets landing mid-way
        // through a multibyte character of this text — degrade to unlocated;
        // slicing below must never panic.
        let located = span.filter(|s| {
            s.start <= s.end
                && s.end <= source.len()
                && source.is_char_boundary(s.start)
                && source.is_char_boundary(s.end)
        });
        match located {
            None => Diagnostic {
                label,
                message,
                span,
                line: None,
                column: None,
                snippet: None,
                underline: None,
            },
            Some(s) => {
                // The line containing the span's start byte.
                let line_start = source[..s.start].rfind('\n').map(|i| i + 1).unwrap_or(0);
                let line_end = source[s.start..]
                    .find('\n')
                    .map(|i| s.start + i)
                    .unwrap_or(source.len());
                let line_no = source[..s.start].matches('\n').count() + 1;
                let column = s.start - line_start + 1;
                let snippet = source[line_start..line_end].to_string();
                // Caret width: the span clipped to this line; a zero-width
                // (end-of-input) span still gets one caret.
                let width = s.end.min(line_end).saturating_sub(s.start).max(1);
                let underline = format!("{}{}", " ".repeat(column - 1), "^".repeat(width));
                Diagnostic {
                    label,
                    message,
                    span,
                    line: Some(line_no),
                    column: Some(column),
                    snippet: Some(snippet),
                    underline: Some(underline),
                }
            }
        }
    }

    /// The source line the caret points into, when located.
    pub fn snippet(&self) -> Option<&str> {
        self.snippet.as_deref()
    }

    /// The severity label the rendered form leads with: `"error"` or
    /// `"warning"`.
    pub fn severity(&self) -> &'static str {
        self.label
    }

    /// The diagnostic as one JSON object — the machine-readable twin of the
    /// caret rendering, so protocol front ends (the wire server, the REPL's
    /// `--json` mode) never re-parse rendered text:
    ///
    /// ```text
    /// {"severity":"error","message":"...","span":{"start":11,"end":17},
    ///  "line":1,"column":12,"snippet":"{@1} union {true}"}
    /// ```
    ///
    /// `span`, `line`, `column` and `snippet` are `null` when the error is
    /// unlocated. The span is the *raw* byte span the error carried; `line`,
    /// `column` and `snippet` are only non-null when that span resolved
    /// against the supplied source (see [`Diagnostic::new`]).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.message.len());
        out.push_str("{\"severity\":");
        json_string(&mut out, self.label);
        out.push_str(",\"message\":");
        json_string(&mut out, &self.message);
        out.push_str(",\"span\":");
        match self.span {
            Some(s) => {
                out.push_str(&format!("{{\"start\":{},\"end\":{}}}", s.start, s.end));
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"line\":");
        match self.line {
            Some(n) => out.push_str(&n.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"column\":");
        match self.column {
            Some(n) => out.push_str(&n.to_string()),
            None => out.push_str("null"),
        }
        out.push_str(",\"snippet\":");
        match &self.snippet {
            Some(s) => json_string(&mut out, s),
            None => out.push_str("null"),
        }
        out.push('}');
        out
    }
}

/// Append `s` as a JSON string literal (RFC 8259 escaping; control characters
/// below U+0020 become `\u00XX`).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.label, self.message)?;
        if let (Some(line), Some(column), Some(snippet), Some(underline)) =
            (self.line, self.column, &self.snippet, &self.underline)
        {
            let gutter = line.to_string();
            let pad = " ".repeat(gutter.len());
            writeln!(f)?;
            writeln!(f, "{pad}--> line {line}, column {column}")?;
            writeln!(f, "{pad} |")?;
            writeln!(f, "{gutter} | {snippet}")?;
            write!(f, "{pad} | {underline}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlocated_errors_render_as_one_line() {
        let d = Diagnostic::new("something failed", None, "irrelevant");
        assert_eq!(d.to_string(), "error: something failed");
        assert_eq!(d.line, None);
    }

    #[test]
    fn caret_points_at_the_span() {
        let src = "{@1} union {true}";
        let d = Diagnostic::new("bad operand", Some(Span::new(11, 17)), src);
        assert_eq!(d.line, Some(1));
        assert_eq!(d.column, Some(12));
        let expected = [
            "error: bad operand",
            " --> line 1, column 12",
            "  |",
            "1 | {@1} union {true}",
            "  |            ^^^^^^",
        ]
        .join("\n");
        assert_eq!(d.to_string(), expected);
    }

    #[test]
    fn multi_line_sources_resolve_lines_and_clip_carets() {
        let src = "let r = {@1}\nin r union {true}";
        // Span of `{true}` on line 2: bytes 24..30.
        let d = Diagnostic::new("bad", Some(Span::new(24, 30)), src);
        assert_eq!(d.line, Some(2));
        assert_eq!(d.column, Some(12));
        assert_eq!(d.snippet(), Some("in r union {true}"));
        // A span covering both lines clips to the first.
        let wide = Diagnostic::new("bad", Some(Span::new(8, 30)), src);
        assert_eq!(wide.line, Some(1));
        assert_eq!(wide.snippet(), Some("let r = {@1}"));
        let rendered = wide.to_string();
        let caret_line = rendered.lines().last().unwrap();
        assert_eq!(caret_line, "  |         ^^^^");
    }

    #[test]
    fn zero_width_spans_get_one_caret() {
        let src = "{@1} union";
        let d = Diagnostic::new("expected more", Some(Span::point(10)), src);
        assert_eq!(d.column, Some(11));
        assert!(d.to_string().ends_with("^"));
    }

    #[test]
    fn lint_findings_render_with_severity_labels() {
        use ncql_core::Lint;
        let src = "let x = {@1} in {@2}";
        let warn = Finding {
            lint: Lint::UnusedBinding,
            severity: Severity::Warning,
            message: "binding `x` is never used".to_string(),
            span: Some(Span::new(4, 5)),
        };
        let d = Diagnostic::from_finding(&warn, src);
        let rendered = d.to_string();
        assert!(
            rendered.starts_with("warning: unused-binding: binding `x` is never used"),
            "{rendered}"
        );
        assert_eq!(d.column, Some(5));
        // Deny findings keep the error label.
        let deny = Finding {
            lint: Lint::DoomedWorkBound,
            severity: Severity::Deny,
            message: "doomed".to_string(),
            span: None,
        };
        assert_eq!(
            Diagnostic::from_finding(&deny, src).to_string(),
            "error: doomed-work-bound: doomed"
        );
    }

    #[test]
    fn foreign_spans_degrade_to_unlocated() {
        let d = Diagnostic::new("oops", Some(Span::new(90, 95)), "short");
        assert_eq!(d.to_string(), "error: oops");
        // A span whose offsets land mid-way through a multibyte character of
        // the supplied text (e.g. a cached error rendered against edited
        // source) is just as foreign: degrade, don't panic.
        let mid_char = Diagnostic::new("oops", Some(Span::new(1, 4)), "€€€€");
        assert_eq!(mid_char.to_string(), "error: oops");
        assert_eq!(mid_char.line, None);
    }
}
