//! E9 — §5 encodings and the Lemma 7.4–7.6 gadget circuits.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_circuit::gadgets;
use ncql_object::encoding::{decode, encode};
use ncql_object::Type;
use ncql_queries::datagen;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_encoding_gadgets");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [8u64, 32] {
        let rel = datagen::cycle_graph(n).to_value();
        group.bench_with_input(BenchmarkId::new("encode_decode", n), &n, |b, _| {
            b.iter(|| {
                let s = encode(&rel);
                decode(&s, &Type::binary_relation()).unwrap()
            })
        });
        let len = encode(&rel).len();
        group.bench_with_input(BenchmarkId::new("build_element_starts", n), &n, |b, _| {
            b.iter(|| gadgets::element_starts(len))
        });
        group.bench_with_input(
            BenchmarkId::new("build_encoding_equality", n),
            &n,
            |b, _| b.iter(|| gadgets::encoding_equality(len)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
