//! Concurrent load generation against a running server, with latency
//! percentiles.
//!
//! The machinery lives in the library (rather than the `ncql-loadgen` binary)
//! so the bench harness can drive the same measurement in-process and the
//! stress tests can reuse the retry-on-`busy` discipline. `busy` answers are
//! flow control, not failures: the client backs off briefly and retries, and
//! the report counts retries separately from errors.

use crate::client::{Client, ClientError};
use crate::corpus::CORPUS;
use crate::json::Json;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Requests each client issues (excluding `busy` retries).
    pub requests_per_client: usize,
    /// Per-request deadline to ask the server for (`None` = server default).
    pub deadline_ms: Option<u64>,
    /// How many times one request may be retried after `busy` before it is
    /// counted as an error.
    pub max_busy_retries: usize,
}

impl Default for LoadConfig {
    fn default() -> LoadConfig {
        LoadConfig {
            clients: 8,
            requests_per_client: 50,
            deadline_ms: None,
            max_busy_retries: 1000,
        }
    }
}

/// Latency percentiles in microseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Percentiles {
    /// Median.
    pub p50_us: u64,
    /// 95th percentile.
    pub p95_us: u64,
    /// 99th percentile.
    pub p99_us: u64,
    /// Worst observed.
    pub max_us: u64,
    /// Arithmetic mean.
    pub mean_us: u64,
}

impl Percentiles {
    /// Compute percentiles from raw per-request latencies, using the
    /// ceil-based nearest-rank definition: the q-th percentile is the
    /// smallest observation with at least `⌈q·n⌉` observations at or below
    /// it. (A rounded `(n−1)·q` index understates high percentiles at low
    /// sample counts — e.g. p99 of 100 samples would land on the 99th value
    /// instead of the 100th.) The mean rounds to the nearest microsecond
    /// instead of truncating.
    pub fn from_latencies(latencies: &mut [u64]) -> Percentiles {
        if latencies.is_empty() {
            return Percentiles::default();
        }
        latencies.sort_unstable();
        let n = latencies.len();
        let at = |q: f64| {
            let rank = (q * n as f64).ceil() as usize;
            latencies[rank.clamp(1, n) - 1]
        };
        let sum: u64 = latencies.iter().sum();
        Percentiles {
            p50_us: at(0.50),
            p95_us: at(0.95),
            p99_us: at(0.99),
            max_us: *latencies.last().expect("non-empty"),
            mean_us: (sum + n as u64 / 2) / n as u64,
        }
    }
}

/// The outcome of a load run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Concurrent clients used.
    pub clients: usize,
    /// Requests that completed successfully.
    pub ok: u64,
    /// Total `busy` answers absorbed by retrying.
    pub busy_retries: u64,
    /// Requests that failed (transport, protocol, or typed server errors
    /// other than absorbed `busy`).
    pub errors: u64,
    /// Up to five sample error messages, for diagnosis.
    pub error_samples: Vec<String>,
    /// Wall-clock duration of the whole run.
    pub elapsed: Duration,
    /// Latency percentiles over successful requests.
    pub latency: Percentiles,
}

impl LoadReport {
    /// Successful requests per wall-clock second.
    pub fn throughput_rps(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs == 0.0 {
            0.0
        } else {
            self.ok as f64 / secs
        }
    }

    /// The report as a JSON object (the `BENCH_serve.json` payload).
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("clients".to_string(), Json::num(self.clients as u64)),
            ("ok".to_string(), Json::num(self.ok)),
            ("busy_retries".to_string(), Json::num(self.busy_retries)),
            ("errors".to_string(), Json::num(self.errors)),
            (
                "error_samples".to_string(),
                Json::Arr(self.error_samples.iter().map(Json::str).collect()),
            ),
            (
                "elapsed_ms".to_string(),
                Json::num(self.elapsed.as_millis() as u64),
            ),
            (
                "throughput_rps".to_string(),
                Json::Num(self.throughput_rps()),
            ),
            (
                "latency_us".to_string(),
                Json::Obj(vec![
                    ("p50".to_string(), Json::num(self.latency.p50_us)),
                    ("p95".to_string(), Json::num(self.latency.p95_us)),
                    ("p99".to_string(), Json::num(self.latency.p99_us)),
                    ("max".to_string(), Json::num(self.latency.max_us)),
                    ("mean".to_string(), Json::num(self.latency.mean_us)),
                ]),
            ),
        ])
    }
}

struct ClientTally {
    ok: u64,
    busy_retries: u64,
    errors: u64,
    error_samples: Vec<String>,
    latencies_us: Vec<u64>,
}

/// Run `config.clients` concurrent clients against `addr`, each issuing
/// `config.requests_per_client` requests round-robined over the
/// [`CORPUS`], and collect the merged report.
pub fn run_load(addr: SocketAddr, config: &LoadConfig) -> LoadReport {
    let started = Instant::now();
    let tallies: Vec<ClientTally> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..config.clients)
            .map(|client_index| scope.spawn(move || run_client(addr, client_index, config)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("load client panicked"))
            .collect()
    });

    let mut merged = ClientTally {
        ok: 0,
        busy_retries: 0,
        errors: 0,
        error_samples: Vec::new(),
        latencies_us: Vec::new(),
    };
    for tally in tallies {
        merged.ok += tally.ok;
        merged.busy_retries += tally.busy_retries;
        merged.errors += tally.errors;
        for sample in tally.error_samples {
            if merged.error_samples.len() < 5 {
                merged.error_samples.push(sample);
            }
        }
        merged.latencies_us.extend(tally.latencies_us);
    }
    LoadReport {
        clients: config.clients,
        ok: merged.ok,
        busy_retries: merged.busy_retries,
        errors: merged.errors,
        error_samples: merged.error_samples,
        elapsed: started.elapsed(),
        latency: Percentiles::from_latencies(&mut merged.latencies_us),
    }
}

fn run_client(addr: SocketAddr, client_index: usize, config: &LoadConfig) -> ClientTally {
    let mut tally = ClientTally {
        ok: 0,
        busy_retries: 0,
        errors: 0,
        error_samples: Vec::new(),
        latencies_us: Vec::new(),
    };
    let mut client = match Client::connect(addr) {
        Ok(client) => client,
        Err(e) => {
            tally.errors = config.requests_per_client as u64;
            tally.error_samples.push(format!("connect: {e}"));
            return tally;
        }
    };
    let params = crate::client::ExecuteParams {
        deadline_ms: config.deadline_ms,
        ..Default::default()
    };
    for request_index in 0..config.requests_per_client {
        // Offset by client id so concurrent clients overlap on *different*
        // corpus entries — more plan-cache sharing patterns, not fewer.
        let query = CORPUS[(client_index + request_index) % CORPUS.len()];
        let mut retries = 0usize;
        loop {
            let started = Instant::now();
            match client.execute_with(query.text, &params) {
                Ok(_) => {
                    tally
                        .latencies_us
                        .push(started.elapsed().as_micros() as u64);
                    tally.ok += 1;
                    break;
                }
                Err(e) if e.code() == Some(crate::protocol::code::BUSY) => {
                    tally.busy_retries += 1;
                    retries += 1;
                    if retries > config.max_busy_retries {
                        tally.errors += 1;
                        if tally.error_samples.len() < 5 {
                            tally
                                .error_samples
                                .push(format!("{}: busy retries exhausted", query.name));
                        }
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => {
                    tally.errors += 1;
                    if tally.error_samples.len() < 5 {
                        tally.error_samples.push(format!("{}: {e}", query.name));
                    }
                    // A transport error kills the connection; reconnect so
                    // the remaining requests still run.
                    if matches!(e, ClientError::Io(_)) {
                        match Client::connect(addr) {
                            Ok(fresh) => client = fresh,
                            Err(_) => return tally,
                        }
                    }
                    break;
                }
            }
        }
    }
    let _ = client.close();
    tally
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_distribution() {
        let mut latencies: Vec<u64> = (1..=100).collect();
        let p = Percentiles::from_latencies(&mut latencies);
        // Ceil-based nearest rank: p_q = value at rank ⌈q·n⌉.
        assert_eq!(p.p50_us, 50); // ⌈0.50·100⌉ = rank 50 -> value 50
        assert_eq!(p.p95_us, 95); // ⌈0.95·100⌉ = rank 95 -> value 95
        assert_eq!(p.p99_us, 99); // ⌈0.99·100⌉ = rank 99 -> value 99
        assert_eq!(p.max_us, 100);
        assert_eq!(p.mean_us, 51); // mean 50.5 rounds up, not truncates
                                   // Low sample counts are where the old round((n−1)·q) index overstated
                                   // percentile coverage: p99 of 10 samples must be the maximum.
        let mut ten: Vec<u64> = (1..=10).map(|i| i * 100).collect();
        let p = Percentiles::from_latencies(&mut ten);
        assert_eq!(p.p50_us, 500);
        assert_eq!(p.p95_us, 1000);
        assert_eq!(p.p99_us, 1000);
        // A single sample is every percentile.
        let p = Percentiles::from_latencies(&mut [7]);
        assert_eq!((p.p50_us, p.p99_us, p.max_us, p.mean_us), (7, 7, 7, 7));
    }

    #[test]
    fn empty_latencies_yield_zeroes() {
        let p = Percentiles::from_latencies(&mut Vec::new());
        assert_eq!(p, Percentiles::default());
    }
}
