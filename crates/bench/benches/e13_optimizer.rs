//! E13 — prepare-time cost of the algebraic optimizer, and the execute-time
//! payoff on a plan it rewrites.
use criterion::{criterion_group, criterion_main, Criterion};
use ncql_engine::{OptLevel, SessionBuilder};
use ncql_queries::parity;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e13_optimizer");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    // A closed 128-element parity sits inside the const-fold budget, so the
    // pair below measures both sides of the trade: `prepare` pays for the
    // rewrite pass (fold included), `execute` is repaid with a trivial plan.
    let atoms = ncql_object::Value::atom_set(0..128);
    let query = parity::parity_dcr(ncql_core::expr::Expr::constant(atoms));
    for (name, level) in [("raw", OptLevel::None), ("optimized", OptLevel::Default)] {
        let session = SessionBuilder::new().opt_level(level).build();
        group.bench_function(format!("prepare_{name}"), |b| {
            b.iter(|| {
                // A fresh text each iteration would defeat the plan cache;
                // prepare_expr on a clone measures the uncached pipeline.
                session.prepare_expr(query.clone()).unwrap()
            })
        });
        let prepared = session.prepare_expr(query.clone()).unwrap();
        group.bench_function(format!("execute_{name}"), |b| {
            b.iter(|| session.execute(&prepared).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
