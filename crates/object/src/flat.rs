//! Flat shapes and the fixed-width row encoding behind the columnar set
//! representation.
//!
//! A value is *flat* when it is built from scalars and pairs only — no set
//! constructor anywhere: atoms, booleans, `()`, external naturals, and nested
//! pairs thereof. §5's string encoding already observes that such values have
//! a fixed, type-determined size; this module promotes that observation into
//! the runtime. Every flat value of a given [`FlatShape`] encodes to exactly
//! [`FlatShape::width`] machine words, laid out left-to-right in constructor
//! order:
//!
//! * `()` contributes no words;
//! * `false`/`true` contribute `0`/`1`;
//! * atoms and naturals contribute their `u64` identity;
//! * a pair contributes its first component's words followed by its second's.
//!
//! The layout is chosen so that **lexicographic word comparison of two
//! same-shape rows equals [`Value`]'s lifted linear order** ([`Ord`] on
//! values): scalars order by their word, and the pair order (lexicographic,
//! first component first) coincides with comparing the concatenated rows
//! because the first component occupies a fixed prefix of the row. This is
//! what lets [`crate::VSet`] store a set of flat values as one `Vec<u64>` of
//! row-major rows and run membership, equality, ordering and the set
//! operations as tight word loops with no per-element dispatch.

use crate::types::Type;
use crate::value::Value;
use std::cmp::Ordering;

/// The shape of a flat value: products of scalars, with no set constructor.
///
/// Shapes classify values, not types: [`FlatShape::of_value`] derives the
/// unique shape of a flat value, and two values are candidates for the same
/// columnar buffer exactly when their shapes are equal.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FlatShape {
    /// The empty tuple `()` (zero words).
    Unit,
    /// A boolean (one word, `0` or `1`).
    Bool,
    /// An atom of the base type `D` (one word).
    Atom,
    /// An external natural number (one word).
    Nat,
    /// A pair of flat values (the components' words, concatenated).
    Pair(Box<FlatShape>, Box<FlatShape>),
}

impl FlatShape {
    /// The unique shape of `v`, or `None` if `v` contains a set anywhere
    /// (sets have data-dependent size and are not flat).
    pub fn of_value(v: &Value) -> Option<FlatShape> {
        match v {
            Value::Unit => Some(FlatShape::Unit),
            Value::Bool(_) => Some(FlatShape::Bool),
            Value::Atom(_) => Some(FlatShape::Atom),
            Value::Nat(_) => Some(FlatShape::Nat),
            Value::Pair(a, b) => Some(FlatShape::Pair(
                Box::new(FlatShape::of_value(a)?),
                Box::new(FlatShape::of_value(b)?),
            )),
            Value::Set(_) => None,
        }
    }

    /// The unique shape of all values of a *flat* type, or `None` if the type
    /// contains a set constructor anywhere. This is the static twin of
    /// [`FlatShape::of_value`]: every value of a flat type `t` has shape
    /// `of_type(t)`, which is what lets the row-kernel compiler derive shapes
    /// for an `ext` body from the lambda's parameter annotation before any
    /// value exists.
    pub fn of_type(ty: &Type) -> Option<FlatShape> {
        match ty {
            Type::Unit => Some(FlatShape::Unit),
            Type::Bool => Some(FlatShape::Bool),
            Type::Base => Some(FlatShape::Atom),
            Type::Nat => Some(FlatShape::Nat),
            Type::Prod(a, b) => Some(FlatShape::Pair(
                Box::new(FlatShape::of_type(a)?),
                Box::new(FlatShape::of_type(b)?),
            )),
            _ => None,
        }
    }

    /// Words per encoded row. `Unit` is zero-width, so shapes built only from
    /// units have width 0 — such shapes have a single inhabitant and the
    /// columnar representation declines them ([`crate::VSet`] keeps sets of
    /// width-0 shapes boxed).
    pub fn width(&self) -> usize {
        match self {
            FlatShape::Unit => 0,
            FlatShape::Bool | FlatShape::Atom | FlatShape::Nat => 1,
            FlatShape::Pair(a, b) => a.width() + b.width(),
        }
    }

    /// Append `v`'s row to `out`. Returns `false` (possibly after pushing a
    /// partial row — callers discard `out` on failure) when `v` does not have
    /// this shape; on success exactly [`FlatShape::width`] words were pushed.
    pub fn encode_into(&self, v: &Value, out: &mut Vec<u64>) -> bool {
        match (self, v) {
            (FlatShape::Unit, Value::Unit) => true,
            (FlatShape::Bool, Value::Bool(b)) => {
                out.push(u64::from(*b));
                true
            }
            (FlatShape::Atom, Value::Atom(a)) => {
                out.push(*a);
                true
            }
            (FlatShape::Nat, Value::Nat(n)) => {
                out.push(*n);
                true
            }
            (FlatShape::Pair(sa, sb), Value::Pair(a, b)) => {
                sa.encode_into(a, out) && sb.encode_into(b, out)
            }
            _ => false,
        }
    }

    /// Decode one row (exactly [`FlatShape::width`] words) back into a value.
    pub fn decode(&self, row: &[u64]) -> Value {
        let (v, used) = self.decode_prefix(row);
        debug_assert_eq!(used, row.len(), "row width mismatch in decode");
        v
    }

    /// Decode this shape from the front of `words`, returning the value and
    /// the number of words consumed.
    fn decode_prefix(&self, words: &[u64]) -> (Value, usize) {
        match self {
            FlatShape::Unit => (Value::Unit, 0),
            FlatShape::Bool => (Value::Bool(words[0] != 0), 1),
            FlatShape::Atom => (Value::Atom(words[0]), 1),
            FlatShape::Nat => (Value::Nat(words[0]), 1),
            FlatShape::Pair(sa, sb) => {
                let (a, used_a) = sa.decode_prefix(words);
                let (b, used_b) = sb.decode_prefix(&words[used_a..]);
                (Value::Pair(Box::new(a), Box::new(b)), used_a + used_b)
            }
        }
    }
}

// ----- row kernels (crate-internal: `VSet` is the public surface) -----
//
// All kernels take row-major word buffers whose length is a multiple of
// `width` (`width ≥ 1`), rows sorted ascending and duplicate-free in the row
// (= value) order. They are the memcmp-style loops the columnar set
// representation compiles its hot paths to.

/// Compare two same-width rows: lexicographic on words, which for same-shape
/// rows equals the lifted [`Value`] order (see the module docs).
#[inline]
pub(crate) fn row_cmp(a: &[u64], b: &[u64]) -> Ordering {
    a.cmp(b)
}

/// Binary-search `rows` (sorted, dup-free) for `probe`; `Ok(i)` on a hit.
pub(crate) fn row_search(rows: &[u64], width: usize, probe: &[u64]) -> Result<usize, usize> {
    debug_assert_eq!(probe.len(), width);
    let n = rows.len() / width;
    let (mut lo, mut hi) = (0usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match row_cmp(&rows[mid * width..(mid + 1) * width], probe) {
            Ordering::Less => lo = mid + 1,
            Ordering::Greater => hi = mid,
            Ordering::Equal => return Ok(mid),
        }
    }
    Err(lo)
}

/// Merge-union two sorted dup-free row buffers into a fresh one.
pub(crate) fn row_union(a: &[u64], b: &[u64], width: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match row_cmp(&a[i..i + width], &b[j..j + width]) {
            Ordering::Less => {
                out.extend_from_slice(&a[i..i + width]);
                i += width;
            }
            Ordering::Greater => {
                out.extend_from_slice(&b[j..j + width]);
                j += width;
            }
            Ordering::Equal => {
                out.extend_from_slice(&a[i..i + width]);
                i += width;
                j += width;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Merge-intersect two sorted dup-free row buffers.
pub(crate) fn row_intersect(a: &[u64], b: &[u64], width: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match row_cmp(&a[i..i + width], &b[j..j + width]) {
            Ordering::Less => i += width,
            Ordering::Greater => j += width,
            Ordering::Equal => {
                out.extend_from_slice(&a[i..i + width]);
                i += width;
                j += width;
            }
        }
    }
    out
}

/// Merge-difference (`a \ b`) of two sorted dup-free row buffers.
pub(crate) fn row_difference(a: &[u64], b: &[u64], width: usize) -> Vec<u64> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() {
        if j >= b.len() {
            out.extend_from_slice(&a[i..]);
            break;
        }
        match row_cmp(&a[i..i + width], &b[j..j + width]) {
            Ordering::Less => {
                out.extend_from_slice(&a[i..i + width]);
                i += width;
            }
            Ordering::Greater => j += width,
            Ordering::Equal => {
                i += width;
                j += width;
            }
        }
    }
    out
}

/// Is every row of `a` present in `b`? Two-pointer scan over sorted buffers.
pub(crate) fn row_subset(a: &[u64], b: &[u64], width: usize) -> bool {
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() {
        if j >= b.len() {
            return false;
        }
        match row_cmp(&a[i..i + width], &b[j..j + width]) {
            Ordering::Less => return false,
            Ordering::Greater => j += width,
            Ordering::Equal => {
                i += width;
                j += width;
            }
        }
    }
    true
}

/// Sort a row-major buffer by row and remove duplicate rows, in place for
/// width 1 and via a scratch permutation otherwise. Used by the bulk
/// canonicalization paths (`FromIterator`, the post-`ext` merge).
pub(crate) fn row_sort_dedup(words: Vec<u64>, width: usize) -> Vec<u64> {
    debug_assert!(width >= 1 && words.len().is_multiple_of(width));
    if width == 1 {
        let mut words = words;
        words.sort_unstable();
        words.dedup();
        return words;
    }
    let mut index: Vec<usize> = (0..words.len() / width).collect();
    index.sort_unstable_by(|&x, &y| {
        row_cmp(
            &words[x * width..(x + 1) * width],
            &words[y * width..(y + 1) * width],
        )
    });
    let mut out = Vec::with_capacity(words.len());
    for &at in &index {
        let row = &words[at * width..(at + 1) * width];
        if out.len() < width || row_cmp(&out[out.len() - width..], row) != Ordering::Equal {
            out.extend_from_slice(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(a: Value, b: Value) -> Value {
        Value::pair(a, b)
    }

    #[test]
    fn shapes_classify_flat_values_and_reject_sets() {
        assert_eq!(FlatShape::of_value(&Value::Atom(3)), Some(FlatShape::Atom));
        let p = pair(Value::Atom(1), pair(Value::Bool(true), Value::Nat(9)));
        let shape = FlatShape::of_value(&p).expect("flat");
        assert_eq!(shape.width(), 3);
        assert_eq!(FlatShape::of_value(&Value::empty_set()), None);
        assert_eq!(
            FlatShape::of_value(&pair(Value::Atom(1), Value::empty_set())),
            None
        );
    }

    #[test]
    fn of_type_agrees_with_of_value() {
        let ty = Type::prod(Type::Base, Type::prod(Type::Bool, Type::Nat));
        let v = pair(Value::Atom(1), pair(Value::Bool(true), Value::Nat(9)));
        assert_eq!(FlatShape::of_type(&ty), FlatShape::of_value(&v));
        assert_eq!(FlatShape::of_type(&Type::Unit), Some(FlatShape::Unit));
        assert_eq!(FlatShape::of_type(&Type::set(Type::Base)), None);
        assert_eq!(
            FlatShape::of_type(&Type::prod(Type::Base, Type::set(Type::Base))),
            None
        );
    }

    #[test]
    fn encode_decode_round_trips() {
        let samples = vec![
            Value::Unit,
            Value::Bool(false),
            Value::Bool(true),
            Value::Atom(42),
            Value::Nat(u64::MAX),
            pair(Value::Atom(1), Value::Atom(2)),
            pair(pair(Value::Unit, Value::Bool(true)), Value::Nat(7)),
        ];
        for v in samples {
            let shape = FlatShape::of_value(&v).expect("flat");
            let mut row = Vec::new();
            assert!(shape.encode_into(&v, &mut row));
            assert_eq!(row.len(), shape.width());
            assert_eq!(shape.decode(&row), v);
        }
    }

    #[test]
    fn encode_rejects_shape_mismatches() {
        let mut out = Vec::new();
        assert!(!FlatShape::Atom.encode_into(&Value::Nat(1), &mut out));
        assert!(
            !FlatShape::Pair(Box::new(FlatShape::Atom), Box::new(FlatShape::Atom))
                .encode_into(&pair(Value::Atom(1), Value::Bool(true)), &mut out)
        );
    }

    #[test]
    fn row_order_equals_value_order_on_same_shape_values() {
        // Exhaustive-ish sweep over a nested pair shape: word order must
        // coincide with the lifted linear order for every same-shape pair.
        let mut values = Vec::new();
        for a in 0..3u64 {
            for b in [false, true] {
                for c in 0..3u64 {
                    values.push(pair(Value::Atom(a), pair(Value::Bool(b), Value::Nat(c))));
                }
            }
        }
        let shape = FlatShape::of_value(&values[0]).unwrap();
        for x in &values {
            for y in &values {
                let (mut rx, mut ry) = (Vec::new(), Vec::new());
                assert!(shape.encode_into(x, &mut rx) && shape.encode_into(y, &mut ry));
                assert_eq!(row_cmp(&rx, &ry), x.cmp(y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn kernels_agree_with_naive_set_algebra() {
        let width = 2;
        let enc = |pairs: &[(u64, u64)]| -> Vec<u64> {
            let mut rows: Vec<(u64, u64)> = pairs.to_vec();
            rows.sort_unstable();
            rows.dedup();
            rows.iter().flat_map(|&(a, b)| [a, b]).collect()
        };
        let a = enc(&[(1, 2), (3, 4), (5, 6), (9, 0)]);
        let b = enc(&[(3, 4), (5, 5), (9, 0), (9, 1)]);
        assert_eq!(
            row_union(&a, &b, width),
            enc(&[(1, 2), (3, 4), (5, 5), (5, 6), (9, 0), (9, 1)])
        );
        assert_eq!(row_intersect(&a, &b, width), enc(&[(3, 4), (9, 0)]));
        assert_eq!(row_difference(&a, &b, width), enc(&[(1, 2), (5, 6)]));
        assert!(row_subset(&enc(&[(3, 4), (9, 0)]), &a, width));
        assert!(!row_subset(&b, &a, width));
        assert_eq!(row_search(&a, width, &[5, 6]), Ok(2));
        assert!(row_search(&a, width, &[5, 5]).is_err());
    }

    #[test]
    fn sort_dedup_canonicalizes_any_row_order() {
        // width 1 (in-place sort) and width 2 (permutation sort).
        assert_eq!(row_sort_dedup(vec![5, 1, 3, 1, 5], 1), vec![1, 3, 5]);
        let rows = vec![9, 0, 1, 2, 9, 0, 1, 1];
        assert_eq!(row_sort_dedup(rows, 2), vec![1, 1, 1, 2, 9, 0]);
    }
}
