//! PRAM-style parallel execution substrate.
//!
//! The paper's complexity class NC is defined via uniform circuit families and is
//! equivalent to polylogarithmic time on a CRCW PRAM with polynomially many
//! processors (§4, citing Stockmeyer & Vishkin). We obviously cannot reproduce a
//! PRAM on stock hardware; what this crate reproduces is the *shape* of the
//! claim: the divide-and-conquer constructs of the language (`ext` fan-out and
//! the `dcr` combining tree) expose their parallelism to real threads, so the
//! critical path measured by the cost model in `ncql-core` translates into
//! wall-clock speedup, while the element-by-element recursion `sri` has a serial
//! chain that no number of threads can shorten.
//!
//! This crate is deliberately *language-agnostic*: it knows nothing about
//! expressions or values. It provides fork/join primitives over plain slices —
//! [`ParallelExecutor::par_chunks`] (one worker per contiguous shard) and
//! [`ParallelExecutor::par_map`] — with strict error and panic discipline:
//!
//! * a worker returning `Err` aborts the whole operation with
//!   [`TaskError::Failed`];
//! * a worker *panicking* is caught ([`std::panic::catch_unwind`]), every other
//!   worker is still joined, all partial results are dropped, and the panic
//!   surfaces as [`TaskError::Panicked`] instead of unwinding through the scope
//!   and aborting the process;
//! * when several workers fail, the error of the lowest-indexed shard wins, so
//!   the reported error is deterministic regardless of thread scheduling.
//!
//! `ncql-core` builds its [`ParallelEvaluator`](https://docs.rs/ncql-core)
//! dispatch for `ext` element maps and `dcr` combining trees on top of these
//! primitives; keeping this crate free of `ncql-core` types is what lets the
//! evaluator depend on it without a cycle.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread;

/// Configuration of the parallel executor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Number of worker threads (defaults to the number of available cores).
    pub threads: usize,
    /// Below this many items the executor stays on the calling thread (thread
    /// start-up costs more than it saves).
    pub sequential_cutoff: usize,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            threads: available_threads(),
            sequential_cutoff: 8,
        }
    }
}

/// The number of hardware threads available, with a conservative fallback.
pub fn available_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
}

/// Why a parallel operation failed: a worker returned an error, or a worker
/// panicked (the panic is caught, all siblings are joined, and their results
/// are discarded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskError<E> {
    /// A worker closure returned `Err`.
    Failed(E),
    /// A worker closure panicked; the payload message is preserved.
    Panicked(String),
}

impl<E: std::fmt::Display> std::fmt::Display for TaskError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskError::Failed(e) => write!(f, "parallel worker failed: {e}"),
            TaskError::Panicked(msg) => write!(f, "parallel worker panicked: {msg}"),
        }
    }
}

impl<E: std::fmt::Debug + std::fmt::Display> std::error::Error for TaskError<E> {}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

/// A fork/join executor over slices, one shard per worker thread.
#[derive(Debug, Clone, Default)]
pub struct ParallelExecutor {
    config: ParallelConfig,
}

impl ParallelExecutor {
    /// Create an executor with the given configuration.
    pub fn new(config: ParallelConfig) -> ParallelExecutor {
        ParallelExecutor { config }
    }

    /// Create an executor with the given thread count and default cutoff.
    pub fn with_threads(threads: usize) -> ParallelExecutor {
        ParallelExecutor {
            config: ParallelConfig {
                threads,
                ..ParallelConfig::default()
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Split `items` into at most `threads` contiguous shards and run `worker`
    /// on each shard in its own scoped thread, returning the per-shard results
    /// in shard order. The worker receives `(shard_index, shard)`.
    ///
    /// Small inputs (≤ `sequential_cutoff`) and single-threaded configurations
    /// run on the calling thread. A panicking worker is caught and reported as
    /// [`TaskError::Panicked`]; all other workers are joined first and their
    /// results are dropped.
    pub fn par_chunks<T, R, E, F>(&self, items: &[T], worker: F) -> Result<Vec<R>, TaskError<E>>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(usize, &[T]) -> Result<R, E> + Sync,
    {
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let threads = self.config.threads.max(1);
        if threads == 1 || items.len() <= self.config.sequential_cutoff {
            // Sequential path still runs through the same worker signature —
            // and the same panic discipline — so the two backends are
            // indistinguishable to the caller.
            return match catch_unwind(AssertUnwindSafe(|| worker(0, items))) {
                Ok(Ok(r)) => Ok(vec![r]),
                Ok(Err(e)) => Err(TaskError::Failed(e)),
                Err(payload) => Err(TaskError::Panicked(panic_message(payload))),
            };
        }
        let chunk_size = items.len().div_ceil(threads);
        let joined: Vec<Result<R, TaskError<E>>> = thread::scope(|scope| {
            let handles: Vec<_> = items
                .chunks(chunk_size)
                .enumerate()
                .map(|(index, shard)| {
                    let worker = &worker;
                    scope.spawn(move || {
                        catch_unwind(AssertUnwindSafe(|| worker(index, shard)))
                    })
                })
                .collect();
            // Join every worker before inspecting any result: a panic in one
            // shard must not leave siblings detached, and their results are
            // dropped below rather than leaked into a partial output.
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(Ok(Ok(r))) => Ok(r),
                    Ok(Ok(Err(e))) => Err(TaskError::Failed(e)),
                    Ok(Err(payload)) => Err(TaskError::Panicked(panic_message(payload))),
                    // The catch_unwind above makes this unreachable in practice,
                    // but keep the scope itself panic-proof.
                    Err(payload) => Err(TaskError::Panicked(panic_message(payload))),
                })
                .collect()
        });
        // Lowest shard index wins, so the reported error is deterministic.
        joined.into_iter().collect()
    }

    /// Parallel map preserving item order: apply `f` to every element, sharded
    /// across the worker threads. Errors and panics follow
    /// [`ParallelExecutor::par_chunks`] discipline.
    pub fn par_map<T, R, E, F>(&self, items: &[T], f: F) -> Result<Vec<R>, TaskError<E>>
    where
        T: Sync,
        R: Send,
        E: Send,
        F: Fn(&T) -> Result<R, E> + Sync,
    {
        let per_shard =
            self.par_chunks(items, |_, shard| shard.iter().map(&f).collect::<Result<Vec<R>, E>>())?;
        let mut out = Vec::with_capacity(items.len());
        for shard in per_shard {
            out.extend(shard);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn executor(threads: usize) -> ParallelExecutor {
        ParallelExecutor::new(ParallelConfig {
            threads,
            sequential_cutoff: 2,
        })
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 3, 8] {
            let out = executor(threads)
                .par_map(&items, |x| Ok::<u64, ()>(x * x))
                .unwrap();
            assert_eq!(out, items.iter().map(|x| x * x).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn par_chunks_covers_every_item_exactly_once() {
        let items: Vec<u64> = (0..57).collect();
        let shards = executor(4)
            .par_chunks(&items, |index, shard| Ok::<(usize, Vec<u64>), ()>((index, shard.to_vec())))
            .unwrap();
        assert!(shards.len() <= 4);
        let mut seen = Vec::new();
        for (i, (index, shard)) in shards.iter().enumerate() {
            assert_eq!(i, *index);
            seen.extend(shard.iter().copied());
        }
        assert_eq!(seen, items);
    }

    #[test]
    fn empty_input_spawns_nothing() {
        let out = executor(4).par_map(&Vec::<u64>::new(), |_| Ok::<u64, ()>(0)).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn small_inputs_stay_on_the_calling_thread() {
        let calling = std::thread::current().id();
        let items = [1u64, 2];
        let out = executor(8)
            .par_chunks(&items, |_, shard| {
                assert_eq!(std::thread::current().id(), calling);
                Ok::<usize, ()>(shard.len())
            })
            .unwrap();
        assert_eq!(out, vec![2]);
    }

    #[test]
    fn worker_errors_propagate_deterministically() {
        let items: Vec<u64> = (0..64).collect();
        // Two shards fail; the lowest shard index must win every run.
        for _ in 0..10 {
            let err = executor(4)
                .par_chunks(&items, |index, _| {
                    if index >= 1 {
                        Err(format!("shard {index} failed"))
                    } else {
                        Ok(index)
                    }
                })
                .unwrap_err();
            assert_eq!(err, TaskError::Failed("shard 1 failed".to_string()));
        }
    }

    /// Regression test for the panic-propagation contract: a panicking shard
    /// surfaces as `TaskError::Panicked` with the payload message, the process
    /// survives, every sibling is joined (observed via the drop counter), and
    /// no partial results leak out of the call.
    #[test]
    fn panicking_worker_is_caught_joined_and_reported() {
        static DROPS: AtomicUsize = AtomicUsize::new(0);
        #[derive(Debug)]
        struct CountsDrops;
        impl Drop for CountsDrops {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        let items: Vec<u64> = (0..64).collect();
        let result = executor(4).par_chunks(&items, |index, _| {
            if index == 2 {
                panic!("extern exploded in shard {index}");
            }
            Ok::<CountsDrops, String>(CountsDrops)
        });
        match result {
            Err(TaskError::Panicked(msg)) => assert!(
                msg.contains("extern exploded in shard 2"),
                "payload message preserved, got: {msg}"
            ),
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The three successful shards' results were joined and then dropped —
        // none leaked past the error return.
        assert_eq!(DROPS.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn panics_are_caught_on_the_sequential_fallback_too() {
        // Single-threaded configs and small inputs run inline, but the panic
        // contract must hold there as well.
        let items = [1u64, 2, 3];
        for threads in [1usize, 8] {
            let err = executor(threads)
                .par_chunks(&items, |_, _| -> Result<u64, ()> { panic!("inline boom") })
                .unwrap_err();
            assert_eq!(err, TaskError::Panicked("inline boom".to_string()), "threads={threads}");
        }
    }

    #[test]
    fn panic_beaten_by_lower_indexed_error() {
        let items: Vec<u64> = (0..64).collect();
        let err = executor(4)
            .par_chunks(&items, |index, _| match index {
                1 => Err("shard 1 error".to_string()),
                3 => panic!("shard 3 panic"),
                _ => Ok(index),
            })
            .unwrap_err();
        assert_eq!(err, TaskError::Failed("shard 1 error".to_string()));
    }

    #[test]
    fn string_panic_payloads_are_preserved() {
        let items: Vec<u64> = (0..32).collect();
        let owned = String::from("owned payload");
        let err = executor(2)
            .par_chunks(&items, |index, _| {
                if index == 0 {
                    panic!("{}", owned.clone());
                }
                Ok::<u64, ()>(0)
            })
            .unwrap_err();
        assert_eq!(err, TaskError::Panicked("owned payload".to_string()));
    }
}
