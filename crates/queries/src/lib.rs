//! Query library and workload generators for the NC query language.
//!
//! Everything here is *built from the public API of `ncql-core`*: each query is an
//! ordinary expression of the language, assembled by a builder function. The
//! library covers the paper's worked examples and the workloads the experiments
//! need:
//!
//! * [`parity`] — the §1 parity example, in its `dcr`, `sri`/`esr` and `loop`
//!   variants.
//! * [`graph`] — transitive closure in the §1 `dcr` form, the Example 7.1
//!   `log-loop` form, and an element-by-element (PTIME-style) form; plus
//!   reachability and related graph queries, and a native Rust baseline
//!   ([`relation::Relation`]) to cross-check results.
//! * [`relalg`] — classical relational-algebra queries phrased in NRA.
//! * [`aggregates`] — cardinality/sum/max aggregates via `dcr` with the external
//!   arithmetic Σ of Proposition 6.3.
//! * [`powerset`] — the high-complexity query that motivates *bounded* dcr over
//!   complex objects (§2), in unbounded and bounded forms.
//! * [`arith`] — the ordered-universe arithmetic toolkit of Proposition 7.8
//!   step 2 (successor, linear order, addition/multiplication/bit tables).
//! * [`iterate`] — the Example 7.2 iteration-count gadgets (`n`, `n²`, `log n`,
//!   `log² n` rounds).
//! * [`datagen`] — deterministic random workload generators (graphs, relations,
//!   nested complex objects).
//! * [`corpus`] — one closed instance of every query family above, iterated by
//!   the cross-backend differential test suite.
//! * [`run`] — a thin shim over the engine's `Session` for corpus callers: one
//!   call evaluating an `Expr` with a `parallelism` knob selecting the
//!   sequential or the parallel backend.

pub mod aggregates;
pub mod arith;
pub mod corpus;
pub mod datagen;
pub mod graph;
pub mod iterate;
pub mod parity;
pub mod powerset;
pub mod relalg;
pub mod relation;
pub mod run;

pub use corpus::{differential_corpus, CorpusEntry};
pub use relation::Relation;
pub use run::{eval_query, eval_query_with};
