//! E3 — Proposition 2.1: overhead of the dcr→esr→sri translations.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::derived;
use ncql_core::eval::eval_closed;
use ncql_core::expr::Expr;
use ncql_object::{Type, Value};
use ncql_translate::prop21;
use std::time::Duration;

fn parity_parts() -> (Expr, Expr) {
    (
        Expr::lam("y", Type::Base, Expr::bool_val(true)),
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            derived::xor(Expr::var("a"), Expr::var("b")),
        ),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_recursion_translations");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [32u64, 128] {
        let input = Expr::constant(Value::atom_set(0..n));
        let (f, u) = parity_parts();
        let direct = Expr::dcr(Expr::bool_val(false), f.clone(), u.clone(), input.clone());
        let via_esr = prop21::dcr_via_esr(
            Expr::bool_val(false),
            f.clone(),
            u.clone(),
            input.clone(),
            Type::Base,
            Type::Bool,
        );
        let via_sri =
            prop21::dcr_via_sri(Expr::bool_val(false), f, u, input, Type::Base, Type::Bool);
        group.bench_with_input(BenchmarkId::new("direct_dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&direct).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("via_esr", n), &n, |b, _| {
            b.iter(|| eval_closed(&via_esr).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("via_sri", n), &n, |b, _| {
            b.iter(|| eval_closed(&via_sri).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
