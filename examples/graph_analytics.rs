//! Graph analytics with the NC query language: transitive closure, reachability
//! and connectivity over generated graphs, comparing the divide-and-conquer
//! (NC-style) and element-by-element (PTIME-style) evaluation strategies, and
//! running the dcr combining tree on the parallel evaluation backend.
//!
//! Run with: `cargo run --example graph_analytics --release`

use ncql::core::eval::{eval_with_stats, EvalConfig};
use ncql::core::expr::Expr;
use ncql::core::parallel::ParallelEvaluator;
use ncql::queries::{datagen, graph};
use std::time::Instant;

fn main() {
    println!("n     dcr span   elementwise span   dcr work   elementwise work");
    for n in [8u64, 16, 32, 48] {
        let rel = datagen::random_graph(n, 2.0 / n as f64, 42);
        let r = Expr::Const(rel.to_value());
        let (tc_dcr, dcr_stats) = eval_with_stats(&graph::tc_dcr(r.clone())).expect("tc dcr");
        let (tc_elem, elem_stats) =
            eval_with_stats(&graph::tc_elementwise(r.clone())).expect("tc elementwise");
        assert_eq!(tc_dcr, tc_elem, "both strategies compute the same closure");
        assert_eq!(tc_dcr, rel.transitive_closure().to_value());
        println!(
            "{:<5} {:<10} {:<18} {:<10} {:<10}",
            n, dcr_stats.span, elem_stats.span, dcr_stats.work, elem_stats.work
        );
    }

    // Reachability and connectivity queries.
    let rel = datagen::cycle_graph(12);
    let r = Expr::Const(rel.to_value());
    let reach = eval_with_stats(&graph::reachable_from(r.clone(), Expr::atom(0)))
        .expect("reachability")
        .0;
    println!("\nnodes reachable from 0 on a 12-cycle: {}", reach.cardinality().unwrap_or(0));
    let connected = eval_with_stats(&graph::strongly_connected(r)).expect("connectivity").0;
    println!("cycle is strongly connected        : {connected}");
    let path = Expr::Const(datagen::path_graph(12).to_value());
    let connected_path =
        eval_with_stats(&graph::strongly_connected(path)).expect("connectivity").0;
    println!("path  is strongly connected        : {connected_path}");

    // Wall-clock on the parallel evaluation backend: the dcr combining tree
    // forks across worker threads, the element-by-element fold cannot.
    let n = 40u64;
    let query = graph::tc_dcr(Expr::Const(datagen::path_graph(n).to_value()));
    println!("\nthreads   tc_dcr wall-clock (ms)");
    for threads in [1usize, 2, 4, 8] {
        let mut evaluator = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(threads),
            parallel_cutoff: 256,
            ..EvalConfig::default()
        });
        let start = Instant::now();
        let out = evaluator.eval_closed(&query).expect("parallel tc");
        let elapsed = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(out.cardinality(), Some(((n + 1) * n / 2) as usize));
        println!("{threads:<9} {elapsed:.1}");
    }
}
