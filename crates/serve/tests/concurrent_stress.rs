//! Concurrency stress: many simultaneous wire clients against one server
//! must produce bit-identical values to direct `Session` execution, absorb
//! overload through typed `busy` answers without deadlocking (including at
//! pool width 1 — the `NCQL_TEST_PARALLELISM=1` CI leg), and cancel an
//! over-deadline query while the rest of the in-flight traffic completes.

use ncql_core::parallelism_from_env;
use ncql_engine::SessionBuilder;
use ncql_object::Value;
use ncql_serve::corpus::{expensive_query, CORPUS};
use ncql_serve::protocol::code;
use ncql_serve::{Client, ExecuteParams, ServeConfig, Server, ServerHandle};
use std::time::Duration;

/// The suite's session builder: backend from `NCQL_TEST_PARALLELISM` (the
/// same idiom as the differential suites), cutover 1 so parallel legs fork.
fn builder() -> SessionBuilder {
    SessionBuilder::new()
        .parallelism(parallelism_from_env())
        .parallel_cutoff(1)
}

fn serve(config: ServeConfig) -> ServerHandle {
    Server::bind(config, builder().build())
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// Execute over the wire, absorbing `busy` answers by retrying. Panics after
/// an implausible number of retries — that would be the deadlock this suite
/// exists to rule out.
fn execute_retrying(client: &mut Client, text: &str) -> Value {
    for _ in 0..10_000 {
        match client.execute(text) {
            Ok(outcome) => return outcome.value,
            Err(e) if e.code() == Some(code::BUSY) => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("wire execution of `{text}` failed: {e}"),
        }
    }
    panic!("`{text}` starved: 10k busy answers in a row looks like livelock");
}

#[test]
fn sixty_four_concurrent_clients_match_direct_execution_bit_for_bit() {
    // Direct execution on an identically configured session gives the
    // expected value for every corpus entry.
    let local = builder().build();
    let expected: Vec<Value> = CORPUS
        .iter()
        .map(|q| local.run(q.text).expect(q.name).value)
        .collect();

    // max_inflight far below the client count so admission control is
    // genuinely contended, not just present.
    let handle = serve(ServeConfig {
        max_inflight: 8,
        admission_timeout_ms: 5,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    const CLIENTS: usize = 64;
    const REQUESTS_PER_CLIENT: usize = 8;
    std::thread::scope(|scope| {
        let expected = &expected;
        let handles: Vec<_> = (0..CLIENTS)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for request_index in 0..REQUESTS_PER_CLIENT {
                        let pick = (client_index + request_index) % CORPUS.len();
                        let value = execute_retrying(&mut client, CORPUS[pick].text);
                        assert_eq!(
                            value, expected[pick],
                            "client {client_index} got a different value for {}",
                            CORPUS[pick].name
                        );
                    }
                    client.close().expect("close");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread panicked");
        }
    });
    handle.shutdown();
}

#[test]
fn admission_width_one_never_deadlocks() {
    // The tightest possible admission window: one evaluation at a time, with
    // a 1ms acquire timeout, hammered by 16 clients. Every request must
    // eventually complete via busy-retry — if a permit ever leaked, this
    // would livelock and trip the retry bound.
    let handle = serve(ServeConfig {
        max_inflight: 1,
        admission_timeout_ms: 1,
        ..ServeConfig::default()
    });
    let addr = handle.addr();

    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..16)
            .map(|client_index| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for request_index in 0..6 {
                        let pick = (client_index + request_index) % CORPUS.len();
                        execute_retrying(&mut client, CORPUS[pick].text);
                    }
                    client.close().expect("close");
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread panicked");
        }
    });
    handle.shutdown();
}

#[test]
fn a_cancelled_deadline_does_not_disturb_other_in_flight_clients() {
    let handle = serve(ServeConfig::default());
    let addr = handle.addr();
    let local = builder().build();
    let expected: Vec<Value> = CORPUS
        .iter()
        .map(|q| local.run(q.text).expect(q.name).value)
        .collect();

    std::thread::scope(|scope| {
        // One slow client: an expensive query under a 1ms deadline, walked up
        // a size ladder until the deadline genuinely fires mid-evaluation.
        let slow = scope.spawn(move || {
            let mut client = Client::connect(addr).expect("connect");
            for n in [48usize, 64, 96, 128] {
                let text = expensive_query(n);
                match client.execute_with(
                    &text,
                    &ExecuteParams {
                        deadline_ms: Some(1),
                        ..Default::default()
                    },
                ) {
                    Ok(_) => continue,
                    Err(e) => {
                        let diag = e.remote().expect("typed error").clone();
                        assert_eq!(diag.code, code::DEADLINE);
                        client.close().expect("close");
                        return;
                    }
                }
            }
            panic!("no ladder size exceeded a 1ms deadline");
        });

        // Eight fast clients running the corpus at the same time: all must
        // succeed with correct values while the slow query is cancelled.
        let fast: Vec<_> = (0..8)
            .map(|client_index| {
                let expected = &expected;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    for request_index in 0..6 {
                        let pick = (client_index + request_index) % CORPUS.len();
                        let value = execute_retrying(&mut client, CORPUS[pick].text);
                        assert_eq!(value, expected[pick], "{}", CORPUS[pick].name);
                    }
                    client.close().expect("close");
                })
            })
            .collect();

        for h in fast {
            h.join().expect("fast client panicked");
        }
        slow.join().expect("slow client panicked");
    });
    handle.shutdown();
}
