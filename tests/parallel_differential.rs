//! Cross-backend differential suite: every query in the `ncql-queries` corpus
//! (parity, graph, relational algebra, arithmetic, aggregates, powerset,
//! iteration counters) is evaluated through the engine's `Session` on the
//! sequential backend and on the parallel backend at `parallelism = 2, 4, 8`
//! (plus whatever `NCQL_TEST_PARALLELISM` asks for — the CI matrix sets 1
//! and 4).
//!
//! The contract this suite locks down: the two backends are observationally
//! identical. Values are bit-identical, and so is every cost tally — *work* in
//! particular is required to agree exactly, because the parallel backend
//! absorbs each worker's charges after the join; *span* agrees exactly as well
//! (not merely "differs in the documented direction"): the span is a property
//! of the cost model's combining-tree shape, which both backends execute
//! identically, so any divergence is a bug, and we assert the strongest
//! invariant that holds.

use ncql::core::eval::EvalConfig;
use ncql::core::parallelism_from_env;
use ncql::queries::differential_corpus;
use ncql::{Backend, Outcome, Session, SessionBuilder};

/// The thread counts the suite exercises: the fixed 2/4/8 ladder plus the
/// environment's request (deduplicated). Degenerate env values (`0`/`1`)
/// normalize to the sequential backend, which every test here already
/// exercises as the baseline, so only `n ≥ 2` joins the parallel ladder.
fn thread_counts() -> Vec<usize> {
    let mut counts = vec![2usize, 4, 8];
    if let Some(n) = parallelism_from_env() {
        if n >= 2 && !counts.contains(&n) {
            counts.push(n);
        }
    }
    counts
}

/// A session on the given backend with a low cutover so the corpus's mid-sized
/// sets actually fork (the default threshold is tuned for production sets, not
/// test-sized ones).
fn forking_session(parallelism: Option<usize>) -> Session {
    SessionBuilder::new()
        .parallel_cutoff(64)
        .parallelism(parallelism)
        .build()
}

fn eval_both(name: &str, expr: &ncql::core::Expr, threads: usize) -> (Outcome, Outcome) {
    let seq = forking_session(None)
        .evaluate(expr)
        .unwrap_or_else(|e| panic!("{name}: sequential backend failed: {e}"));
    let par = forking_session(Some(threads))
        .evaluate(expr)
        .unwrap_or_else(|e| panic!("{name}: parallel backend ({threads} threads) failed: {e}"));
    (seq, par)
}

#[test]
fn every_corpus_query_is_backend_invariant() {
    let corpus = differential_corpus();
    assert!(corpus.len() >= 40, "corpus unexpectedly small: {}", corpus.len());
    let seq_session = forking_session(None);
    assert_eq!(seq_session.backend(), Backend::Sequential);
    // One session per thread count, reused across the whole corpus.
    let par_sessions: Vec<(usize, Session)> = thread_counts()
        .into_iter()
        .map(|threads| (threads, forking_session(Some(threads))))
        .collect();
    for entry in &corpus {
        // Evaluate sequentially once per query, then compare per thread count.
        let seq = seq_session
            .evaluate(&entry.expr)
            .unwrap_or_else(|e| panic!("{}: sequential backend failed: {e}", entry.name));
        for (threads, par_session) in &par_sessions {
            let threads = *threads;
            assert_eq!(par_session.backend(), Backend::Parallel { threads });
            let par = par_session.evaluate(&entry.expr).unwrap_or_else(|e| {
                panic!("{}: parallel backend ({threads} threads) failed: {e}", entry.name)
            });
            assert_eq!(
                par.value, seq.value,
                "{}: values differ at parallelism = {threads}",
                entry.name
            );
            assert_eq!(
                par.stats.work, seq.stats.work,
                "{}: reported work differs at parallelism = {threads}",
                entry.name
            );
            assert_eq!(
                par.stats, seq.stats,
                "{}: cost statistics differ at parallelism = {threads}",
                entry.name
            );
        }
    }
}

#[test]
fn parallel_results_are_deterministic_across_runs() {
    // Scheduling must not leak into results: repeated parallel runs of the
    // same query agree with themselves bit-for-bit.
    let corpus = differential_corpus();
    let entry = corpus
        .iter()
        .find(|e| e.name == "graph/tc_dcr/path/18")
        .expect("corpus entry");
    let first = eval_both(&entry.name, &entry.expr, 4);
    for _ in 0..5 {
        let again = eval_both(&entry.name, &entry.expr, 4);
        assert_eq!(again, first);
    }
}

#[test]
fn resource_limits_fire_identically_on_the_corpus() {
    // Clamp work and set sizes far below what the bigger corpus queries need.
    // The invariant: a resource-limit error fires in the parallel run exactly
    // when one fires sequentially. When *both* limits are crossed by the same
    // evaluation the reported kind may differ between backends — shards
    // discover their budget overruns concurrently, so which limit is noticed
    // first is scheduling-dependent — hence the two limit errors are treated
    // as one equivalence class; any other error kind must match exactly.
    let tight = EvalConfig {
        max_work: 2_000,
        max_set_size: 64,
        parallel_cutoff: 16,
        ..EvalConfig::default()
    };
    let seq_session = SessionBuilder::new().config(tight.clone()).build();
    let par_session = SessionBuilder::new()
        .config(EvalConfig {
            parallelism: Some(4),
            ..tight
        })
        .build();
    let resource_limit = |e: &ncql::core::EvalError| {
        matches!(
            e,
            ncql::core::EvalError::SetTooLarge { .. }
                | ncql::core::EvalError::WorkLimitExceeded { .. }
        )
    };
    let mut checked_errors = 0usize;
    for entry in differential_corpus() {
        let seq = seq_session.evaluate(&entry.expr);
        let par = par_session.evaluate(&entry.expr);
        match (&seq, &par) {
            (Ok(a), Ok(b)) => assert_eq!(a.value, b.value, "{}", entry.name),
            (Err(ea), Err(eb)) => {
                checked_errors += 1;
                assert!(
                    resource_limit(ea) && resource_limit(eb)
                        || std::mem::discriminant(ea) == std::mem::discriminant(eb),
                    "{}: different error kinds: seq={ea:?} par={eb:?}",
                    entry.name
                );
            }
            _ => panic!(
                "{}: one backend failed and the other succeeded: seq={seq:?} par={par:?}",
                entry.name
            ),
        }
    }
    assert!(
        checked_errors > 0,
        "the tight limits never fired — tighten them so the error path is covered"
    );
}

#[test]
fn large_ext_results_exercise_the_parallel_shard_merge() {
    use ncql::core::Expr;
    use ncql::object::{Type, Value};

    // A 12k-element input mapped through `\x. {(x, x)}` produces a 12k-pair
    // flat-shaped result — far above the evaluator's parallel-merge row
    // threshold — so the parallel legs run the pairwise combine rounds on the
    // pool while the sequential leg canonicalizes through the flat-row sort.
    // Both must land on the same canonical set with identical statistics.
    let n: u64 = 12_000;
    let base = Expr::constant(Value::atom_set(0..n));
    let dup = Expr::ext(
        Expr::lam(
            "x",
            Type::Base,
            Expr::singleton(Expr::pair(Expr::var("x"), Expr::var("x"))),
        ),
        base,
    );
    for threads in thread_counts() {
        let (seq, par) = eval_both("large_ext/pairs", &dup, threads);
        assert_eq!(par.value, seq.value, "values differ at parallelism = {threads}");
        assert_eq!(par.stats, seq.stats, "stats differ at parallelism = {threads}");
        let set = seq.value.as_set().expect("ext yields a set");
        assert_eq!(set.len(), n as usize);
        assert!(set.is_columnar(), "a large flat ext result should be columnar");
    }
}

#[test]
fn kernel_heavy_ext_is_invariant_across_backends_and_strategies() {
    use ncql::core::Expr;
    use ncql::object::{Type, Value};

    // A 12k-row columnar input through a compiled row kernel (filter +
    // arithmetic + pair rebuild): the four (backend × kernels) combinations
    // must agree bit-for-bit on value and statistics, and the prepared plan
    // must report the site as kernel-compiled.
    let n: u64 = 12_000;
    let pair_ty = Type::prod(Type::Base, Type::Nat);
    let base = Expr::constant(Value::set_from((0..n).map(|i| {
        let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Value::pair(Value::Atom(k % 4001), Value::Nat(k % 257))
    })));
    let body = Expr::let_in(
        "y",
        Expr::extern_call("nat_mul", vec![Expr::proj2(Expr::var("x")), Expr::nat(3)]),
        Expr::ite(
            Expr::extern_call("nat_leq", vec![Expr::var("y"), Expr::nat(384)]),
            Expr::singleton(Expr::pair(Expr::proj1(Expr::var("x")), Expr::var("y"))),
            Expr::empty(pair_ty.clone()),
        ),
    );
    let query = Expr::ext(Expr::lam("x", pair_ty, body), base);

    let kernel_session = forking_session(None);
    let plan = kernel_session.prepare_expr(query.clone()).expect("prepare");
    let sites = plan.kernel_sites();
    assert_eq!(sites.len(), 1, "one ext site expected");
    assert!(sites[0].compiled, "site must compile: {}", sites[0].detail);

    let baseline = kernel_session.evaluate(&query).expect("kernel sequential");
    for threads in thread_counts().into_iter().map(Some).chain([None]) {
        for kernels in [true, false] {
            let session = SessionBuilder::new()
                .parallel_cutoff(64)
                .parallelism(threads)
                .row_kernels(kernels)
                .build();
            let outcome = session.evaluate(&query).unwrap_or_else(|e| {
                panic!("kernel_heavy: threads={threads:?} kernels={kernels}: {e}")
            });
            assert_eq!(
                outcome.value, baseline.value,
                "values differ at threads={threads:?} kernels={kernels}"
            );
            assert_eq!(
                outcome.stats, baseline.stats,
                "stats differ at threads={threads:?} kernels={kernels}"
            );
        }
    }
    let set = baseline.value.as_set().expect("ext yields a set");
    assert!(!set.is_empty() && set.len() < n as usize, "the filter must bite");
}

#[test]
fn collapsing_large_ext_deduplicates_across_shards_identically() {
    use ncql::core::Expr;
    use ncql::object::{Type, Value};

    // `\x. if x ≤ a6000 then {a0} else {x}`: half the input collapses onto a
    // single element, so worker shard outputs overlap heavily and the merge
    // must deduplicate across shard boundaries — on every parallelism leg,
    // bit-identically to the sequential backend.
    let n: u64 = 12_000;
    let base = Expr::constant(Value::atom_set(0..n));
    let collapse = Expr::ext(
        Expr::lam(
            "x",
            Type::Base,
            Expr::ite(
                Expr::leq(Expr::var("x"), Expr::atom(n / 2)),
                Expr::singleton(Expr::atom(0)),
                Expr::singleton(Expr::var("x")),
            ),
        ),
        base,
    );
    for threads in thread_counts() {
        let (seq, par) = eval_both("large_ext/collapse", &collapse, threads);
        assert_eq!(par.value, seq.value, "values differ at parallelism = {threads}");
        assert_eq!(par.stats, seq.stats, "stats differ at parallelism = {threads}");
        // {a0} plus the untouched upper half.
        assert_eq!(seq.value.as_set().expect("set").len(), (n / 2) as usize);
    }
}
