//! Uniform entry point for evaluating library queries on either backend —
//! kept as a **thin shim over [`ncql_engine::Session`]** for corpus callers.
//!
//! New code should use the engine directly (`Session::prepare` /
//! `Session::execute` amortize the front end across repeated executions);
//! these functions remain because the differential suite, the benches and
//! downstream corpus runners want a one-line "evaluate this `Expr` with this
//! parallelism knob" call with exactly the evaluator's error type.
//!
//! Parallelism normalization: the `parallelism` argument overrides the base
//! configuration's knob, and the degenerate requests `Some(0)` / `Some(1)` are
//! normalized to `None` (sequential) by
//! [`ncql_core::parallel::normalize_parallelism`] before they are stored — a
//! configuration never records a thread count that looks parallel but
//! evaluates sequentially.

use ncql_core::eval::{CostStats, EvalConfig};
use ncql_core::expr::Expr;
use ncql_core::parallel::normalize_parallelism;
use ncql_core::EvalResult;
use ncql_engine::Session;
use ncql_object::Value;

/// Evaluate a closed query with the given parallelism knob, returning the
/// value and the cost statistics. `None` (and the normalized `Some(0 | 1)`)
/// run sequentially.
pub fn eval_query(expr: &Expr, parallelism: Option<usize>) -> EvalResult<(Value, CostStats)> {
    eval_query_with(expr, parallelism, EvalConfig::default())
}

/// Like [`eval_query`], but over a caller-supplied base configuration (resource
/// limits, registry, cutover threshold). The `parallelism` argument overrides
/// the configuration's own knob after normalization.
pub fn eval_query_with(
    expr: &Expr,
    parallelism: Option<usize>,
    base: EvalConfig,
) -> EvalResult<(Value, CostStats)> {
    let session = Session::builder()
        .config(EvalConfig {
            parallelism: normalize_parallelism(parallelism),
            ..base
        })
        .cache_capacity(0)
        .build();
    let outcome = session.evaluate(expr)?;
    Ok((outcome.value, outcome.stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parity;
    use ncql_object::Value;

    #[test]
    fn both_backends_through_the_entry_point_agree() {
        let q = parity::parity_dcr(Expr::constant(Value::atom_set(0..99)));
        let (v_seq, s_seq) = eval_query(&q, None).unwrap();
        for threads in [1usize, 2, 4] {
            let (v_par, s_par) = eval_query(&q, Some(threads)).unwrap();
            assert_eq!(v_par, v_seq, "threads={threads}");
            assert_eq!(s_par, s_seq, "threads={threads}");
        }
        assert_eq!(v_seq, Value::Bool(true));
    }

    #[test]
    fn degenerate_override_is_normalized_not_stored() {
        // `Some(1)` is a request for the sequential backend; it must behave
        // exactly like `None`, including against a base config whose own knob
        // says parallel — the override still wins, but as the *normalized*
        // `None`, not as a stored `Some(1)`.
        let q = parity::parity_dcr(Expr::constant(Value::atom_set(0..40)));
        let base = EvalConfig {
            parallelism: Some(8),
            parallel_cutoff: 1,
            ..EvalConfig::default()
        };
        let (v_none, s_none) = eval_query_with(&q, None, base.clone()).unwrap();
        for degenerate in [Some(0), Some(1)] {
            let (v, s) = eval_query_with(&q, degenerate, base.clone()).unwrap();
            assert_eq!(v, v_none, "{degenerate:?}");
            assert_eq!(s, s_none, "{degenerate:?}");
        }
    }
}
