//! Pretty-printer emitting the surface syntax, inverse (up to parentheses and
//! the `lam2` desugaring) of the parser.

use ncql_core::{Expr, ExprKind};
use ncql_object::{Type, Value};

fn print_type(ty: &Type) -> String {
    match ty {
        Type::Base => "atom".to_string(),
        Type::Bool => "bool".to_string(),
        Type::Unit => "unit".to_string(),
        Type::Nat => "nat".to_string(),
        Type::Prod(a, b) => format!("({} * {})", print_type(a), print_type(b)),
        Type::Set(t) => format!("{{{}}}", print_type(t)),
        Type::Fun(a, b) => format!("({} -> {})", print_type(a), print_type(b)),
    }
}

fn print_value(v: &Value) -> Option<String> {
    match v {
        Value::Atom(a) => Some(match ncql_object::atom_name(*a) {
            Some(name) => format!("@{name}"),
            None => format!("@{a}"),
        }),
        Value::Nat(n) => Some(n.to_string()),
        Value::Bool(b) => Some(b.to_string()),
        Value::Unit => Some("()".to_string()),
        // Pairs and sets of literals can be printed as constructed expressions.
        Value::Pair(a, b) => Some(format!("({}, {})", print_value(a)?, print_value(b)?)),
        Value::Set(s) => {
            if s.is_empty() {
                // The element type is not recoverable from the value alone.
                None
            } else {
                let parts: Option<Vec<String>> = s
                    .iter()
                    .map(|x| print_value(x).map(|p| format!("{{{p}}}")))
                    .collect();
                parts.map(|p| p.join(" union "))
            }
        }
    }
}

/// Render an expression in the surface syntax. Constant sets whose element type
/// cannot be recovered (empty literal sets) are rendered as `empty[atom]`, which
/// is the parser's convention for untyped empties.
pub fn print_expr(e: &Expr) -> String {
    match &e.kind {
        ExprKind::Var(x) => x.clone(),
        ExprKind::Lam(x, ty, b) => format!("\\{x}: {}. {}", print_type(ty), print_expr(b)),
        ExprKind::App(f, a) => format!("apply({}, {})", print_expr(f), print_expr(a)),
        ExprKind::Let(x, a, b) => format!("let {x} = {} in {}", print_expr(a), print_expr(b)),
        ExprKind::Unit => "()".to_string(),
        ExprKind::Pair(a, b) => format!("({}, {})", print_expr(a), print_expr(b)),
        ExprKind::Proj1(a) => format!("pi1 ({})", print_expr(a)),
        ExprKind::Proj2(a) => format!("pi2 ({})", print_expr(a)),
        ExprKind::Bool(b) => b.to_string(),
        ExprKind::If(c, t, f) => format!(
            "if {} then {} else {}",
            print_expr(c),
            print_expr(t),
            print_expr(f)
        ),
        ExprKind::Eq(a, b) => format!("(({}) = ({}))", print_expr(a), print_expr(b)),
        ExprKind::Leq(a, b) => format!("(({}) <= ({}))", print_expr(a), print_expr(b)),
        ExprKind::Const(v) => print_value(v).unwrap_or_else(|| "empty[atom]".to_string()),
        ExprKind::Empty(t) => format!("empty[{}]", print_type(t)),
        ExprKind::Singleton(a) => format!("{{{}}}", print_expr(a)),
        ExprKind::Union(a, b) => format!("(({}) union ({}))", print_expr(a), print_expr(b)),
        ExprKind::IsEmpty(a) => format!("isempty({})", print_expr(a)),
        ExprKind::Ext(f, a) => format!("ext({}, {})", print_expr(f), print_expr(a)),
        ExprKind::Dcr { e, f, u, arg } => format!(
            "dcr({}, {}, {}, {})",
            print_expr(e),
            print_expr(f),
            print_expr(u),
            print_expr(arg)
        ),
        ExprKind::Sru { e, f, u, arg } => format!(
            "sru({}, {}, {}, {})",
            print_expr(e),
            print_expr(f),
            print_expr(u),
            print_expr(arg)
        ),
        ExprKind::Sri { e, i, arg } => format!(
            "sri({}, {}, {})",
            print_expr(e),
            print_expr(i),
            print_expr(arg)
        ),
        ExprKind::Esr { e, i, arg } => format!(
            "esr({}, {}, {})",
            print_expr(e),
            print_expr(i),
            print_expr(arg)
        ),
        ExprKind::BDcr {
            e,
            f,
            u,
            bound,
            arg,
        } => format!(
            "bdcr({}, {}, {}, {}, {})",
            print_expr(e),
            print_expr(f),
            print_expr(u),
            print_expr(bound),
            print_expr(arg)
        ),
        ExprKind::BSri { e, i, bound, arg } => format!(
            "bsri({}, {}, {}, {})",
            print_expr(e),
            print_expr(i),
            print_expr(bound),
            print_expr(arg)
        ),
        ExprKind::LogLoop { f, set, init } => format!(
            "logloop({}, {}, {})",
            print_expr(f),
            print_expr(set),
            print_expr(init)
        ),
        ExprKind::Loop { f, set, init } => format!(
            "loop({}, {}, {})",
            print_expr(f),
            print_expr(set),
            print_expr(init)
        ),
        ExprKind::BLogLoop {
            f,
            bound,
            set,
            init,
        } => format!(
            "blogloop({}, {}, {}, {})",
            print_expr(f),
            print_expr(bound),
            print_expr(set),
            print_expr(init)
        ),
        ExprKind::BLoop {
            f,
            bound,
            set,
            init,
        } => format!(
            "bloop({}, {}, {}, {})",
            print_expr(f),
            print_expr(bound),
            print_expr(set),
            print_expr(init)
        ),
        ExprKind::Extern(name, args) => {
            let parts: Vec<String> = args.iter().map(print_expr).collect();
            format!("{name}({})", parts.join(", "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_expr;
    use ncql_core::eval::eval_closed;

    fn round_trip(text: &str) {
        let parsed = parse_expr(text).unwrap_or_else(|e| panic!("parse {text}: {e}"));
        let printed = print_expr(&parsed);
        let reparsed = parse_expr(&printed).unwrap_or_else(|e| panic!("reparse {printed}: {e}"));
        assert_eq!(
            parsed, reparsed,
            "round trip changed the expression: {printed}"
        );
    }

    #[test]
    fn parse_print_parse_is_stable() {
        for text in [
            "true",
            "@3",
            "17",
            "{@1} union {@2}",
            "(@1, (true, ()))",
            "pi1 (@1, @2)",
            "if isempty(empty[atom]) then @1 else @2",
            "\\x: {(atom * atom)}. ext(\\p: (atom * atom). {pi1 p}, x)",
            "let r = {@1} in dcr(empty[atom], \\y: atom. {y}, \\p: ({atom} * {atom}). pi1 p union pi2 p, r)",
            "logloop(\\r: {atom}. r, {@1}, empty[atom])",
            "nat_add(1, nat_mul(2, 3))",
            "@1 <= @2",
        ] {
            round_trip(text);
        }
    }

    #[test]
    fn printed_programs_still_evaluate() {
        let text = "dcr(false, \\y: atom. true, \\p: (bool * bool). \
                    if pi1 p then (if pi2 p then false else true) else pi2 p, \
                    {@1} union {@2} union {@3})";
        let e = parse_expr(text).unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(eval_closed(&e).unwrap(), eval_closed(&e2).unwrap());
    }

    #[test]
    fn constants_print_as_literals() {
        use ncql_object::Value;
        let e = Expr::constant(Value::atom_set(vec![1, 2]));
        let printed = print_expr(&e);
        let reparsed = parse_expr(&printed).unwrap();
        assert_eq!(eval_closed(&reparsed).unwrap(), Value::atom_set(vec![1, 2]));
    }
}
