//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, integer-range and tuple strategies, `any::<bool>()`,
//! `collection::vec`, `ProptestConfig::with_cases`, and the `proptest!` /
//! `prop_assert!` / `prop_assert_eq!` macros. Sampling is deterministic (the
//! case index seeds a SplitMix64 generator per test), and there is no
//! shrinking — a failing case panics with the plain `assert!` message. Swap
//! for the registry crate when network access is available; the test sources
//! are written against the real proptest API.

use rand::rngs::StdRng;

pub mod strategy {
    use super::test_runner::TestRng;

    /// A generator of values of type `Self::Value` (mirrors
    /// `proptest::strategy::Strategy`, minus the shrink tree).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    /// Strategy for a type's canonical arbitrary values (see [`super::arbitrary`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(pub(crate) ::std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rand::RngCore::next_u64(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;

    /// `any::<T>()` — the canonical strategy for `T` (mirrors
    /// `proptest::arbitrary::any`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any(::std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size` (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-case deterministic generator.
    pub type TestRng = super::StdRng;

    /// Mirrors `proptest::test_runner::Config` (the fields this workspace
    /// reads).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Stable seed for a named test case (FNV-1a over the test name).
    pub fn seed_for(name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The deterministic generator for a named test case. Called from the
    /// `proptest!` expansion via `$crate` so call sites need no `rand` dep.
    pub fn rng_for(name: &str, case: u32) -> TestRng {
        rand::SeedableRng::seed_from_u64(seed_for(name, case))
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Runs each `#[test]` body `config.cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng: $crate::test_runner::TestRng =
                        $crate::test_runner::rng_for(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(x in 3u64..9, pair in (0u64..4, 0usize..2)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 < 2);
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0u64..10, 0..5).prop_map(|v| v.len())) {
            prop_assert!(v < 5);
        }
    }

    proptest! {
        #[test]
        fn any_bool_is_not_constant(v in crate::collection::vec(any::<bool>(), 64..65)) {
            let trues = v.iter().filter(|&&b| b).count();
            prop_assert!(trues > 0 && trues < v.len());
        }

        #[test]
        fn default_config_form_works(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
