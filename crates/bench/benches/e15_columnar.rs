//! E15 — the two `VSet` representations on the canonicalization hot path, and
//! the shard-merge strategies the parallel `ext` chooses between.
use criterion::{criterion_group, criterion_main, Criterion};
use ncql_object::{VSet, Value};
use std::time::Duration;

/// The same deterministic unsorted flat-pair vector the report binary's E15
/// table uses (duplicates included, so dedup work is real).
fn scrambled_pairs(n: usize) -> Vec<Value> {
    (0..n as u64)
        .map(|i| {
            let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Value::pair(
                Value::Atom(key % (n as u64 / 2 + 1)),
                Value::Nat((key >> 32) % 64),
            )
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_columnar");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let n = 40_000;
    let elems = scrambled_pairs(n);
    // Canonicalization A/B: identical input, identical resulting set, the
    // only difference is the physical representation the sort runs over.
    group.bench_function("canonicalize_boxed", |b| {
        b.iter(|| VSet::from_iter_boxed(elems.clone()))
    });
    group.bench_function("canonicalize_columnar", |b| {
        b.iter(|| elems.iter().cloned().collect::<VSet>())
    });
    // Merge A/B on pre-sorted overlapping shards (what parallel `ext`
    // workers hand back): flatten-and-sort vs pairwise canonical unions.
    let parts: Vec<VSet> = elems
        .chunks(n.div_ceil(16))
        .map(|chunk| chunk.iter().cloned().collect())
        .collect();
    group.bench_function("merge_union_many", |b| {
        b.iter(|| VSet::union_many(parts.clone()))
    });
    group.bench_function("merge_pairwise_tree", |b| {
        b.iter(|| {
            let mut round: Vec<VSet> = parts.clone();
            while round.len() > 1 {
                round = round
                    .chunks(2)
                    .map(|pair| match pair {
                        [a, b] => a.union(b),
                        [a] => a.clone(),
                        _ => unreachable!(),
                    })
                    .collect();
            }
            round.pop().unwrap_or_default()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
