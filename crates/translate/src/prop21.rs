//! Proposition 2.1: the non-immediate relationships between the four forms of
//! recursion on sets, as source-to-source translations.
//!
//! ```text
//! dcr(e, f, u)  =  esr(e, λ(x, y). u(f(x), y))
//! esr(e, i)     =  π₂( sri( (∅, e),
//!                           λ(x, (s, y)). if x ∈ s then (s, y)
//!                                         else (x ⊲ s, i(x, y)) ) )
//! sru(e, f, u)  =  sri(e, λ(x, y). u(f(x), y))
//! ```
//!
//! All three are "at most polynomial overhead" (the paper's phrasing); the test
//! suite and experiment E3 check the semantic equivalence and measure the
//! overhead factor in evaluator work.

use ncql_core::derived;
use ncql_core::expr::{fresh_var, Expr};
use ncql_object::Type;

/// The combining step shared by all three `{dcr, sru} → {esr, sri}`
/// translations: `λ(x, y). u(f(x), y)` over a fresh pair binder of type
/// `elem_ty × acc_ty`. Administrative redexes are removed with
/// [`Expr::apply_lam`] when `f` or `u` are literal λ-abstractions, so
/// translated plans print as `let`-chains instead of towers of immediately
/// applied lambdas — the same normal shape the algebraic rewriter produces.
pub fn combine_step(f: Expr, u: Expr, elem_ty: Type, acc_ty: Type) -> Expr {
    let x = fresh_var("x");
    let y = fresh_var("y");
    Expr::lam2(
        x.clone(),
        y.clone(),
        Type::prod(elem_ty, acc_ty),
        Expr::apply_lam(
            u,
            Expr::pair(Expr::apply_lam(f, Expr::var(x)), Expr::var(y)),
        ),
    )
}

/// Translate `dcr(e, f, u)(arg)` into the equivalent `esr` expression.
/// `elem_ty` is the element type of `arg`, `acc_ty` the accumulator type `t`.
pub fn dcr_via_esr(e: Expr, f: Expr, u: Expr, arg: Expr, elem_ty: Type, acc_ty: Type) -> Expr {
    Expr::esr(e, combine_step(f, u, elem_ty, acc_ty), arg)
}

/// Translate `sru(e, f, u)(arg)` into the equivalent `sri` expression (valid
/// because `sru` requires `u` idempotent, which gives the i-idempotence `sri`
/// needs).
pub fn sru_via_sri(e: Expr, f: Expr, u: Expr, arg: Expr, elem_ty: Type, acc_ty: Type) -> Expr {
    Expr::sri(e, combine_step(f, u, elem_ty, acc_ty), arg)
}

/// Translate `esr(e, i)(arg)` into the equivalent `sri` expression: the
/// accumulator is enriched with the set of elements already processed, and the
/// step is skipped for elements already seen — which makes the enriched step
/// i-idempotent even when `i` itself is not.
pub fn esr_via_sri(e: Expr, i: Expr, arg: Expr, elem_ty: Type, acc_ty: Type) -> Expr {
    let x = fresh_var("x");
    let p = fresh_var("seenacc");
    let seen_ty = Type::set(elem_ty.clone());
    let pair_ty = Type::prod(seen_ty.clone(), acc_ty);
    let step = Expr::lam2(
        x.clone(),
        p.clone(),
        Type::prod(elem_ty.clone(), pair_ty),
        Expr::ite(
            derived::member(
                elem_ty.clone(),
                Expr::var(x.clone()),
                Expr::proj1(Expr::var(p.clone())),
            ),
            Expr::var(p.clone()),
            Expr::pair(
                Expr::union(
                    Expr::singleton(Expr::var(x.clone())),
                    Expr::proj1(Expr::var(p.clone())),
                ),
                Expr::app(i, Expr::pair(Expr::var(x), Expr::proj2(Expr::var(p)))),
            ),
        ),
    );
    Expr::proj2(Expr::sri(Expr::pair(Expr::empty(elem_ty), e), step, arg))
}

/// Translate `dcr(e, f, u)(arg)` all the way down to `sri` (composition of the
/// two translations above).
pub fn dcr_via_sri(e: Expr, f: Expr, u: Expr, arg: Expr, elem_ty: Type, acc_ty: Type) -> Expr {
    let step = combine_step(f, u, elem_ty.clone(), acc_ty.clone());
    esr_via_sri(e, step, arg, elem_ty, acc_ty)
}

/// Overhead report comparing a direct expression against its translation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverheadReport {
    /// Work of the direct (source) evaluation.
    pub direct_work: u64,
    /// Work of the translated evaluation.
    pub translated_work: u64,
    /// Span of the direct evaluation.
    pub direct_span: u64,
    /// Span of the translated evaluation.
    pub translated_span: u64,
}

impl OverheadReport {
    /// The multiplicative work overhead of the translation.
    pub fn work_factor(&self) -> f64 {
        self.translated_work as f64 / self.direct_work.max(1) as f64
    }

    /// The multiplicative span overhead (for Prop 2.1 translations this is
    /// expected to be large: the target forms are sequential).
    pub fn span_factor(&self) -> f64 {
        self.translated_span as f64 / self.direct_span.max(1) as f64
    }
}

/// Evaluate both expressions (which must be closed and semantically equivalent)
/// and report the cost overhead. Returns `None` if the results differ — which
/// the tests treat as a translation bug.
pub fn measure_overhead(direct: &Expr, translated: &Expr) -> Option<OverheadReport> {
    let (dv, ds) = ncql_core::eval::eval_with_stats(direct).ok()?;
    let (tv, ts) = ncql_core::eval::eval_with_stats(translated).ok()?;
    if dv != tv {
        return None;
    }
    Some(OverheadReport {
        direct_work: ds.work,
        translated_work: ts.work,
        direct_span: ds.span,
        translated_span: ts.span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::eval::eval_closed;
    use ncql_core::typecheck::typecheck_closed;
    use ncql_object::Value;

    fn atoms(v: Vec<u64>) -> Expr {
        Expr::constant(Value::atom_set(v))
    }

    fn xor_u() -> Expr {
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            derived::xor(Expr::var("a"), Expr::var("b")),
        )
    }

    fn true_f() -> Expr {
        Expr::lam("y", Type::Base, Expr::bool_val(true))
    }

    #[test]
    fn parity_dcr_equals_its_esr_translation() {
        for n in [0u64, 1, 2, 5, 8, 13] {
            let input = atoms((0..n).collect());
            let direct = Expr::dcr(Expr::bool_val(false), true_f(), xor_u(), input.clone());
            let translated = dcr_via_esr(
                Expr::bool_val(false),
                true_f(),
                xor_u(),
                input,
                Type::Base,
                Type::Bool,
            );
            assert!(typecheck_closed(&translated).is_ok());
            assert_eq!(
                eval_closed(&direct).unwrap(),
                eval_closed(&translated).unwrap(),
                "n = {n}"
            );
        }
    }

    #[test]
    fn union_sru_equals_its_sri_translation() {
        // sru(∅, λy.{y}, ∪) is the identity on sets of atoms.
        let f = Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y")));
        let u = derived::union_combiner(Type::Base);
        let input = atoms(vec![4, 1, 7]);
        let direct = Expr::sru(Expr::empty(Type::Base), f.clone(), u.clone(), input.clone());
        let translated = sru_via_sri(
            Expr::empty(Type::Base),
            f,
            u,
            input,
            Type::Base,
            Type::set(Type::Base),
        );
        assert_eq!(
            eval_closed(&direct).unwrap(),
            eval_closed(&translated).unwrap()
        );
    }

    #[test]
    fn esr_via_sri_skips_duplicates_via_seen_set() {
        // esr counting step: i(x, acc) = acc + 1 over naturals (not i-idempotent,
        // which is exactly why esr rather than sri is needed directly).
        let i = Expr::lam2(
            "x",
            "acc",
            Type::prod(Type::Base, Type::Nat),
            Expr::extern_call("nat_add", vec![Expr::var("acc"), Expr::nat(1)]),
        );
        let input = atoms(vec![3, 1, 4, 1, 5]);
        let direct = Expr::esr(Expr::nat(0), i.clone(), input.clone());
        let translated = esr_via_sri(Expr::nat(0), i, input, Type::Base, Type::Nat);
        assert!(typecheck_closed(&translated).is_ok());
        assert_eq!(eval_closed(&direct).unwrap(), Value::Nat(4));
        assert_eq!(eval_closed(&translated).unwrap(), Value::Nat(4));
    }

    #[test]
    fn dcr_via_sri_full_chain() {
        let input = atoms((0..9).collect());
        let direct = Expr::dcr(Expr::bool_val(false), true_f(), xor_u(), input.clone());
        let translated = dcr_via_sri(
            Expr::bool_val(false),
            true_f(),
            xor_u(),
            input,
            Type::Base,
            Type::Bool,
        );
        assert_eq!(
            eval_closed(&direct).unwrap(),
            eval_closed(&translated).unwrap()
        );
    }

    #[test]
    fn overhead_is_polynomial_but_span_grows() {
        let input = atoms((0..64).collect());
        let direct = Expr::dcr(Expr::bool_val(false), true_f(), xor_u(), input.clone());
        let translated = dcr_via_esr(
            Expr::bool_val(false),
            true_f(),
            xor_u(),
            input,
            Type::Base,
            Type::Bool,
        );
        let report = measure_overhead(&direct, &translated).expect("results must agree");
        // Work overhead is modest (polynomial, here near-linear)…
        assert!(
            report.work_factor() < 10.0,
            "work factor {}",
            report.work_factor()
        );
        // …but the translated form is sequential, so its span is much larger.
        assert!(
            report.span_factor() > 2.0,
            "span factor {}",
            report.span_factor()
        );
    }
}
