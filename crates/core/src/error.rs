//! Error types for type checking and evaluation.

use ncql_object::Type;
use std::fmt;

/// Errors raised by the type checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeError {
    /// A variable was used but not bound in the context.
    UnboundVariable(String),
    /// Two types that should have matched did not.
    Mismatch {
        /// Where the mismatch was detected (constructor name).
        context: String,
        /// The expected type.
        expected: Type,
        /// The type that was found.
        found: Type,
    },
    /// An expression of function type was expected.
    NotAFunction { context: String, found: Type },
    /// An expression of set type was expected.
    NotASet { context: String, found: Type },
    /// An expression of product type was expected.
    NotAProduct { context: String, found: Type },
    /// An expression of boolean type was expected.
    NotABool { context: String, found: Type },
    /// A bounded recursion construct requires its result type to be a PS-type.
    NotAPsType { context: String, found: Type },
    /// The restricted language NRA¹ only admits flat types.
    NotFlat { context: String, found: Type },
    /// An external function was referenced but is not registered.
    UnknownExtern(String),
    /// An external function was applied to the wrong number of arguments.
    ExternArity {
        name: String,
        expected: usize,
        found: usize,
    },
    /// Equality / order comparison at a non-object (function) type.
    NotComparable { context: String, found: Type },
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeError::Mismatch { context, expected, found } => {
                write!(f, "{context}: expected type {expected}, found {found}")
            }
            TypeError::NotAFunction { context, found } => {
                write!(f, "{context}: expected a function type, found {found}")
            }
            TypeError::NotASet { context, found } => {
                write!(f, "{context}: expected a set type, found {found}")
            }
            TypeError::NotAProduct { context, found } => {
                write!(f, "{context}: expected a product type, found {found}")
            }
            TypeError::NotABool { context, found } => {
                write!(f, "{context}: expected bool, found {found}")
            }
            TypeError::NotAPsType { context, found } => {
                write!(f, "{context}: expected a PS-type (product of sets), found {found}")
            }
            TypeError::NotFlat { context, found } => {
                write!(f, "{context}: NRA¹ admits only flat types, found {found}")
            }
            TypeError::UnknownExtern(name) => write!(f, "unknown external function `{name}`"),
            TypeError::ExternArity { name, expected, found } => write!(
                f,
                "external `{name}` expects {expected} argument(s), got {found}"
            ),
            TypeError::NotComparable { context, found } => {
                write!(f, "{context}: values of type {found} cannot be compared")
            }
        }
    }
}

impl std::error::Error for TypeError {}

/// Errors raised by the evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was not bound at run time (should be prevented by typechecking).
    UnboundVariable(String),
    /// A value had the wrong shape for the operation (should be prevented by
    /// typechecking).
    Stuck(String),
    /// An external function failed or was not registered.
    Extern(String),
    /// The configured resource limit on intermediate set sizes was exceeded.
    /// This is how the evaluator surfaces the exponential blow-up of, e.g.,
    /// `powerset` expressed with unbounded `dcr` over complex objects (§2).
    SetTooLarge { limit: usize, attempted: usize },
    /// The configured limit on total work was exceeded.
    WorkLimitExceeded { limit: u64 },
    /// A `dcr`/`sru` instance was evaluated with `check_algebraic_laws` enabled
    /// and its combiner failed the associativity/commutativity/identity check on
    /// the values actually encountered.
    IllFormedRecursion(String),
    /// A worker thread of the parallel backend panicked (e.g. inside a buggy
    /// extern). The panic is caught at the shard boundary, every sibling
    /// worker is joined and its partial results discarded, and the payload
    /// message is preserved here instead of aborting the process.
    WorkerPanicked(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(x) => write!(f, "unbound variable `{x}` at run time"),
            EvalError::Stuck(msg) => write!(f, "evaluation stuck: {msg}"),
            EvalError::Extern(msg) => write!(f, "external function error: {msg}"),
            EvalError::SetTooLarge { limit, attempted } => write!(
                f,
                "intermediate set of {attempted} elements exceeds the configured limit of {limit}"
            ),
            EvalError::WorkLimitExceeded { limit } => {
                write!(f, "total work exceeded the configured limit of {limit}")
            }
            EvalError::IllFormedRecursion(msg) => {
                write!(f, "ill-formed recursion (algebraic laws violated): {msg}")
            }
            EvalError::WorkerPanicked(msg) => {
                write!(f, "a parallel worker panicked: {msg}")
            }
        }
    }
}

impl std::error::Error for EvalError {}
