//! Protocol round trips over a real socket: every engine error variant maps
//! to a wire diagnostic carrying the *exact* structured data (code, message,
//! span, line, column, snippet) that direct `Session` use produces; deadline
//! and work-budget rejections get their dedicated typed codes; malformed and
//! oversized request lines are answered with `protocol` errors on a
//! connection that stays usable.

use ncql_engine::{LintPolicy, Session, SessionBuilder};
use ncql_object::Value;
use ncql_serve::corpus::expensive_query;
use ncql_serve::protocol::code;
use ncql_serve::{
    Client, ClientError, ExecuteParams, ServeConfig, Server, ServerHandle, WireDiagnostic,
};

/// Spawn a server over a default session; returns the handle to keep it
/// alive for the test's duration.
fn serve_default() -> ServerHandle {
    serve_with(SessionBuilder::new().build(), ServeConfig::default())
}

fn serve_with(session: Session, config: ServeConfig) -> ServerHandle {
    Server::bind(config, session)
        .expect("bind")
        .spawn()
        .expect("spawn")
}

/// The expected wire diagnostic for `text` under a fresh default session:
/// run the same prepare/execute locally and convert the error with the same
/// `Diagnostic` machinery the server uses.
fn expected_diagnostic(error: &ncql_engine::Error, text: &str) -> (String, WireDiagnostic) {
    let diagnostic = error.diagnostic(text);
    let code = ncql_serve::error_code(error).to_string();
    (
        code.clone(),
        WireDiagnostic {
            code,
            severity: diagnostic.severity().to_string(),
            message: diagnostic.message.clone(),
            span: diagnostic.span.map(|s| (s.start, s.end)),
            line: diagnostic.line,
            column: diagnostic.column,
            snippet: diagnostic.snippet().map(str::to_string),
        },
    )
}

/// Assert that executing `text` over the wire produces exactly the
/// diagnostic that direct session use produces.
fn assert_error_parity(client: &mut Client, session: &Session, text: &str) -> String {
    let direct = session
        .prepare(text)
        .and_then(|plan| session.execute(&plan))
        .expect_err("query must fail directly");
    let (expected_code, expected) = expected_diagnostic(&direct, text);
    let wire = client
        .execute(text)
        .expect_err("query must fail over the wire");
    let got = wire.remote().expect("typed server error").clone();
    assert_eq!(got, expected, "wire diagnostic differs for `{text}`");
    expected_code
}

#[test]
fn parse_type_and_eval_errors_round_trip_with_exact_spans() {
    let handle = serve_default();
    let session = SessionBuilder::new().build();
    let mut client = Client::connect(handle.addr()).expect("connect");

    assert_eq!(
        assert_error_parity(&mut client, &session, "{@1} union $"),
        code::PARSE
    );
    assert_eq!(
        assert_error_parity(&mut client, &session, "nat_add(1"),
        code::PARSE
    );
    assert_eq!(
        assert_error_parity(&mut client, &session, "pi1 true"),
        code::TYPE
    );
    assert_eq!(
        assert_error_parity(&mut client, &session, "{@1} union {true}"),
        code::TYPE
    );
    // A multi-line query: the diagnostic must locate line 2.
    let multiline = "let x = {@1} in\npi1 x";
    assert_eq!(
        assert_error_parity(&mut client, &session, multiline),
        code::TYPE
    );
    let err = client.execute(multiline).unwrap_err();
    let diag = err.remote().unwrap();
    assert_eq!(diag.line, Some(2), "span resolves to the second line");
    assert_eq!(diag.snippet.as_deref(), Some("pi1 x"));

    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn object_errors_round_trip_for_bad_bindings() {
    let handle = serve_default();
    let session = SessionBuilder::new().build();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let text = "card(s)";
    let schema_local = vec![("s".to_string(), ncql_surface::parse_type("{atom}").unwrap())];
    let schema_wire = vec![("s".to_string(), "{atom}".to_string())];

    // Missing binding: Error::Object, located at the schema variable's use.
    let direct = session
        .prepare_with_schema(text, &schema_local)
        .and_then(|plan| session.execute(&plan))
        .expect_err("missing binding must fail");
    let (expected_code, expected) = expected_diagnostic(&direct, text);
    assert_eq!(expected_code, code::OBJECT);
    let wire = client
        .execute_with(
            text,
            &ExecuteParams {
                schema: &schema_wire,
                ..Default::default()
            },
        )
        .expect_err("missing binding must fail over the wire");
    assert_eq!(*wire.remote().expect("typed error"), expected);

    // Ill-typed binding value: also Error::Object.
    let bindings = vec![("s".to_string(), Value::Nat(3))];
    let err = client
        .execute_with(
            text,
            &ExecuteParams {
                schema: &schema_wire,
                bindings: &bindings,
                ..Default::default()
            },
        )
        .expect_err("ill-typed binding must fail");
    assert_eq!(err.code(), Some(code::OBJECT));

    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn lint_errors_round_trip_under_a_deny_session() {
    let session = SessionBuilder::new().lint_policy(LintPolicy::Deny).build();
    let local = SessionBuilder::new().lint_policy(LintPolicy::Deny).build();
    let handle = serve_with(session, ServeConfig::default());
    let mut client = Client::connect(handle.addr()).expect("connect");

    // The combiner drops its second argument: a deny-level
    // `ignored-combiner-argument` finding rejects the plan at prepare.
    let text = "dcr(0, \\y: atom. 1, \\p: (nat * nat). pi1 p, {@1} union {@2})";
    let direct = local.prepare(text).expect_err("deny lint must reject");
    let (expected_code, expected) = expected_diagnostic(&direct, text);
    assert_eq!(expected_code, code::LINT);
    let wire = client.execute(text).expect_err("wire must reject too");
    assert_eq!(*wire.remote().expect("typed error"), expected);

    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn work_budget_and_set_size_rejections_are_typed() {
    let handle = serve_default();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Schema-bound queries: the optimizer cannot constant-fold them away, so
    // the per-request budgets are exercised by real evaluation work.
    let schema = vec![("s".to_string(), "{atom}".to_string())];
    let bindings = vec![("s".to_string(), Value::atom_set(1..=6))];

    // Per-request work budget: typed `work_budget`, not generic `eval`.
    let err = client
        .execute_with(
            "card(ext(\\x: atom. ext(\\y: atom. {(x, y)}, s), s))",
            &ExecuteParams {
                schema: &schema,
                bindings: &bindings,
                max_work: Some(5),
                ..Default::default()
            },
        )
        .expect_err("budget of 5 must trip");
    let diag = err.remote().expect("typed error");
    assert_eq!(diag.code, code::WORK_BUDGET);
    assert!(
        diag.message.contains("limit of 5"),
        "message names the limit: {}",
        diag.message
    );

    // Per-request set-size cap: surfaces as a plain `eval` error.
    let err = client
        .execute_with(
            "ext(\\x: atom. {(x, x)}, s)",
            &ExecuteParams {
                schema: &schema,
                bindings: &bindings,
                max_set_size: Some(2),
                ..Default::default()
            },
        )
        .expect_err("set cap of 2 must trip");
    assert_eq!(err.code(), Some(code::EVAL));

    // The connection is still healthy after typed failures.
    assert_eq!(client.execute("nat_add(20, 22)").unwrap().printed, "42");

    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn deadline_expiry_is_cancelled_and_typed() {
    let handle = serve_default();
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Grow the query until a 1ms deadline fires mid-evaluation. The smallest
    // size is already expensive (hundreds of thousands of elementary steps);
    // the ladder keeps the test robust on fast machines.
    let mut deadline_hit = None;
    for n in [48usize, 64, 96, 128] {
        let text = expensive_query(n);
        match client.execute_with(
            &text,
            &ExecuteParams {
                deadline_ms: Some(1),
                ..Default::default()
            },
        ) {
            Ok(_) => continue,
            Err(err) => {
                let diag = err.remote().expect("typed server error").clone();
                deadline_hit = Some(diag);
                break;
            }
        }
    }
    let diag = deadline_hit.expect("no ladder size exceeded a 1ms deadline");
    assert_eq!(diag.code, code::DEADLINE);
    assert!(
        diag.message.contains("deadline of 1ms exceeded"),
        "cancellation reason survives to the wire: {}",
        diag.message
    );

    // The same connection serves the next request normally: cancellation
    // poisoned nothing.
    assert_eq!(client.execute("nat_mul(6, 7)").unwrap().printed, "42");

    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn admission_control_answers_busy_when_full() {
    let config = ServeConfig {
        max_inflight: 0,
        admission_timeout_ms: 1,
        ..ServeConfig::default()
    };
    let handle = serve_with(SessionBuilder::new().build(), config);
    let mut client = Client::connect(handle.addr()).expect("connect");

    let err = client.execute("nat_add(1, 2)").expect_err("must be busy");
    let diag = err.remote().expect("typed error");
    assert_eq!(diag.code, code::BUSY);
    assert!(diag.message.contains("capacity"));

    // `stats` and `close` need no evaluation slot: still served at capacity.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.cache_misses, 0);
    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn malformed_and_oversized_lines_get_protocol_errors_not_hangups() {
    let config = ServeConfig {
        max_line_bytes: 256,
        ..ServeConfig::default()
    };
    let handle = serve_with(SessionBuilder::new().build(), config);
    let mut client = Client::connect(handle.addr()).expect("connect");

    // Not JSON at all: protocol error with a null id.
    let raw = client.round_trip_raw("this is not json").expect("answered");
    assert!(raw.contains("\"code\":\"protocol\""), "{raw}");
    assert!(raw.contains("\"id\":null"), "{raw}");

    // Unknown op: protocol error echoing the readable id.
    let raw = client
        .round_trip_raw(r#"{"op":"evaluate","id":41}"#)
        .expect("answered");
    assert!(raw.contains("\"code\":\"protocol\""), "{raw}");
    assert!(raw.contains("\"id\":41"), "{raw}");
    assert!(raw.contains("unknown op"), "{raw}");

    // Missing id: protocol error.
    let raw = client
        .round_trip_raw(r#"{"op":"execute","text":"1"}"#)
        .expect("answered");
    assert!(raw.contains("\"code\":\"protocol\""), "{raw}");

    // Bad schema type text: protocol error (never reaches the engine).
    let raw = client
        .round_trip_raw(r#"{"op":"prepare","id":7,"text":"s","schema":[{"name":"s","type":"{{"}]}"#)
        .expect("answered");
    assert!(raw.contains("\"code\":\"protocol\""), "{raw}");
    assert!(raw.contains("invalid schema type"), "{raw}");

    // An oversized line is drained and answered, not a hangup.
    let huge = format!(r#"{{"op":"execute","id":9,"text":"{}"}}"#, "x".repeat(1024));
    let raw = client.round_trip_raw(&huge).expect("answered");
    assert!(raw.contains("\"code\":\"protocol\""), "{raw}");
    assert!(raw.contains("256-byte limit"), "{raw}");

    // ...and the connection still works for a well-formed request.
    assert_eq!(client.execute("nat_add(40, 2)").unwrap().printed, "42");

    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn prepare_stats_and_values_round_trip() {
    let handle = serve_default();
    let mut client = Client::connect(handle.addr()).expect("connect");

    let prepared = client.prepare("{@1} union {@2} union {@1}", &[]).unwrap();
    assert_eq!(prepared.ty, "{atom}");
    assert_eq!(prepared.recursion_depth, 0);
    assert_eq!(prepared.ac_level, 1); // ACᵏ level is max(1, depth)

    // Execute with bindings; the decoded value matches the canonical one.
    let bindings = vec![("s".to_string(), Value::atom_set([1, 2, 9]))];
    let schema = vec![("s".to_string(), "{atom}".to_string())];
    let outcome = client
        .execute_with(
            "card(s)",
            &ExecuteParams {
                schema: &schema,
                bindings: &bindings,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(outcome.value, Value::Nat(3));
    assert_eq!(outcome.printed, "3");
    assert_eq!(outcome.ty, "nat");
    assert!(outcome.stats.work > 0);

    // Pair/set structure survives the wire byte-for-byte.
    let outcome = client
        .execute("ext(\\x: atom. {(x, x)}, {@1} union {@2})")
        .unwrap();
    assert_eq!(
        outcome.value,
        Value::set_from([
            Value::pair(Value::Atom(1), Value::Atom(1)),
            Value::pair(Value::Atom(2), Value::Atom(2)),
        ])
    );

    // Stats reflect the traffic this test just sent.
    let stats = client.stats().unwrap();
    assert!(stats.cache_misses >= 3, "{stats:?}");
    assert!(stats.prepared_plans >= 3, "{stats:?}");
    assert!(!stats.backend.is_empty());

    client.close().expect("close");
    handle.shutdown();
}

#[test]
fn close_is_acknowledged_then_the_connection_ends() {
    let handle = serve_default();
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert_eq!(client.execute("nat_add(2, 2)").unwrap().printed, "4");
    client.close().expect("close acknowledged");

    // A fresh connection still works (the server did not shut down).
    let mut again = Client::connect(handle.addr()).expect("reconnect");
    assert_eq!(again.execute("nat_add(2, 3)").unwrap().printed, "5");
    match again.round_trip_raw(r#"{"op":"close","id":99}"#) {
        Ok(raw) => assert!(raw.contains("\"closing\":true"), "{raw}"),
        Err(e) => panic!("close not acknowledged: {e}"),
    }
    // After the acknowledgement the server hangs up: the next round trip
    // fails with EOF (or a broken pipe on the write, depending on timing).
    assert!(matches!(
        again.round_trip_raw(r#"{"op":"stats","id":100}"#),
        Err(ClientError::Io(_))
    ));
    handle.shutdown();
}
