//! Aggregate queries using the external arithmetic Σ of Proposition 6.3.
//!
//! The proposition states that adding NC-computable externals (arithmetic,
//! cardinality, sum, …) to `NRA(bdcr)` keeps the language inside NC, whereas
//! `NRA¹(ℕ, +, dcr)` — *unbounded* dcr plus unbounded arithmetic — can express
//! exponential-space queries (the repeated-doubling query in
//! [`double_exponential`] is the standard witness: its output value grows as
//! `2^n`, so its binary representation grows linearly but the *numeric* value
//! explodes, and replacing `+` by set-building reproduces the blow-up that
//! bounded dcr prevents).

use ncql_core::derived;
use ncql_core::expr::Expr;
use ncql_object::Type;

/// Sum of `f(x)` over a set of atoms, via `dcr(0, f, +)` with the `nat_add`
/// external. With `f = λx. 1` this is cardinality.
pub fn sum_dcr<F: FnOnce(Expr) -> Expr>(set: Expr, f: F) -> Expr {
    let x = "x".to_string();
    Expr::dcr(
        Expr::nat(0),
        Expr::lam(x.clone(), Type::Base, f(Expr::var(x))),
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Nat, Type::Nat),
            Expr::extern_call("nat_add", vec![Expr::var("a"), Expr::var("b")]),
        ),
        set,
    )
}

/// Cardinality via `dcr`: `sum_dcr(set, λx. 1)`.
pub fn cardinality_dcr(set: Expr) -> Expr {
    sum_dcr(set, |_| Expr::nat(1))
}

/// Cardinality via the `card` external (a single NC-computable black box).
pub fn cardinality_extern(set: Expr) -> Expr {
    Expr::extern_call("card", vec![set])
}

/// Maximum of a set of atoms via `dcr` with the order predicate: the combiner is
/// `λ(a, b). if a ≤ b then b else a`, with identity the minimum atom `0`.
pub fn max_atom_dcr(set: Expr) -> Expr {
    Expr::dcr(
        Expr::atom(0),
        Expr::lam("x", Type::Base, Expr::var("x")),
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Base, Type::Base),
            Expr::ite(
                Expr::leq(Expr::var("a"), Expr::var("b")),
                Expr::var("b"),
                Expr::var("a"),
            ),
        ),
        set,
    )
}

/// The minimum of a *non-empty* set of atoms, computed relationally (without an
/// artificial "+∞" identity): the element that is ≤ every element of the set.
pub fn min_atom_relational(set: Expr) -> Expr {
    let s = ncql_core::expr::fresh_var("minset");
    Expr::let_in(
        s.clone(),
        set,
        derived::select(Type::Base, Expr::var(s.clone()), move |cand| {
            // cand is minimal iff the set of elements strictly below it is empty.
            Expr::is_empty(derived::select(Type::Base, Expr::var(s), move |y| {
                derived::and(
                    Expr::leq(y.clone(), cand.clone()),
                    derived::not(Expr::eq(y, cand.clone())),
                )
            }))
        }),
    )
}

/// Cardinality parity as a boolean — the aggregate the paper uses to motivate
/// `dcr` beyond first-order logic; identical to [`crate::parity::parity_dcr`]
/// but placed here for discoverability next to the other aggregates.
pub fn even_cardinality(set: Expr) -> Expr {
    derived::not(crate::parity::parity_dcr(set))
}

/// The Proposition 6.3 witness: iterate doubling `|set|` times starting from 1,
/// i.e. compute `2^|set|` with `loop` and `nat_add`. The *value* grows
/// exponentially with the input cardinality even though every intermediate is a
/// single natural number — this is what unbounded externals allow and what the
/// bounded language forbids.
pub fn double_exponential(set: Expr) -> Expr {
    Expr::loop_(
        Expr::lam(
            "acc",
            Type::Nat,
            Expr::extern_call("nat_add", vec![Expr::var("acc"), Expr::var("acc")]),
        ),
        set,
        Expr::nat(1),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::eval::eval_closed;
    use ncql_core::typecheck::typecheck_closed;
    use ncql_object::Value;

    fn atoms(v: Vec<u64>) -> Expr {
        Expr::constant(Value::atom_set(v))
    }

    #[test]
    fn cardinality_both_ways() {
        let s = atoms(vec![3, 1, 4, 1, 5, 9, 2, 6]);
        assert_eq!(
            eval_closed(&cardinality_dcr(s.clone())).unwrap(),
            Value::Nat(7)
        );
        assert_eq!(eval_closed(&cardinality_extern(s)).unwrap(), Value::Nat(7));
        assert_eq!(
            eval_closed(&cardinality_dcr(Expr::empty(Type::Base))).unwrap(),
            Value::Nat(0)
        );
    }

    #[test]
    fn sum_of_values() {
        let s = atoms(vec![1, 2, 3, 4]);
        let total = sum_dcr(s, |x| Expr::extern_call("atom_to_nat", vec![x]));
        assert_eq!(eval_closed(&total).unwrap(), Value::Nat(10));
    }

    #[test]
    fn max_and_min() {
        let s = atoms(vec![5, 17, 3]);
        assert_eq!(
            eval_closed(&max_atom_dcr(s.clone())).unwrap(),
            Value::Atom(17)
        );
        assert_eq!(
            eval_closed(&min_atom_relational(s)).unwrap(),
            Value::atom_set(vec![3])
        );
    }

    #[test]
    fn even_cardinality_flips_parity() {
        assert_eq!(
            eval_closed(&even_cardinality(atoms(vec![1, 2]))).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_closed(&even_cardinality(atoms(vec![1, 2, 3]))).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn double_exponential_grows() {
        assert_eq!(
            eval_closed(&double_exponential(atoms((0..10).collect()))).unwrap(),
            Value::Nat(1024)
        );
        assert_eq!(
            eval_closed(&double_exponential(atoms((0..20).collect()))).unwrap(),
            Value::Nat(1 << 20)
        );
    }

    #[test]
    fn aggregates_typecheck() {
        let s = atoms(vec![1, 2]);
        for q in [
            cardinality_dcr(s.clone()),
            cardinality_extern(s.clone()),
            double_exponential(s.clone()),
        ] {
            assert_eq!(typecheck_closed(&q).unwrap(), Type::Nat);
        }
        assert_eq!(
            typecheck_closed(&max_atom_dcr(s.clone())).unwrap(),
            Type::Base
        );
        assert_eq!(typecheck_closed(&even_cardinality(s)).unwrap(), Type::Bool);
    }
}
