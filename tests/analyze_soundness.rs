//! Differential soundness of the prepare-time cost bounds: for every corpus
//! query, the measured `CostStats` must sit between the analyser's guaranteed
//! floor and its symbolic upper bound, on whichever backend
//! `NCQL_TEST_PARALLELISM` selects (the CI matrix runs the sequential leg,
//! the 4-thread leg, and the oversubscribed-pool leg — stats are
//! backend-invariant, so the same inequalities must hold on each).
//!
//! The corpus queries are closed, so their bounds instantiate to constants;
//! they run on the trusted-AST path the differential suites use (some corpus
//! idioms predate the surface typechecker). A second suite prepares *open*
//! queries through the full engine front end against a declared schema and
//! sweeps the relation cardinality, checking the symbolic bound evaluated at
//! the actual cardinality against the measured cost of that run.

use ncql::core::eval::CostStats;
use ncql::core::externs::ExternRegistry;
use ncql::core::{analyze_query, parallelism_from_env, CostBound};
use ncql::object::{Type, Value};
use ncql::queries::corpus::differential_corpus;
use ncql::{Session, SessionBuilder};

/// The suite's session: backend from `NCQL_TEST_PARALLELISM`, cutover
/// dropped so the parallel legs really fork inside small corpus queries.
fn session() -> Session {
    SessionBuilder::new()
        .parallelism(parallelism_from_env())
        .parallel_cutoff(64)
        .build()
}

/// Assert floor ≤ measured ≤ bound, instantiating the symbolic bounds via
/// `lookup`. Returns whether both upper bounds were finite.
fn check_bounds(
    cost: &CostBound,
    stats: &CostStats,
    lookup: &dyn Fn(&str) -> Option<u64>,
    context: &str,
) -> bool {
    let floor = cost
        .work_floor
        .eval(lookup)
        .unwrap_or_else(|| panic!("{context}: floor must instantiate"));
    let span_floor = cost
        .span_floor
        .eval(lookup)
        .unwrap_or_else(|| panic!("{context}: span floor must instantiate"));
    assert!(
        floor <= stats.work,
        "{context}: floor {floor} exceeds measured work {} (floor unsound)",
        stats.work
    );
    assert!(
        span_floor <= stats.span,
        "{context}: span floor {span_floor} exceeds measured span {} (floor unsound)",
        stats.span
    );
    let mut finite = true;
    match cost.work.eval(lookup) {
        Some(bound) => assert!(
            stats.work <= bound,
            "{context}: measured work {} exceeds static bound {bound}",
            stats.work
        ),
        None => finite = false,
    }
    match cost.span.eval(lookup) {
        Some(bound) => assert!(
            stats.span <= bound,
            "{context}: measured span {} exceeds static bound {bound}",
            stats.span
        ),
        None => finite = false,
    }
    finite
}

#[test]
fn corpus_costs_never_exceed_the_static_bounds() {
    let session = session();
    let registry = ExternRegistry::standard();
    let corpus = differential_corpus();
    assert!(corpus.len() >= 40, "corpus shrank to {}", corpus.len());
    let mut finite = 0usize;
    for entry in &corpus {
        let analysis = analyze_query(&entry.expr, &[], &registry);
        let outcome = session
            .evaluate(&entry.expr)
            .unwrap_or_else(|e| panic!("{}: evaluation failed: {e}", entry.name));
        if check_bounds(&analysis.cost, &outcome.stats, &|_| None, &entry.name) {
            finite += 1;
        }
    }
    // The analyser is allowed to give up (`Bound::Unbounded`) on the gnarly
    // entries, but it must pin finite bounds for the majority of the corpus
    // or the tentpole has quietly regressed into "unbounded everywhere".
    assert!(
        finite >= 25,
        "only {finite}/{} corpus queries got finite bounds",
        corpus.len()
    );
}

#[test]
fn open_query_bounds_cover_swept_cardinalities() {
    let session = session();
    let schema = vec![("r".to_string(), Type::set(Type::Base))];
    let pair_schema = vec![(
        "g".to_string(),
        Type::set(Type::prod(Type::Base, Type::Base)),
    )];
    // (query text, schema, binding generator) — each prepared once through
    // the full front end, then executed across cardinalities against the
    // same symbolic bound.
    type SweptCase<'a> = (&'a str, &'a [(String, Type)], &'a dyn Fn(u64) -> Value);
    let atoms = |n: u64| Value::atom_set(0..n);
    let pairs = |n: u64| {
        Value::Set(
            (0..n)
                .map(|i| Value::pair(Value::Atom(i), Value::Atom((i + 1) % n.max(1))))
                .collect(),
        )
    };
    let swept: Vec<SweptCase> = vec![
        ("ext(\\x: atom. {x}, r)", &schema, &atoms),
        ("card(r)", &schema, &atoms),
        (
            "dcr(0, \\x: atom. 1, \\p: (nat * nat). nat_add(pi1 p, pi2 p), r)",
            &schema,
            &atoms,
        ),
        (
            "sri(empty[atom], \\q: (atom * {atom}). {pi1 q} union pi2 q, r)",
            &schema,
            &atoms,
        ),
        ("ext(\\e: (atom * atom). {pi2 e}, g)", &pair_schema, &pairs),
        (
            "logloop(\\s: {atom}. s union {@0}, r, empty[atom])",
            &schema,
            &atoms,
        ),
    ];
    for (text, schema, gen) in swept {
        let query = session
            .prepare_with_schema(text, schema)
            .unwrap_or_else(|e| panic!("{text}: prepare failed: {e}"));
        let name = &schema[0].0;
        for n in [0u64, 1, 2, 5, 13, 40] {
            let bindings = vec![(name.clone(), gen(n))];
            let context = format!("{text} at |{name}|={n}");
            let outcome = session
                .execute_with_bindings(&query, &bindings)
                .unwrap_or_else(|e| panic!("{context}: evaluation failed: {e}"));
            let lookup = |var: &str| -> Option<u64> {
                bindings
                    .iter()
                    .find(|(bound, _)| bound == var)
                    .and_then(|(_, v)| v.cardinality())
                    .map(|c| c as u64)
            };
            let finite = check_bounds(&query.analysis().cost, &outcome.stats, &lookup, &context);
            assert!(finite, "{context}: expected a finite symbolic bound");
        }
    }
}
