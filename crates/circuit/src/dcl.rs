//! The Direct Connection Language (DCL) of a circuit family (§4).
//!
//! "The direct connection language DCL for a family αₙ of circuits is the set of
//! quadruples (n, g, g′, t), where g, g′ are gate numbers in αₙ, such that g is a
//! child of g′, and the type of g′ is t ∈ {NOT, AND, OR, y₁, …, y_Q(n)}; the input
//! gates x₁, …, xₙ have the special assigned numbers 1, …, n."
//!
//! Uniformity of a family means this language is decidable by a resource-bounded
//! machine; the explicit DLOGSPACE-style witness for the hand-written transitive
//! closure family lives in [`crate::logspace`]. This module provides the
//! *extensional* DCL of any materialized circuit, so that uniformity witnesses
//! can be checked against it.

use crate::gate::{Circuit, GateId, GateKind};
use std::collections::BTreeSet;

/// The gate-type component `t` of a DCL tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum DclGateType {
    /// The parent is a NOT gate.
    Not,
    /// The parent is an AND gate.
    And,
    /// The parent is an OR gate.
    Or,
    /// The parent is the i-th output (the paper's `y_i`); the child is the gate
    /// producing that output.
    Output(usize),
}

/// One DCL tuple `(n, g, g′, t)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct DclTuple {
    /// The input-length parameter of the family member.
    pub n: usize,
    /// The child gate `g`.
    pub child: GateId,
    /// The parent gate `g′` (for `Output(i)` tuples this is the output index).
    pub parent: GateId,
    /// The type of the parent.
    pub parent_type: DclGateType,
}

/// Extract the DCL of one circuit, tagged with the family parameter `n`.
pub fn direct_connection_language(n: usize, circuit: &Circuit) -> BTreeSet<DclTuple> {
    let mut out = BTreeSet::new();
    for (parent, gate) in circuit.gates.iter().enumerate() {
        let parent_type = match gate.kind {
            GateKind::Not => DclGateType::Not,
            GateKind::And => DclGateType::And,
            GateKind::Or => DclGateType::Or,
            GateKind::Input(_) | GateKind::Const(_) => continue,
        };
        for &child in &gate.inputs {
            out.insert(DclTuple {
                n,
                child,
                parent,
                parent_type,
            });
        }
    }
    for (i, &gate) in circuit.outputs.iter().enumerate() {
        out.insert(DclTuple {
            n,
            child: gate,
            parent: i,
            parent_type: DclGateType::Output(i),
        });
    }
    out
}

/// Membership query against a materialized circuit (the brute-force decision
/// procedure the uniformity witness is compared to).
pub fn is_member(n: usize, circuit: &Circuit, tuple: &DclTuple) -> bool {
    if tuple.n != n {
        return false;
    }
    match tuple.parent_type {
        DclGateType::Output(i) => {
            tuple.parent == i && circuit.outputs.get(i).copied() == Some(tuple.child)
        }
        expected => match circuit.gates.get(tuple.parent) {
            Some(gate) => {
                let ty = match gate.kind {
                    GateKind::Not => Some(DclGateType::Not),
                    GateKind::And => Some(DclGateType::And),
                    GateKind::Or => Some(DclGateType::Or),
                    _ => None,
                };
                ty == Some(expected) && gate.inputs.contains(&tuple.child)
            }
            None => false,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gate::CircuitBuilder;

    fn sample_circuit() -> Circuit {
        let mut b = CircuitBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let a = b.and2(x, y);
        let o = b.or2(a, x);
        let nn = b.not(o);
        b.finish(vec![nn])
    }

    #[test]
    fn dcl_lists_all_wires() {
        let c = sample_circuit();
        let dcl = direct_connection_language(2, &c);
        // and2 has 2 children, or2 has 2, not has 1, plus one output tuple.
        assert_eq!(dcl.len(), 2 + 2 + 1 + 1);
        assert!(dcl
            .iter()
            .any(|t| t.parent_type == DclGateType::And && t.child == 0));
        assert!(dcl
            .iter()
            .any(|t| matches!(t.parent_type, DclGateType::Output(0))));
    }

    #[test]
    fn membership_agrees_with_extraction() {
        let c = sample_circuit();
        let dcl = direct_connection_language(2, &c);
        for tuple in &dcl {
            assert!(is_member(2, &c, tuple), "{tuple:?}");
        }
        // A non-edge is rejected.
        let bogus = DclTuple {
            n: 2,
            child: 1,
            parent: 4,
            parent_type: DclGateType::Not,
        };
        assert_eq!(is_member(2, &c, &bogus), dcl.contains(&bogus));
        let wrong_n = DclTuple {
            n: 3,
            ..*dcl.iter().next().unwrap()
        };
        assert!(!is_member(2, &c, &wrong_n));
    }
}
