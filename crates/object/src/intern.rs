//! A process-wide atom interner: named atoms as dense `u32` ids.
//!
//! The base type `D` of the paper is an abstract ordered domain; the runtime
//! has always represented its elements as bare `u64` identifiers
//! ([`Atom`]). That representation is what keeps atom-bearing shapes
//! *fixed-width* — one machine word per atom — and therefore eligible for the
//! columnar set representation and the compiled row kernels. Applications,
//! however, want symbolic atoms (`@alice`, `@paris`), and storing strings in
//! values would make every atom variable-width again.
//!
//! This module squares the two: [`intern_atom`] maps a name to a dense
//! `u32` id in a process-wide table and returns it tagged into the upper half
//! of the atom space (`NAMED_ATOM_BASE | id`). The payload carried by values,
//! rows, and wire encodings stays one `u64` word; `Display` consults the
//! table to print the name back; `Ord` remains the plain word order (named
//! atoms sort after all numeric atoms, in interning order — the order on `D`
//! is abstract, so any fixed total order is sound). Interning is idempotent
//! and the table only grows, so a name observed anywhere in the process
//! always resolves to the same atom.

use crate::value::Atom;
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// Tag for interned (named) atoms: the id lives in the low 32 bits. Numeric
/// atom literals and data-generator atoms live below this in practice, so the
/// two populations never collide; an un-interned atom above the tag simply
/// has no name and prints numerically.
pub const NAMED_ATOM_BASE: Atom = 1 << 63;

/// The intern table: names are leaked once (the table is process-wide and
/// append-only), so lookups can hand out `&'static str` without holding the
/// lock.
struct Interner {
    by_name: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
}

fn table() -> &'static RwLock<Interner> {
    static TABLE: OnceLock<RwLock<Interner>> = OnceLock::new();
    TABLE.get_or_init(|| {
        RwLock::new(Interner {
            by_name: HashMap::new(),
            names: Vec::new(),
        })
    })
}

/// Intern `name`, returning its atom. The first call for a name assigns the
/// next dense `u32` id; every later call (from any thread) returns the same
/// atom.
pub fn intern_atom(name: &str) -> Atom {
    if let Some(&id) = table()
        .read()
        .expect("intern table poisoned")
        .by_name
        .get(name)
    {
        return NAMED_ATOM_BASE | u64::from(id);
    }
    let mut t = table().write().expect("intern table poisoned");
    if let Some(&id) = t.by_name.get(name) {
        return NAMED_ATOM_BASE | u64::from(id);
    }
    let id = u32::try_from(t.names.len()).expect("atom intern table overflow");
    let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
    t.names.push(leaked);
    t.by_name.insert(leaked, id);
    NAMED_ATOM_BASE | u64::from(id)
}

/// The name behind an interned atom, or `None` for numeric atoms and for
/// tagged ids that were never interned in this process.
pub fn atom_name(atom: Atom) -> Option<&'static str> {
    if atom & NAMED_ATOM_BASE == 0 {
        return None;
    }
    let id = atom & !NAMED_ATOM_BASE;
    if id > u64::from(u32::MAX) {
        return None;
    }
    table()
        .read()
        .expect("intern table poisoned")
        .names
        .get(id as usize)
        .copied()
}

/// Number of distinct names interned so far in this process.
pub fn interned_count() -> usize {
    table().read().expect("intern table poisoned").names.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn interning_is_idempotent_and_dense() {
        let a = intern_atom("intern-test-alpha");
        let b = intern_atom("intern-test-beta");
        assert_ne!(a, b);
        assert_eq!(intern_atom("intern-test-alpha"), a);
        assert_eq!(intern_atom("intern-test-beta"), b);
        assert!(a & NAMED_ATOM_BASE != 0 && b & NAMED_ATOM_BASE != 0);
        assert_eq!(atom_name(a), Some("intern-test-alpha"));
        assert_eq!(atom_name(b), Some("intern-test-beta"));
    }

    #[test]
    fn numeric_atoms_have_no_name() {
        assert_eq!(atom_name(42), None);
        // A tagged id far beyond anything interned resolves to no name.
        assert_eq!(atom_name(NAMED_ATOM_BASE | 0xFFFF_FFF0), None);
    }

    #[test]
    fn named_atoms_display_their_name_and_stay_one_word() {
        let a = intern_atom("intern-test-display");
        assert_eq!(Value::Atom(a).to_string(), "@intern-test-display");
        assert_eq!(Value::Atom(7).to_string(), "a7");
        // Named atoms sort after every numeric atom: plain word order.
        assert!(Value::Atom(u64::MAX >> 1) < Value::Atom(a));
    }

    #[test]
    fn interning_from_many_threads_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern_atom("intern-test-racy")))
            .collect();
        let ids: Vec<Atom> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
        assert!(interned_count() >= 1);
    }
}
