//! Experiment harness reproducing the paper's propositions and worked examples.
//!
//! The paper has no empirical tables (it is a theory paper); the "evaluation" we
//! reproduce is the set of measurable claims listed in `DESIGN.md` §4 and
//! `EXPERIMENTS.md` (E1–E13). Each `e*` function runs one experiment over a
//! parameter sweep and returns a [`Table`] of rows; the `report` binary prints
//! every table, and the Criterion benches time the underlying operations.

use ncql_circuit::compile::compile_stats;
use ncql_circuit::dcl::direct_connection_language;
use ncql_circuit::logspace::{LogSpaceMeter, UniformTcFamily};
use ncql_circuit::relquery::RelQuery;
use ncql_core::eval::{eval_with_stats, log_rounds, EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_core::parallel::ParallelEvaluator;
use ncql_core::wellformed::{CheckOptions, LawChecker};
use ncql_core::{derived, EvalError};
use ncql_engine::{OptLevel, SessionBuilder};
use ncql_object::encoding::{decode, encode};
use ncql_object::{Type, Value};
use ncql_queries::{aggregates, datagen, graph, iterate, parity, powerset};
use ncql_translate::{prop21, prop73};
use std::fmt;
use std::time::Instant;

/// A simple textual results table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Experiment identifier (e.g. "E2").
    pub id: &'static str,
    /// Human-readable title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Table {
        Table {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row.
    pub fn push_row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "[{}] {}", self.id, self.title)?;
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r.get(i).map(String::len).unwrap_or(0))
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "  ")?;
            for (i, c) in cells.iter().enumerate() {
                write!(
                    f,
                    "{:width$}  ",
                    c,
                    width = widths.get(i).copied().unwrap_or(8)
                )?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

fn atoms_expr(n: u64) -> Expr {
    Expr::constant(Value::atom_set(0..n))
}

/// E1 — §1 parity example: span/work of the `dcr`, `esr` and `loop` variants.
pub fn e1_parity(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E1",
        "Parity (§1): dcr span is logarithmic, esr/loop span is linear",
        &[
            "n",
            "dcr span",
            "dcr work",
            "esr span",
            "esr work",
            "loop span",
        ],
    );
    for &n in sizes {
        let (_, d) = eval_with_stats(&parity::parity_dcr(atoms_expr(n))).expect("parity dcr");
        let (_, e) = eval_with_stats(&parity::parity_esr(atoms_expr(n))).expect("parity esr");
        let (_, l) = eval_with_stats(&parity::parity_loop(atoms_expr(n))).expect("parity loop");
        t.push_row(vec![
            n.to_string(),
            d.span.to_string(),
            d.work.to_string(),
            e.span.to_string(),
            e.work.to_string(),
            l.span.to_string(),
        ]);
    }
    t
}

/// E2 — transitive closure (§1 / Example 7.1): span of the dcr, log-loop and
/// element-by-element forms on path graphs.
pub fn e2_transitive_closure(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E2",
        "Transitive closure: dcr / log-loop (NC shape) vs element-wise (PTIME shape)",
        &[
            "n",
            "dcr span",
            "logloop span",
            "elem span",
            "dcr work",
            "elem work",
            "rounds(logloop)",
        ],
    );
    for &n in sizes {
        let r = Expr::constant(datagen::path_graph(n).to_value());
        let (_, d) = eval_with_stats(&graph::tc_dcr(r.clone())).expect("tc dcr");
        let (_, l) = eval_with_stats(&graph::tc_log_loop(r.clone())).expect("tc logloop");
        let (_, e) = eval_with_stats(&graph::tc_elementwise(r)).expect("tc elementwise");
        t.push_row(vec![
            n.to_string(),
            d.span.to_string(),
            l.span.to_string(),
            e.span.to_string(),
            d.work.to_string(),
            e.work.to_string(),
            l.sequential_rounds.to_string(),
        ]);
    }
    t
}

/// E3 — Proposition 2.1: overhead of expressing `dcr` through `esr`/`sri`.
pub fn e3_recursion_translations(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E3",
        "Prop 2.1 translations: results agree, work overhead is polynomial, span grows",
        &[
            "n",
            "agree",
            "work factor (dcr->esr)",
            "span factor",
            "work factor (dcr->sri)",
        ],
    );
    let true_f = || Expr::lam("y", Type::Base, Expr::bool_val(true));
    let xor_u = || {
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            derived::xor(Expr::var("a"), Expr::var("b")),
        )
    };
    for &n in sizes {
        let direct = Expr::dcr(Expr::bool_val(false), true_f(), xor_u(), atoms_expr(n));
        let via_esr = prop21::dcr_via_esr(
            Expr::bool_val(false),
            true_f(),
            xor_u(),
            atoms_expr(n),
            Type::Base,
            Type::Bool,
        );
        let via_sri = prop21::dcr_via_sri(
            Expr::bool_val(false),
            true_f(),
            xor_u(),
            atoms_expr(n),
            Type::Base,
            Type::Bool,
        );
        let r1 = prop21::measure_overhead(&direct, &via_esr);
        let r2 = prop21::measure_overhead(&direct, &via_sri);
        match (r1, r2) {
            (Some(r1), Some(r2)) => t.push_row(vec![
                n.to_string(),
                "yes".to_string(),
                format!("{:.2}", r1.work_factor()),
                format!("{:.2}", r1.span_factor()),
                format!("{:.2}", r2.work_factor()),
            ]),
            _ => t.push_row(vec![
                n.to_string(),
                "NO".to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t
}

/// E4 — Proposition 2.2: bounded recursion equals unbounded recursion over flat
/// relations.
pub fn e4_bounded_dcr(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E4",
        "Prop 2.2: bounded recursion + relational algebra expresses dcr over flat relations",
        &[
            "n",
            "tc(dcr) == tc(bounded)",
            "bounded work",
            "unbounded work",
        ],
    );
    for &n in sizes {
        let r = Expr::constant(datagen::cycle_graph(n).to_value());
        let (v1, s1) = eval_with_stats(&graph::tc_dcr(r.clone())).expect("tc dcr");
        let (v2, s2) = eval_with_stats(&graph::tc_blog_loop(r)).expect("tc bounded");
        t.push_row(vec![
            n.to_string(),
            (v1 == v2).to_string(),
            s2.work.to_string(),
            s1.work.to_string(),
        ]);
    }
    t
}

/// E5 — Proposition 7.3: the halving simulation of dcr uses exactly ⌈log₂ m⌉
/// rounds and agrees with the direct semantics.
pub fn e5_dcr_logloop(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E5",
        "Prop 7.3: dcr by order-driven halving — rounds = ceil(log2 m), results agree",
        &["n", "rounds", "ceil(log2 n)", "agree", "combiner apps"],
    );
    let f = Expr::lam("y", Type::Base, Expr::bool_val(true));
    let u = Expr::lam2(
        "a",
        "b",
        Type::prod(Type::Bool, Type::Bool),
        derived::xor(Expr::var("a"), Expr::var("b")),
    );
    for &n in sizes {
        let x = Value::atom_set(0..n);
        let (direct, outcome) =
            prop73::verify_dcr_halving(&Expr::bool_val(false), &f, &u, &x).expect("halving");
        let expected = if n <= 1 {
            0
        } else {
            (n as f64).log2().ceil() as u64
        };
        t.push_row(vec![
            n.to_string(),
            outcome.rounds.to_string(),
            expected.to_string(),
            (direct == outcome.value).to_string(),
            outcome.combiner_applications.to_string(),
        ]);
    }
    t
}

/// E6 — Theorem 6.2 / Prop 7.7: compiled circuit depth and size per universe
/// size and iteration-nesting depth k.
pub fn e6_circuit_depth(ks: &[usize], ns: &[usize]) -> Table {
    let mut t = Table::new(
        "E6",
        "Compiled circuits: depth grows by a log-factor per nesting level (AC^k shape)",
        &["k", "n", "depth", "size", "ceil(log2 n)"],
    );
    for &k in ks {
        for &n in ns {
            let stats = compile_stats(&RelQuery::nested_depth_k(k), n);
            t.push_row(vec![
                k.to_string(),
                n.to_string(),
                stats.depth.to_string(),
                stats.size.to_string(),
                log_rounds(n).to_string(),
            ]);
        }
    }
    t
}

/// E7 — PTIME vs NC: wall-clock of the parallel evaluation backend vs the
/// sequential backend on the dcr transitive closure (the NC shape forks, the
/// element-wise PTIME shape cannot), with a cross-backend agreement check.
pub fn e7_ptime_vs_nc(sizes: &[u64], threads: usize) -> Table {
    let mut t = Table::new(
        "E7",
        "Wall-clock: dcr on the parallel backend vs the sequential backend",
        &[
            "n",
            "par dcr (ms)",
            "seq dcr (ms)",
            "speedup",
            "stats agree",
        ],
    );
    for &n in sizes {
        let query = graph::tc_dcr(Expr::constant(datagen::path_graph(n).to_value()));
        // Default cutover: the quick-run sizes are small enough that forking
        // every inner ext would be pure overhead; the Criterion bench drives
        // the genuinely parallel sizes.
        let mut par_ev = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(threads),
            ..EvalConfig::default()
        });
        // One untimed warm-up per backend: the harness runs after other
        // experiments whose heap churn would otherwise be billed to whichever
        // backend happens to be timed first.
        par_ev.eval_closed(&query).expect("par dcr warm-up");
        eval_with_stats(&query).expect("seq dcr warm-up");
        let start = Instant::now();
        let par = par_ev.eval_closed(&query).expect("par dcr");
        let par_ms = start.elapsed().as_secs_f64() * 1000.0;
        let start = Instant::now();
        let (seq, seq_stats) = eval_with_stats(&query).expect("seq dcr");
        let seq_ms = start.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(par, seq, "parallel and sequential TC must agree");
        t.push_row(vec![
            n.to_string(),
            format!("{par_ms:.2}"),
            format!("{seq_ms:.2}"),
            format!("{:.2}", seq_ms / par_ms.max(0.001)),
            (par_ev.stats() == seq_stats).to_string(),
        ]);
    }
    t
}

/// E8 — powerset blow-up: unbounded dcr exceeds a resource limit, bounded dcr
/// stays polynomial (Prop 6.3 / §2).
pub fn e8_bounded_vs_unbounded(sizes: &[u64], limit: usize) -> Table {
    let mut t = Table::new(
        "E8",
        "Powerset: unbounded dcr blows up exponentially, bdcr stays within the bound",
        &[
            "n",
            "unbounded outcome",
            "bounded |result|",
            "bounded max set",
        ],
    );
    for &n in sizes {
        let mut ev = Evaluator::new(EvalConfig {
            max_set_size: limit,
            ..EvalConfig::default()
        });
        let unbounded = match ev.eval_closed(&powerset::powerset_dcr(atoms_expr(n))) {
            Ok(v) => format!("|P(x)| = {}", v.cardinality().unwrap_or(0)),
            Err(EvalError::SetTooLarge { limit, .. }) => format!("exceeded limit {limit}"),
            Err(e) => format!("error: {e}"),
        };
        let mut ev2 = Evaluator::new(EvalConfig {
            max_set_size: limit,
            ..EvalConfig::default()
        });
        let bounded = ev2
            .eval_closed(&powerset::bounded_small_subsets(atoms_expr(n)))
            .expect("bounded powerset");
        t.push_row(vec![
            n.to_string(),
            unbounded,
            bounded.cardinality().unwrap_or(0).to_string(),
            ev2.stats().max_set_size.to_string(),
        ]);
    }
    t
}

/// E8b — the Proposition 6.3 witness: `loop` + unbounded `nat_add` doubles a
/// value `|x|` times, so the numeric value grows exponentially.
pub fn e8b_arithmetic_blowup(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E8b",
        "Prop 6.3: loop + nat_add doubles a value |x| times (exponential value growth)",
        &["n", "2^n"],
    );
    for &n in sizes {
        let v = ncql_core::eval::eval_closed(&aggregates::double_exponential(atoms_expr(n)))
            .expect("double exponential");
        t.push_row(vec![n.to_string(), format!("{}", v.as_nat().unwrap_or(0))]);
    }
    t
}

/// E9 — §5 encoding and the Lemma 7.4–7.6 gadgets: round-trips and constant
/// gadget depth.
pub fn e9_encoding_gadgets(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E9",
        "Encoding round-trips and gadget circuits (Lemmas 7.4-7.6): constant depth",
        &[
            "n (edges)",
            "encoding len",
            "roundtrip",
            "elem-starts depth",
            "paren depth",
            "eq depth",
        ],
    );
    for &n in sizes {
        let rel = datagen::cycle_graph(n).to_value();
        let s = encode(&rel);
        let back = decode(&s, &Type::binary_relation()).expect("decode");
        let len = s.len();
        let starts = ncql_circuit::gadgets::element_starts(len);
        let parens = ncql_circuit::gadgets::matched_parentheses(len);
        let eq = ncql_circuit::gadgets::encoding_equality(len);
        t.push_row(vec![
            n.to_string(),
            len.to_string(),
            (back == rel).to_string(),
            starts.depth().to_string(),
            parens.depth().to_string(),
            eq.depth().to_string(),
        ]);
    }
    t
}

/// E10 — uniformity: the arithmetic DCL decider for the TC family agrees with
/// the materialized DCL and uses O(log n) working bits.
pub fn e10_uniformity(sizes: &[usize]) -> Table {
    let mut t = Table::new(
        "E10",
        "DLOGSPACE-DCL uniformity of the TC circuit family",
        &[
            "n",
            "gates",
            "dcl tuples",
            "all tuples accepted",
            "work bits",
            "16*ceil(log2 gates)",
        ],
    );
    for &n in sizes {
        let circuit = UniformTcFamily::generate(n);
        let dcl = direct_connection_language(n, &circuit);
        let mut all_ok = true;
        let mut max_bits = 0u64;
        for tuple in dcl.iter().take(2000) {
            let mut meter = LogSpaceMeter::new();
            if !UniformTcFamily::dcl_member(n, tuple, &mut meter) {
                all_ok = false;
            }
            max_bits = max_bits.max(meter.bits_used());
        }
        let budget = 16 * (usize::BITS - UniformTcFamily::total_gates(n).leading_zeros()) as u64;
        t.push_row(vec![
            n.to_string(),
            circuit.size().to_string(),
            dcl.len().to_string(),
            all_ok.to_string(),
            max_bits.to_string(),
            budget.to_string(),
        ]);
    }
    t
}

/// E11 — Example 7.2 iteration counters: measured counts match n, n², log n, log² n.
pub fn e11_iteration_nesting(sizes: &[u64]) -> Table {
    let mut t = Table::new(
        "E11",
        "Example 7.2: loop / log-loop nesting reaches n, n^2, log n, log^2 n iterations",
        &[
            "n",
            "count_n",
            "count_n^2",
            "count_log n",
            "count_log^2 n",
            "ceil(log(n+1))",
        ],
    );
    for &n in sizes {
        let get = |e: &Expr| -> u64 {
            ncql_core::eval::eval_closed(e)
                .expect("iteration counter")
                .as_nat()
                .unwrap_or(0)
        };
        t.push_row(vec![
            n.to_string(),
            get(&iterate::count_n(atoms_expr(n))).to_string(),
            get(&iterate::count_n_squared(atoms_expr(n))).to_string(),
            get(&iterate::count_log_n(atoms_expr(n))).to_string(),
            get(&iterate::count_log_squared_n(atoms_expr(n))).to_string(),
            log_rounds(n as usize).to_string(),
        ]);
    }
    t
}

/// E12 — well-definedness checking (§2): the bounded checker accepts the orderly
/// combiners and rejects the crafted non-AC ones.
pub fn e12_wellformedness() -> Table {
    let mut t = Table::new(
        "E12",
        "Bounded algebraic-law checking: orderly combiners pass, the §2 counterexample fails",
        &[
            "instance",
            "well-formed",
            "checks performed",
            "orderly (syntactic)",
        ],
    );
    let input = Value::atom_set(0..6);
    let singleton_f = Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y")));
    let cases: Vec<(&str, Expr, Expr, Expr)> = vec![
        (
            "union",
            Expr::empty(Type::Base),
            singleton_f.clone(),
            derived::union_combiner(Type::Base),
        ),
        (
            "xor (parity)",
            Expr::bool_val(false),
            Expr::lam("y", Type::Base, Expr::bool_val(true)),
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::Bool, Type::Bool),
                Expr::ite(
                    Expr::var("a"),
                    Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
                    Expr::var("b"),
                ),
            ),
        ),
        (
            "set difference (§2 counterexample)",
            Expr::empty(Type::Base),
            singleton_f.clone(),
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::set(Type::Base), Type::set(Type::Base)),
                derived::difference(Type::Base, Expr::var("a"), Expr::var("b")),
            ),
        ),
        (
            "left projection (non-commutative)",
            Expr::empty(Type::Base),
            singleton_f,
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::set(Type::Base), Type::set(Type::Base)),
                Expr::var("a"),
            ),
        ),
    ];
    for (name, e, f, u) in cases {
        let mut checker = LawChecker::default();
        let report = checker
            .check_dcr_instance(&e, &f, &u, &input, &CheckOptions::default())
            .expect("law check");
        let orderly = ncql_translate::orderly::recognize_combiner(&e, &u).is_some();
        t.push_row(vec![
            name.to_string(),
            report.is_well_formed().to_string(),
            report.checks_performed.to_string(),
            orderly.to_string(),
        ]);
    }
    t
}

/// E13 — the algebraic optimizer over the differential corpus: for every
/// query where at least one cost-gated rewrite fires, the static work bound
/// and the measured work of the raw plan vs the rewritten plan, with the
/// rules that fired. The rewritten numbers may only be equal or lower — the
/// optimizer's gate refuses any rewrite whose predicted cost regresses.
pub fn e13_optimizer() -> Table {
    let mut t = Table::new(
        "E13",
        "Algebraic optimizer: static work bound and measured work, raw plan vs rewritten plan",
        &[
            "query",
            "bound raw",
            "bound opt",
            "work raw",
            "work opt",
            "rules fired",
        ],
    );
    let raw_session = SessionBuilder::new().opt_level(OptLevel::None).build();
    let opt_session = SessionBuilder::new().opt_level(OptLevel::Default).build();
    for entry in ncql_queries::corpus::differential_corpus() {
        // A few corpus entries deliberately outrun the typechecker; the
        // optimizer runs after typecheck and never sees them.
        let Ok(raw) = raw_session.prepare_expr(entry.expr.clone()) else {
            continue;
        };
        let opt = opt_session
            .prepare_expr(entry.expr.clone())
            .expect("typechecked raw plan must also prepare optimized");
        if opt.rewrites().is_empty() {
            continue;
        }
        let raw_out = raw_session.execute(&raw).expect("raw corpus execute");
        let opt_out = opt_session.execute(&opt).expect("optimized corpus execute");
        let bound = |q: &ncql_engine::PreparedQuery| {
            q.analysis()
                .cost
                .work
                .eval_closed()
                .map(|n| n.to_string())
                .unwrap_or_else(|| "∞".to_string())
        };
        let rules: Vec<&str> = opt.rewrites().iter().map(|f| f.rule).collect();
        t.push_row(vec![
            entry.name.to_string(),
            bound(&raw),
            bound(&opt),
            raw_out.stats.work.to_string(),
            opt_out.stats.work.to_string(),
            rules.join(", "),
        ]);
    }
    t
}

/// E14: wire-protocol serving latency. One in-process `ncql-serve` server
/// over one shared `Session` per row; `clients` concurrent connections each
/// issue `requests_per_client` requests round-robined over the serve corpus.
/// Returns the table plus the largest run's `BENCH_serve.json` payload so
/// the report binary can persist it. Latency is wall-clock and
/// machine-dependent — the table documents serving overhead, not a paper
/// claim, so `check_shapes` does not gate on it (beyond the zero-error
/// invariant asserted here).
pub fn e14_serve_latency(clients: &[usize], requests_per_client: usize) -> (Table, String) {
    use ncql_serve::loadgen::{run_load, LoadConfig};
    use ncql_serve::{ServeConfig, Server};

    let mut t = Table::new(
        "E14",
        "Serving: wire latency vs concurrent clients (one shared session, thread-per-connection)",
        &[
            "clients",
            "ok",
            "busy",
            "p50_us",
            "p95_us",
            "p99_us",
            "max_us",
            "req_per_s",
        ],
    );
    let mut payload = String::new();
    for &n in clients {
        let server = Server::bind(ServeConfig::default(), SessionBuilder::new().build())
            .expect("bind in-process server");
        let handle = server.spawn().expect("spawn in-process server");
        let report = run_load(
            handle.addr(),
            &LoadConfig {
                clients: n,
                requests_per_client,
                ..LoadConfig::default()
            },
        );
        handle.shutdown();
        assert_eq!(
            report.errors, 0,
            "serve bench hit errors: {:?}",
            report.error_samples
        );
        t.push_row(vec![
            n.to_string(),
            report.ok.to_string(),
            report.busy_retries.to_string(),
            report.latency.p50_us.to_string(),
            report.latency.p95_us.to_string(),
            report.latency.p99_us.to_string(),
            report.latency.max_us.to_string(),
            format!("{:.0}", report.throughput_rps()),
        ]);
        payload = format!("{}\n", report.to_json());
    }
    (t, payload)
}

/// A deterministic unsorted element vector of flat-shaped pairs with plenty
/// of duplicates — the shape of data the evaluator's `ext` hands to set
/// canonicalization. The multiplicative scramble is a fixed odd constant, so
/// every run (and both A/B arms) sees the same input.
fn scrambled_pairs(n: usize) -> Vec<Value> {
    (0..n as u64)
        .map(|i| {
            let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Value::pair(
                Value::Atom(key % (n as u64 / 2 + 1)),
                Value::Nat((key >> 32) % 64),
            )
        })
        .collect()
}

/// The minimum wall-clock time of `reps` runs of `f`, in microseconds, plus
/// the last result (for cross-arm equality checks).
fn best_of<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, u64) {
    let mut best = u64::MAX;
    let mut out = None;
    for _ in 0..reps {
        let started = Instant::now();
        let r = f();
        best = best.min(started.elapsed().as_micros() as u64);
        out = Some(r);
    }
    (out.expect("reps >= 1"), best)
}

/// E15 — columnar flat sets: canonicalization and parallel canonical merge.
///
/// Part one A/Bs the two `VSet` representations on the hot path the
/// evaluator's `ext` runs — canonicalizing a large unsorted flat-shaped
/// element vector — by building the same set through `VSet::from_iter`
/// (columnar word rows, vectorized row sort) and `VSet::from_iter_boxed`
/// (boxed values, comparison sort). Part two times the canonical merge of
/// pre-sorted shards, the shape the parallel `ext` produces: sequentially via
/// `VSet::union_many` and as pairwise combine rounds on the work-stealing
/// pool at 1 and 4 workers. All paths must land on the identical canonical
/// set — the merge is deterministic by canonicity, so only time may differ.
/// Returns the table plus the `BENCH_columnar.json` payload.
pub fn e15_columnar(sizes: &[usize], shards: usize) -> (Table, String) {
    use ncql_object::VSet;
    use ncql_pram::WorkStealingPool;

    let mut t = Table::new(
        "E15",
        "Columnar sets: canonicalization A/B and shard-merge scaling (best of 3, microseconds)",
        &[
            "n",
            "boxed_us",
            "columnar_us",
            "canon_ratio",
            "merge_seq_us",
            "merge_p1_us",
            "merge_p4_us",
        ],
    );
    let reps = 3;
    let mut payload_rows = Vec::new();
    for &n in sizes {
        let elems = scrambled_pairs(n);
        let (boxed, boxed_us) = best_of(reps, || VSet::from_iter_boxed(elems.clone()));
        let (columnar, columnar_us) = best_of(reps, || elems.iter().cloned().collect::<VSet>());
        assert_eq!(boxed, columnar, "representations diverged at n = {n}");
        assert!(columnar.is_columnar(), "large flat set must be columnar");

        // Pre-sorted overlapping shards: each chunk spans the whole key
        // space, so the merge deduplicates across every shard boundary.
        let parts: Vec<VSet> = elems
            .chunks(n.div_ceil(shards))
            .map(|chunk| chunk.iter().cloned().collect())
            .collect();
        let (merged_seq, merge_seq_us) = best_of(reps, || VSet::union_many(parts.clone()));
        assert_eq!(merged_seq, columnar, "sequential merge diverged at n = {n}");
        let mut pool_us = Vec::new();
        for threads in [1usize, 4] {
            let pool = WorkStealingPool::new(threads);
            let region = pool.try_borrow(threads).expect("fresh pool has budget");
            let (merged, us) = best_of(reps, || {
                region
                    .reduce(parts.clone(), |a, b| a.union(b))
                    .expect("union never panics")
                    .unwrap_or_default()
            });
            assert_eq!(
                merged, columnar,
                "pool merge ({threads} workers) diverged at n = {n}"
            );
            drop(region);
            pool.shutdown();
            pool_us.push(us);
        }
        t.push_row(vec![
            n.to_string(),
            boxed_us.to_string(),
            columnar_us.to_string(),
            format!("{:.2}", boxed_us as f64 / columnar_us.max(1) as f64),
            merge_seq_us.to_string(),
            pool_us[0].to_string(),
            pool_us[1].to_string(),
        ]);
        payload_rows.push(format!(
            "{{\"n\":{n},\"shards\":{shards},\"boxed_us\":{boxed_us},\"columnar_us\":{columnar_us},\"merge_seq_us\":{merge_seq_us},\"merge_pool1_us\":{},\"merge_pool4_us\":{}}}",
            pool_us[0], pool_us[1]
        ));
    }
    let payload = format!(
        "{{\"experiment\":\"E15\",\"reps\":{reps},\"rows\":[{}]}}\n",
        payload_rows.join(",")
    );
    (t, payload)
}

/// E16 — compiled row kernels vs the interpreted `ext` element map.
///
/// The query is a kernel-liftable `ext` over a large columnar `(atom, nat)`
/// set: per row it computes `y = pi2 x * 3 + 7`, keeps the row iff
/// `y <= 384`, and rebuilds the pair as `(pi1 x, y)` — projection, scalar
/// arithmetic through extern word-twins, a comparison guard, and pair
/// construction, i.e. every node kind the kernel compiler lifts. Each size is
/// A/B'd with row kernels on and off, sequentially and on the parallel
/// backend at `threads` workers. The four arms must agree **bit-for-bit** on
/// both the value and the cost statistics — the kernel is an execution
/// strategy, not a semantics — and that equality is asserted here, so the
/// speedup column is a pure like-for-like timing. Returns the table plus the
/// `BENCH_kernel.json` payload.
pub fn e16_kernels(sizes: &[usize], threads: usize) -> (Table, String) {
    let mut t = Table::new(
        "E16",
        format!(
            "Row kernels: compiled vs interpreted ext (best of 3, microseconds; parallel = {threads} workers)"
        ),
        &[
            "n",
            "interp_us",
            "kernel_us",
            "speedup",
            "interp_par_us",
            "kernel_par_us",
            "speedup_par",
        ],
    );
    let reps = 3;
    let mut payload_rows = Vec::new();
    for &n in sizes {
        let input = Value::set_from((0..n as u64).map(|i| {
            let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Value::pair(Value::Atom(key % (n as u64 / 2 + 1)), Value::Nat(key % 509))
        }));
        let pair_ty = Type::prod(Type::Base, Type::Nat);
        let body = Expr::let_in(
            "y",
            Expr::extern_call(
                "nat_add",
                vec![
                    Expr::extern_call("nat_mul", vec![Expr::proj2(Expr::var("x")), Expr::nat(3)]),
                    Expr::nat(7),
                ],
            ),
            Expr::ite(
                Expr::extern_call("nat_leq", vec![Expr::var("y"), Expr::nat(384)]),
                Expr::singleton(Expr::pair(Expr::proj1(Expr::var("x")), Expr::var("y"))),
                Expr::empty(pair_ty.clone()),
            ),
        );
        let query = Expr::ext(Expr::lam("x", pair_ty, body), Expr::constant(input));

        // The A/B is meaningless if the site does not actually compile.
        let sites = ncql_core::kernel::analyze_sites(
            &query,
            &ncql_core::externs::ExternRegistry::standard(),
        );
        assert_eq!(sites.len(), 1, "E16 expects exactly one ext site");
        assert!(
            sites[0].compiled,
            "E16 body must be liftable: {}",
            sites[0].detail
        );

        let session = |kernels: bool, parallelism: Option<usize>| {
            SessionBuilder::new()
                .row_kernels(kernels)
                .parallelism(parallelism)
                .build()
        };
        let arms = [
            (false, None),
            (true, None),
            (false, Some(threads)),
            (true, Some(threads)),
        ];
        let mut outcomes = Vec::new();
        let mut micros = Vec::new();
        for (kernels, parallelism) in arms {
            let s = session(kernels, parallelism);
            let (outcome, us) = best_of(reps, || {
                s.evaluate(&query).expect("E16 query evaluates cleanly")
            });
            outcomes.push(outcome);
            micros.push(us);
        }
        // Bit-identity across all four arms: value and every cost tally.
        for arm in &outcomes[1..] {
            assert_eq!(
                arm.value, outcomes[0].value,
                "E16 values diverged at n = {n}"
            );
            assert_eq!(
                arm.stats, outcomes[0].stats,
                "E16 statistics diverged at n = {n}"
            );
        }
        let filtered = outcomes[0].value.as_set().expect("ext yields a set").len();
        assert!(
            0 < filtered && filtered < n,
            "E16 filter must bite (kept {filtered} of {n})"
        );
        let ratio = |a: u64, b: u64| a as f64 / b.max(1) as f64;
        t.push_row(vec![
            n.to_string(),
            micros[0].to_string(),
            micros[1].to_string(),
            format!("{:.2}", ratio(micros[0], micros[1])),
            micros[2].to_string(),
            micros[3].to_string(),
            format!("{:.2}", ratio(micros[2], micros[3])),
        ]);
        payload_rows.push(format!(
            "{{\"n\":{n},\"threads\":{threads},\"interp_us\":{},\"kernel_us\":{},\"speedup\":{:.3},\"interp_par_us\":{},\"kernel_par_us\":{},\"speedup_par\":{:.3}}}",
            micros[0],
            micros[1],
            ratio(micros[0], micros[1]),
            micros[2],
            micros[3],
            ratio(micros[2], micros[3]),
        ));
    }
    let payload = format!(
        "{{\"experiment\":\"E16\",\"reps\":{reps},\"rows\":[{}]}}\n",
        payload_rows.join(",")
    );
    (t, payload)
}

/// Run every experiment at small, CI-friendly sizes and return all tables.
pub fn run_all_quick() -> Vec<Table> {
    vec![
        e1_parity(&[8, 32, 128, 512]),
        e2_transitive_closure(&[4, 8, 16, 32]),
        e3_recursion_translations(&[8, 32, 64]),
        e4_bounded_dcr(&[4, 8, 12]),
        e5_dcr_logloop(&[1, 4, 9, 33, 100]),
        e6_circuit_depth(&[1, 2, 3], &[4, 8, 16]),
        e7_ptime_vs_nc(&[8, 16], 4),
        e8_bounded_vs_unbounded(&[4, 8, 14], 2048),
        e8b_arithmetic_blowup(&[4, 10, 20]),
        e9_encoding_gadgets(&[2, 4, 8]),
        e10_uniformity(&[2, 3, 4]),
        e11_iteration_nesting(&[3, 7, 16]),
        e12_wellformedness(),
        e13_optimizer(),
    ]
}

/// Verify the expected qualitative shapes on the quick run. Used by the
/// integration tests so that "the experiment reproduces the paper's shape" is
/// itself a tested property.
pub fn check_shapes(tables: &[Table]) -> Result<(), String> {
    let find = |id: &str| {
        tables
            .iter()
            .find(|t| t.id == id)
            .ok_or(format!("missing {id}"))
    };
    // E1: dcr span grows much slower than esr span.
    let e1 = find("E1")?;
    let first = &e1.rows[0];
    let last = &e1.rows[e1.rows.len() - 1];
    let ratio = |row: &Vec<String>, i: usize| row[i].parse::<f64>().unwrap_or(1.0);
    let dcr_growth = ratio(last, 1) / ratio(first, 1);
    let esr_growth = ratio(last, 3) / ratio(first, 3);
    if dcr_growth >= esr_growth {
        return Err(format!(
            "E1 shape violated: dcr span grew {dcr_growth:.1}x vs esr {esr_growth:.1}x"
        ));
    }
    // E5: rounds always equal ⌈log₂ n⌉ and results agree.
    let e5 = find("E5")?;
    for row in &e5.rows {
        if row[1] != row[2] || row[3] != "true" {
            return Err(format!("E5 shape violated in row {row:?}"));
        }
    }
    // E6: for fixed n, depth increases with k.
    let e6 = find("E6")?;
    let depth_of = |k: &str, n: &str| {
        e6.rows
            .iter()
            .find(|r| r[0] == k && r[1] == n)
            .map(|r| r[2].parse::<usize>().unwrap_or(0))
            .unwrap_or(0)
    };
    if !(depth_of("1", "16") < depth_of("2", "16") && depth_of("2", "16") < depth_of("3", "16")) {
        return Err("E6 shape violated: depth not increasing with k".to_string());
    }
    // E8: unbounded exceeds the limit at the largest size, bounded never does.
    let e8 = find("E8")?;
    let last = &e8.rows[e8.rows.len() - 1];
    if !last[1].contains("exceeded") {
        return Err("E8 shape violated: unbounded powerset did not exceed the limit".to_string());
    }
    // E10: all DCL tuples accepted.
    let e10 = find("E10")?;
    for row in &e10.rows {
        if row[3] != "true" {
            return Err(format!("E10 shape violated in row {row:?}"));
        }
    }
    // E11: counters match the formulas.
    let e11 = find("E11")?;
    for row in &e11.rows {
        let n: u64 = row[0].parse().unwrap_or(0);
        if row[1] != n.to_string() || row[2] != (n * n).to_string() {
            return Err(format!("E11 shape violated in row {row:?}"));
        }
    }
    // E13: the optimizer fires somewhere, bounds and measured work never
    // regress, and at least one query's static bound strictly improves.
    let e13 = find("E13")?;
    if e13.rows.is_empty() {
        return Err("E13 shape violated: the optimizer fired on nothing".to_string());
    }
    let mut strict = 0usize;
    for row in &e13.rows {
        let num = |i: usize| row[i].parse::<u64>().ok();
        if let (Some(br), Some(bo)) = (num(1), num(2)) {
            if bo > br {
                return Err(format!("E13 shape violated: bound regressed in {row:?}"));
            }
            if bo < br {
                strict += 1;
            }
        }
        if let (Some(wr), Some(wo)) = (num(3), num(4)) {
            if wo > wr {
                return Err(format!("E13 shape violated: work regressed in {row:?}"));
            }
        }
    }
    if strict < 3 {
        return Err(format!(
            "E13 shape violated: only {strict} strictly improved static bounds"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_experiments_run_and_have_expected_shapes() {
        let tables = run_all_quick();
        assert_eq!(tables.len(), 14);
        for t in &tables {
            assert!(!t.rows.is_empty(), "table {} is empty", t.id);
            for row in &t.rows {
                assert_eq!(row.len(), t.headers.len(), "ragged row in {}", t.id);
            }
        }
        check_shapes(&tables).expect("qualitative shapes must hold");
    }

    #[test]
    fn tables_render_to_text() {
        let t = e11_iteration_nesting(&[4]);
        let text = t.to_string();
        assert!(text.contains("E11"));
        assert!(text.contains("4"));
    }

    #[test]
    fn e12_flags_the_counterexample() {
        let t = e12_wellformedness();
        let diff_row = t
            .rows
            .iter()
            .find(|r| r[0].contains("counterexample"))
            .expect("counterexample row");
        assert_eq!(diff_row[1], "false");
        let union_row = t.rows.iter().find(|r| r[0] == "union").expect("union row");
        assert_eq!(union_row[1], "true");
        assert_eq!(union_row[3], "true");
    }

    #[test]
    fn e7_reports_matching_results() {
        let t = e7_ptime_vs_nc(&[6], 2);
        assert_eq!(t.rows.len(), 1);
    }

    #[test]
    fn e15_merge_paths_agree_at_small_sizes() {
        // The equality assertions inside e15_columnar are the real gate; this
        // just runs them at a CI-cheap size and checks the payload is JSON-ish.
        let (t, payload) = e15_columnar(&[2_000], 4);
        assert_eq!(t.rows.len(), 1);
        assert!(payload.starts_with("{\"experiment\":\"E15\""));
        assert!(payload.trim_end().ends_with("]}"));
    }

    #[test]
    fn e16_kernel_and_interpreted_arms_agree_at_small_sizes() {
        // The bit-identity assertions inside e16_kernels are the real gate;
        // this runs them at a CI-cheap size and checks the payload shape.
        let (t, payload) = e16_kernels(&[2_000], 4);
        assert_eq!(t.rows.len(), 1);
        assert!(payload.starts_with("{\"experiment\":\"E16\""));
        assert!(payload.contains("\"speedup\""));
        assert!(payload.trim_end().ends_with("]}"));
    }
}
