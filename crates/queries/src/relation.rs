//! A native Rust binary-relation type used as the *baseline implementation*
//! against which the language-level queries are cross-checked, and by the
//! workload generators.
//!
//! The paper's claims are about expressiveness and parallel complexity of the
//! *language*; the baseline here is the ordinary sequential algorithm a database
//! engine would run (e.g. semi-naive transitive closure), which is what the
//! experiment harness compares shapes against.

use ncql_object::{Atom, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A binary relation over atoms, in a canonical sorted-set representation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Relation {
    pairs: BTreeSet<(Atom, Atom)>,
}

impl Relation {
    /// The empty relation.
    pub fn new() -> Relation {
        Relation::default()
    }

    /// Build from an iterator of pairs.
    pub fn from_pairs<I: IntoIterator<Item = (Atom, Atom)>>(pairs: I) -> Relation {
        Relation {
            pairs: pairs.into_iter().collect(),
        }
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, a: Atom, b: Atom) -> bool {
        self.pairs.contains(&(a, b))
    }

    /// Insert one tuple.
    pub fn insert(&mut self, a: Atom, b: Atom) {
        self.pairs.insert((a, b));
    }

    /// Iterate over the tuples in lexicographic order.
    pub fn iter(&self) -> impl Iterator<Item = (Atom, Atom)> + '_ {
        self.pairs.iter().copied()
    }

    /// The set of atoms mentioned in the relation (the active domain).
    pub fn active_domain(&self) -> BTreeSet<Atom> {
        self.pairs.iter().flat_map(|&(a, b)| [a, b]).collect()
    }

    /// Union of two relations.
    pub fn union(&self, other: &Relation) -> Relation {
        Relation {
            pairs: self.pairs.union(&other.pairs).copied().collect(),
        }
    }

    /// Relation composition `self ∘ other`.
    pub fn compose(&self, other: &Relation) -> Relation {
        // Index `other` by first component for a join.
        let mut by_first: BTreeMap<Atom, Vec<Atom>> = BTreeMap::new();
        for &(b, c) in &other.pairs {
            by_first.entry(b).or_default().push(c);
        }
        let mut out = BTreeSet::new();
        for &(a, b) in &self.pairs {
            if let Some(cs) = by_first.get(&b) {
                for &c in cs {
                    out.insert((a, c));
                }
            }
        }
        Relation { pairs: out }
    }

    /// Transitive closure by repeated squaring (the baseline NC-style algorithm:
    /// ⌈log n⌉ rounds of `r ← r ∪ r∘r`).
    pub fn transitive_closure(&self) -> Relation {
        let mut r = self.clone();
        loop {
            let next = r.union(&r.compose(&r));
            if next == r {
                return r;
            }
            r = next;
        }
    }

    /// Transitive closure by the sequential semi-naive algorithm (the baseline
    /// PTIME-style algorithm), kept separate so benches can time both baselines.
    pub fn transitive_closure_seminaive(&self) -> Relation {
        let mut total = self.clone();
        let mut delta = self.clone();
        while !delta.is_empty() {
            let new = delta.compose(self);
            let fresh: BTreeSet<(Atom, Atom)> =
                new.pairs.difference(&total.pairs).copied().collect();
            delta = Relation {
                pairs: fresh.clone(),
            };
            total.pairs.extend(fresh);
        }
        total
    }

    /// The set of nodes reachable from `start` (including `start` itself).
    pub fn reachable_from(&self, start: Atom) -> BTreeSet<Atom> {
        let mut seen: BTreeSet<Atom> = BTreeSet::new();
        let mut stack = vec![start];
        let mut by_first: BTreeMap<Atom, Vec<Atom>> = BTreeMap::new();
        for &(a, b) in &self.pairs {
            by_first.entry(a).or_default().push(b);
        }
        while let Some(x) = stack.pop() {
            if seen.insert(x) {
                if let Some(next) = by_first.get(&x) {
                    stack.extend(next.iter().copied());
                }
            }
        }
        seen
    }

    /// Convert into a language value of type `{D × D}`.
    pub fn to_value(&self) -> Value {
        Value::relation_from_pairs(self.pairs.iter().copied())
    }

    /// Convert from a language value of type `{D × D}`. Returns `None` if the
    /// value is not a set of pairs of atoms.
    pub fn from_value(v: &Value) -> Option<Relation> {
        let set = v.as_set()?;
        let mut pairs = BTreeSet::new();
        for e in set.iter() {
            let (a, b) = e.as_pair()?;
            pairs.insert((a.as_atom()?, b.as_atom()?));
        }
        Some(Relation { pairs })
    }
}

impl FromIterator<(Atom, Atom)> for Relation {
    fn from_iter<I: IntoIterator<Item = (Atom, Atom)>>(iter: I) -> Relation {
        Relation::from_pairs(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compose_and_union() {
        let r = Relation::from_pairs(vec![(1, 2), (2, 3)]);
        let s = Relation::from_pairs(vec![(2, 9), (3, 10)]);
        assert_eq!(r.compose(&s), Relation::from_pairs(vec![(1, 9), (2, 10)]));
        assert_eq!(r.union(&s).len(), 4);
    }

    #[test]
    fn tc_on_a_path() {
        let r = Relation::from_pairs((0..5).map(|i| (i, i + 1)));
        let tc = r.transitive_closure();
        assert_eq!(tc.len(), 5 + 4 + 3 + 2 + 1);
        assert!(tc.contains(0, 5));
        assert!(!tc.contains(5, 0));
        assert_eq!(tc, r.transitive_closure_seminaive());
    }

    #[test]
    fn tc_on_a_cycle_is_complete() {
        let n = 6u64;
        let r = Relation::from_pairs((0..n).map(|i| (i, (i + 1) % n)));
        let tc = r.transitive_closure();
        assert_eq!(tc.len(), (n * n) as usize);
        assert_eq!(tc, r.transitive_closure_seminaive());
    }

    #[test]
    fn reachability() {
        let r = Relation::from_pairs(vec![(1, 2), (2, 3), (4, 5)]);
        let reach = r.reachable_from(1);
        assert_eq!(reach.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn value_round_trip() {
        let r = Relation::from_pairs(vec![(3, 1), (1, 2)]);
        let v = r.to_value();
        assert_eq!(Relation::from_value(&v), Some(r));
        assert_eq!(Relation::from_value(&Value::Bool(true)), None);
    }

    #[test]
    fn active_domain_collects_both_columns() {
        let r = Relation::from_pairs(vec![(1, 5), (2, 5)]);
        let dom: Vec<_> = r.active_domain().into_iter().collect();
        assert_eq!(dom, vec![1, 2, 5]);
    }
}
