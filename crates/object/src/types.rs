//! Complex object types (§2 of the paper) plus the function types of the ambient
//! language NRA (§3) and the external `Nat` base type used by the arithmetic
//! extension experiments (Proposition 6.3).
//!
//! The grammar of complex object types in the paper is
//!
//! ```text
//! t ::= D | B | unit | t × t | {t}
//! ```
//!
//! *Flat types* are products of base types and of sets of products of base types:
//! they are the types of ordinary relational databases. *PS-types* ("product of
//! sets" types) are either set types or products of PS-types; they are the result
//! types allowed for bounded divide-and-conquer recursion (`bdcr`).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A complex object type, extended with function types (for NRA expressions) and
/// the external natural-number base type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Type {
    /// The ordered base type `D` of atoms.
    Base,
    /// The type `B` of booleans.
    Bool,
    /// The one-element type `unit` (containing only the empty tuple `()`).
    Unit,
    /// External natural numbers; not part of the paper's core grammar, used only
    /// when the external-function extension Σ of Proposition 6.3 is enabled.
    Nat,
    /// Binary products `s × t`.
    Prod(Box<Type>, Box<Type>),
    /// Finite sets `{t}`.
    Set(Box<Type>),
    /// Function types `s → t` of the ambient language NRA (§3). Function types are
    /// *not* complex object types: they never appear inside sets or products of
    /// database values, only as the types of query expressions.
    Fun(Box<Type>, Box<Type>),
}

impl Type {
    /// `s × t`.
    pub fn prod(s: Type, t: Type) -> Type {
        Type::Prod(Box::new(s), Box::new(t))
    }

    /// `{t}`.
    pub fn set(t: Type) -> Type {
        Type::Set(Box::new(t))
    }

    /// `s → t`.
    pub fn fun(s: Type, t: Type) -> Type {
        Type::Fun(Box::new(s), Box::new(t))
    }

    /// The type of binary relations over the base type, `{D × D}`.
    pub fn binary_relation() -> Type {
        Type::set(Type::prod(Type::Base, Type::Base))
    }

    /// The type of unary relations over the base type, `{D}`.
    pub fn unary_relation() -> Type {
        Type::set(Type::Base)
    }

    /// Is this a *complex object type*, i.e. built only from `D`, `B`, `unit`,
    /// `Nat`, products and sets (no function types)?
    pub fn is_object_type(&self) -> bool {
        match self {
            Type::Base | Type::Bool | Type::Unit | Type::Nat => true,
            Type::Prod(a, b) => a.is_object_type() && b.is_object_type(),
            Type::Set(t) => t.is_object_type(),
            Type::Fun(_, _) => false,
        }
    }

    /// Is this type an *atomic* (scalar) type: `D`, `B`, `unit` or `Nat`?
    pub fn is_atomic(&self) -> bool {
        matches!(self, Type::Base | Type::Bool | Type::Unit | Type::Nat)
    }

    /// The *set height* of a type: the maximum nesting depth of set brackets.
    /// Flat relational databases have set height ≤ 1.
    pub fn set_height(&self) -> usize {
        match self {
            Type::Base | Type::Bool | Type::Unit | Type::Nat => 0,
            Type::Prod(a, b) => a.set_height().max(b.set_height()),
            Type::Set(t) => 1 + t.set_height(),
            Type::Fun(a, b) => a.set_height().max(b.set_height()),
        }
    }

    /// Is this a product of atomic types (the element types allowed inside flat
    /// relations)?
    pub fn is_atomic_product(&self) -> bool {
        match self {
            Type::Base | Type::Bool | Type::Unit | Type::Nat => true,
            Type::Prod(a, b) => a.is_atomic_product() && b.is_atomic_product(),
            _ => false,
        }
    }

    /// Is this a *flat type* in the sense of §2: a product of base types and of
    /// set types `{s}` where `s` is itself a product of base types? These are the
    /// input/output/intermediate types allowed in the restricted language NRA¹.
    pub fn is_flat(&self) -> bool {
        match self {
            Type::Base | Type::Bool | Type::Unit | Type::Nat => true,
            Type::Set(s) => s.is_atomic_product(),
            Type::Prod(a, b) => a.is_flat() && b.is_flat(),
            Type::Fun(_, _) => false,
        }
    }

    /// Is this a *PS-type* ("product of sets" type): a set type, or a product of
    /// PS-types? Bounded dcr (`bdcr`) requires its result type to be a PS-type
    /// so that the bounding intersection is meaningful component-wise.
    pub fn is_ps_type(&self) -> bool {
        match self {
            Type::Set(_) => true,
            Type::Prod(a, b) => a.is_ps_type() && b.is_ps_type(),
            _ => false,
        }
    }

    /// If this is a set type `{t}`, return the element type `t`.
    pub fn elem_type(&self) -> Option<&Type> {
        match self {
            Type::Set(t) => Some(t),
            _ => None,
        }
    }

    /// If this is a product type `s × t`, return `(s, t)`.
    pub fn prod_components(&self) -> Option<(&Type, &Type)> {
        match self {
            Type::Prod(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// If this is a function type `s → t`, return `(s, t)`.
    pub fn fun_components(&self) -> Option<(&Type, &Type)> {
        match self {
            Type::Fun(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// The maximum nesting depth of the parenthesis/brace structure of encodings
    /// of values of this type. This is the constant `d_t` used in Lemma 7.4: for
    /// any fixed type the encodings have bounded bracket-nesting depth, which is
    /// why bracket matching is possible in constant circuit depth.
    pub fn bracket_depth(&self) -> usize {
        match self {
            Type::Base | Type::Bool | Type::Nat => 0,
            // `()` and `(X1, X2)` and `{X1, ..., Xm}` each contribute one level.
            Type::Unit => 1,
            Type::Prod(a, b) => 1 + a.bracket_depth().max(b.bracket_depth()),
            Type::Set(t) => 1 + t.bracket_depth(),
            Type::Fun(a, b) => a.bracket_depth().max(b.bracket_depth()),
        }
    }

    /// Number of type constructors (a crude size measure, used in tests and in
    /// cost reporting).
    pub fn size(&self) -> usize {
        match self {
            Type::Base | Type::Bool | Type::Unit | Type::Nat => 1,
            Type::Prod(a, b) | Type::Fun(a, b) => 1 + a.size() + b.size(),
            Type::Set(t) => 1 + t.size(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Base => write!(f, "atom"),
            Type::Bool => write!(f, "bool"),
            Type::Unit => write!(f, "unit"),
            Type::Nat => write!(f, "nat"),
            Type::Prod(a, b) => write!(f, "({a} * {b})"),
            Type::Set(t) => write!(f, "{{{t}}}"),
            Type::Fun(a, b) => write!(f, "({a} -> {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_relation_is_flat_and_ps() {
        let r = Type::binary_relation();
        assert!(r.is_flat());
        assert!(r.is_ps_type());
        assert!(r.is_object_type());
        assert_eq!(r.set_height(), 1);
    }

    #[test]
    fn nested_set_is_not_flat() {
        let t = Type::set(Type::set(Type::Base));
        assert!(!t.is_flat());
        assert!(t.is_ps_type());
        assert_eq!(t.set_height(), 2);
    }

    #[test]
    fn products_of_sets_are_ps_types() {
        let t = Type::prod(
            Type::set(Type::Base),
            Type::set(Type::prod(Type::Base, Type::Bool)),
        );
        assert!(t.is_ps_type());
        // A product containing a bare base type is not a PS-type.
        let t2 = Type::prod(Type::set(Type::Base), Type::Base);
        assert!(!t2.is_ps_type());
    }

    #[test]
    fn booleans_and_unit_are_flat_but_not_ps() {
        assert!(Type::Bool.is_flat());
        assert!(!Type::Bool.is_ps_type());
        assert!(Type::Unit.is_flat());
        assert!(!Type::Unit.is_ps_type());
    }

    #[test]
    fn function_types_are_not_object_types() {
        let t = Type::fun(Type::Base, Type::set(Type::Base));
        assert!(!t.is_object_type());
        assert!(!t.is_flat());
    }

    #[test]
    fn set_height_of_products_is_max() {
        let t = Type::prod(Type::set(Type::set(Type::Base)), Type::set(Type::Base));
        assert_eq!(t.set_height(), 2);
    }

    #[test]
    fn bracket_depth_is_bounded_per_type() {
        assert_eq!(Type::Base.bracket_depth(), 0);
        assert_eq!(Type::binary_relation().bracket_depth(), 2);
        let nested = Type::set(Type::set(Type::prod(Type::Base, Type::Base)));
        assert_eq!(nested.bracket_depth(), 3);
    }

    #[test]
    fn display_round_trips_visually() {
        let t = Type::set(Type::prod(Type::Base, Type::set(Type::Bool)));
        assert_eq!(t.to_string(), "{(atom * {bool})}");
    }

    #[test]
    fn size_counts_constructors() {
        let t = Type::set(Type::prod(Type::Base, Type::Bool));
        assert_eq!(t.size(), 4);
    }
}
