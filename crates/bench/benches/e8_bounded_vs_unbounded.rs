//! E8 — powerset blow-up vs bounded recursion, and the Prop 6.3 arithmetic witness.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::{eval_closed, EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_object::Value;
use ncql_queries::{aggregates, powerset};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_bounded_vs_unbounded");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [6u64, 10] {
        let input = Expr::constant(Value::atom_set(0..n));
        group.bench_with_input(BenchmarkId::new("unbounded_powerset", n), &n, |b, _| {
            b.iter(|| {
                let mut ev = Evaluator::new(EvalConfig::default());
                ev.eval_closed(&powerset::powerset_dcr(input.clone()))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("bounded_small_subsets", n), &n, |b, _| {
            b.iter(|| eval_closed(&powerset::bounded_small_subsets(input.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("double_exponential", n), &n, |b, _| {
            b.iter(|| eval_closed(&aggregates::double_exponential(input.clone())).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
