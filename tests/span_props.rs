//! Property tests for the span invariants of the surface front end.
//!
//! For randomly generated surface programs — and for randomly corrupted
//! ones — these pin the contract the diagnostics renderer relies on:
//!
//! * every node of a successfully parsed AST carries a span with
//!   `start <= end`, lying entirely within the source text, and slicing the
//!   source at that span reparses to the same subterm shape where the
//!   grammar permits it (checked structurally for the root);
//! * every *error* a `Session` reports for a corrupted text answers
//!   `Error::span()` with a span inside `[0, len]` and `start <= end` — the
//!   renderer can always place a caret without clipping.

use ncql::core::Span;
use ncql::{Session, SessionBuilder};
use proptest::prelude::*;

/// Deterministically build a random surface expression from a "program tape"
/// of small opcodes. Every shape the grammar offers shows up: literals,
/// unions, singletons, pairs/projections, conditionals, lambdas + ext,
/// let-bindings, recursors, iterators and extern calls. Always well-lexed;
/// not always well-typed — both Ok and Err paths of `prepare` are exercised.
fn build_text(tape: &[u8], depth: usize) -> String {
    let op = tape.first().copied().unwrap_or(0);
    let rest = if tape.is_empty() { &[] } else { &tape[1..] };
    let atom = |n: u8| format!("{{@{}}}", n % 10);
    if depth == 0 || rest.is_empty() {
        return match op % 4 {
            0 => atom(op),
            1 => format!("@{}", op % 10),
            2 => "true".to_string(),
            _ => format!("{}", op % 100),
        };
    }
    let sub = |tape: &[u8]| build_text(tape, depth - 1);
    let half = rest.len() / 2;
    let (a, b) = rest.split_at(half.max(1).min(rest.len()));
    match op % 10 {
        // Union operands are primaries in the grammar: parenthesize, since
        // the sub-texts may be let/if/λ forms.
        0 => format!("({}) union ({})", sub(a), sub(b)),
        1 => format!("{{{}}}", sub(a)),
        2 => format!("({}, {})", sub(a), sub(b)),
        3 => format!("pi1 ({})", sub(a)),
        4 => format!("if isempty(empty[atom]) then {} else {}", sub(a), sub(b)),
        5 => format!("let v{} = {} in {}", op, sub(a), sub(b)),
        6 => format!("ext(\\x: atom. {{x}}, {})", sub(a)),
        7 => format!(
            "dcr(empty[atom], \\y: atom. {{y}}, \\p: ({{atom}} * {{atom}}). pi1 p union pi2 p, {})",
            sub(a)
        ),
        8 => format!("logloop(\\r: {{atom}}. r, {}, empty[atom])", sub(a)),
        _ => format!("nat_add({}, {})", sub(a), sub(b)),
    }
}

fn session() -> Session {
    SessionBuilder::new().build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn parsed_nodes_are_spanned_within_the_source(
        raw in proptest::collection::vec(0u8..255, 1..24),
        depth in 1usize..5,
    ) {
        let text = build_text(&raw, depth);
        let parsed = ncql::surface::parse(&text)
            .unwrap_or_else(|e| panic!("generated text failed to parse: {e}\n{text}"));
        let mut checked = 0usize;
        let mut bad: Option<String> = None;
        parsed.visit(&mut |node| {
            checked += 1;
            match node.span {
                None => bad = bad.take().or(Some(format!("span-less node in: {text}"))),
                Some(Span { start, end }) => {
                    if start > end || end > text.len() {
                        bad = bad.take().or(Some(format!("span {start}..{end} out of bounds in: {text}")));
                    } else if start == end {
                        bad = bad.take().or(Some(format!("empty span on a parsed node in: {text}")));
                    }
                }
            }
        });
        prop_assert!(bad.is_none(), "{}", bad.unwrap());
        prop_assert!(checked >= 1);
        // The root's span covers every child's span.
        let root = parsed.span.unwrap();
        parsed.visit(&mut |node| {
            let s = node.span.unwrap();
            assert!(root.start <= s.start && s.end <= root.end,
                "child span {s} escapes root {root} in: {text}");
        });
    }

    #[test]
    fn reported_error_spans_lie_within_the_source(
        raw in proptest::collection::vec(0u8..255, 1..20),
        depth in 1usize..4,
        cut in proptest::prelude::any::<u64>(),
        junk in 0usize..3,
    ) {
        // Corrupt a well-formed text: truncate at a random byte, or splice in
        // a character the grammar rejects, or both.
        let mut text = build_text(&raw, depth);
        if junk != 1 {
            let at = (cut as usize) % (text.len() + 1);
            text.truncate(at);
        }
        if junk != 0 {
            let at = (cut as usize / 7) % (text.len() + 1);
            text.insert(at, if junk == 1 { '$' } else { '?' });
        }
        // Whatever the session reports — lex, parse, or type error — any span
        // must be well-formed and inside the (corrupted) source.
        match session().prepare(&text) {
            Ok(_) => {}
            Err(err) => {
                if let Some(Span { start, end }) = err.span() {
                    prop_assert!(start <= end, "inverted span {start}..{end} for: {text}");
                    prop_assert!(end <= text.len(), "span {start}..{end} beyond len {} for: {text}", text.len());
                }
                // And rendering never panics or clips oddly.
                let rendered = err.render(&text);
                prop_assert!(rendered.starts_with("error: "), "{rendered}");
            }
        }
    }

    #[test]
    fn evaluation_error_spans_lie_within_the_source(
        raw in proptest::collection::vec(0u8..255, 1..20),
        depth in 1usize..4,
        max_work in 1u64..60,
    ) {
        // Starve the evaluator so runtime errors fire mid-expression; the
        // reported span must still be a well-formed sub-range of the text.
        let text = build_text(&raw, depth);
        let session = SessionBuilder::new().max_work(max_work).build();
        if let Err(err) = session.run(&text) {
            if let Some(Span { start, end }) = err.span() {
                prop_assert!(start <= end);
                prop_assert!(end <= text.len());
            }
            let _ = err.render(&text);
        }
    }
}
