//! Compiled row kernels: running `ext` bodies directly over columnar rows.
//!
//! PR 9 taught [`VSet`] to store large flat-shaped sets as fixed-width `u64`
//! rows, but the evaluator still boxed every element back into a
//! [`Value`](ncql_object::Value)
//! the moment an `ext` closure touched the set — the columnar representation
//! accelerated the set algebra, not the comprehension hot loop where the
//! paper's NC work bounds are actually spent. This module closes that gap
//! with the classic "compile the comprehension instead of interpreting it"
//! move: when an `ext` body is built from projections, pair construction,
//! scalar comparisons/arithmetic, `let`/`if`, and constants over a
//! flat-shaped input, [`compile`] lowers it to a [`RowKernel`] — a small
//! register program over a scratch buffer of machine words, executed once
//! per input row, emitting canonical output rows without constructing a
//! single `Value`.
//!
//! Three invariants make the kernel path *indistinguishable* from the
//! interpreter (the differential and property suites pin all three):
//!
//! 1. **Values** — the emitted rows, canonicalized through
//!    [`VSet::from_raw_rows`], produce exactly the set the interpreted
//!    element map produces (canonical representations are unique).
//! 2. **Cost** — [`RowKernel::run_row`] returns the exact `(work, span)` the
//!    instrumented evaluator charges for applying the closure to that
//!    element: one unit per AST node visited (conditionals charge only the
//!    taken branch), the min-size charge of `=`/`<=`, the extra call unit of
//!    an external, plus the apply charge — bit-identical `CostStats`.
//! 3. **Fallback** — anything unliftable (set-typed subterms, captured free
//!    variables, non-flat constants, externals without a word-level twin)
//!    rejects at compile time with a reason, and the `ext` site runs the
//!    ordinary interpreter. The decision depends only on the body, the input
//!    shape, and the registry, so prepare-time analysis ([`analyze_sites`])
//!    predicts it exactly.
//!
//! Compilation happens at most once per closure instance (cached on the
//! closure like its region-gate estimate) and is itself cheap — one pass
//! over the body.

use crate::expr::{Expr, ExprKind};
use crate::externs::{ExternRegistry, ScalarExternFn};
use crate::span::Span;
use ncql_object::{FlatShape, VSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Maximum external-call arity the kernel executor supports (the argument
/// words live in a stack buffer; the standard registry's maximum is 2).
const MAX_CALL_ARGS: usize = 4;

/// A scalar (value-level) register operation. Every operation that *creates*
/// words owns a fixed destination range in the scratch buffer, assigned at
/// compile time; operations that merely reference existing words (variables,
/// projections, conditionals) return a view of another range, so a row
/// executes with zero allocation and no copies beyond pair assembly.
#[derive(Debug)]
enum Scalar {
    /// The lambda parameter: the input row at scratch offset 0.
    Input { width: usize },
    /// A `let`-bound value: the range recorded in the slot at runtime.
    Slot(usize),
    /// A constant (literal, boolean, or `()`), preloaded into scratch once.
    Lit { at: usize, width: usize },
    /// Pair assembly: children copied side by side into the destination.
    Pair {
        a: Box<Scalar>,
        b: Box<Scalar>,
        at: usize,
        width: usize,
    },
    /// Projection: a sub-range of the child's result, no copy.
    Proj {
        of: Box<Scalar>,
        off: usize,
        width: usize,
    },
    /// Conditional: returns the taken branch's range.
    If {
        c: Box<Scalar>,
        t: Box<Scalar>,
        e: Box<Scalar>,
    },
    /// Scalar `let`: records the bound range in a slot, then runs the body.
    Let {
        slot: usize,
        bound: Box<Scalar>,
        body: Box<Scalar>,
    },
    /// `=` / `<=` on same-shape operands: word-lexicographic comparison,
    /// which equals the lifted value order. `size` is the static value size
    /// of the shape (the interpreter's min-size comparison charge).
    Cmp {
        leq: bool,
        a: Box<Scalar>,
        b: Box<Scalar>,
        size: u64,
        at: usize,
    },
    /// An external call through its word-level twin.
    Call {
        f: ScalarExternFn,
        args: Vec<Scalar>,
        at: usize,
    },
}

/// A set-level operation: what an `ext` body may do with the scalar layer.
/// Each input row contributes zero rows or one row to the output, which is
/// exactly the singleton/empty comprehension shape the optimizer's
/// ext-fusion and filter-pushdown rewrites produce.
#[derive(Debug)]
enum SetOp {
    /// `{}` — contributes nothing.
    Empty,
    /// `{scalar}` — emits one output row.
    Single(Scalar),
    /// Conditional between two set-level branches.
    If {
        c: Scalar,
        t: Box<SetOp>,
        e: Box<SetOp>,
    },
    /// Scalar `let` over a set-level body.
    Let {
        slot: usize,
        bound: Scalar,
        body: Box<SetOp>,
    },
}

/// A compiled `ext` body: a register program over one input row.
#[derive(Debug)]
pub struct RowKernel {
    input_shape: FlatShape,
    input_width: usize,
    output_shape: FlatShape,
    output_width: usize,
    /// Total scratch words: input row, preloaded constants, destinations.
    scratch_len: usize,
    /// Number of `let` slots (ranges resolved at runtime).
    slot_count: usize,
    /// Constant words preloaded once per scratch buffer: `(offset, word)`.
    consts: Vec<(usize, u64)>,
    body: SetOp,
}

/// Reusable per-thread execution state for one kernel: the scratch buffer
/// (with constants preloaded) and the `let` slot table.
#[derive(Debug)]
pub struct KernelState {
    scratch: Vec<u64>,
    slots: Vec<(usize, usize)>,
}

impl RowKernel {
    /// The flat shape of the input rows this kernel was compiled for.
    pub fn input_shape(&self) -> &FlatShape {
        &self.input_shape
    }

    /// The flat shape of the rows the kernel emits.
    pub fn output_shape(&self) -> &FlatShape {
        &self.output_shape
    }

    /// Words per output row.
    pub fn output_width(&self) -> usize {
        self.output_width
    }

    /// Fresh execution state (one per worker thread).
    pub fn new_state(&self) -> KernelState {
        let mut scratch = vec![0u64; self.scratch_len];
        for &(at, w) in &self.consts {
            scratch[at] = w;
        }
        KernelState {
            scratch,
            slots: vec![(0, 0); self.slot_count],
        }
    }

    /// Execute the kernel over one input row, appending zero or one output
    /// rows to `out`. Returns the exact `(work, span)` the interpreter
    /// charges for applying the closure to this element (including the apply
    /// charge itself). Total and infallible: every liftable operation is.
    pub fn run_row(&self, row: &[u64], st: &mut KernelState, out: &mut Vec<u64>) -> (u64, u64) {
        debug_assert_eq!(row.len(), self.input_width);
        st.scratch[..self.input_width].copy_from_slice(row);
        let mut work = 1u64; // the apply charge
        let span = self.body.exec(st, &mut work, out);
        (work, span + 1) // apply contributes one span level
    }

    /// Canonicalize a batch of emitted rows into a set (the kernel-side twin
    /// of collecting interpreted per-element results).
    pub fn collect_rows(&self, out: Vec<u64>) -> VSet {
        VSet::from_raw_rows(self.output_shape.clone(), out)
    }
}

impl Scalar {
    /// Evaluate to a `(offset, width)` range in scratch, accumulating the
    /// interpreter's work charges and returning the node's span.
    fn exec(&self, st: &mut KernelState, work: &mut u64) -> (usize, usize, u64) {
        match self {
            Scalar::Input { width } => {
                *work += 1;
                (0, *width, 0)
            }
            Scalar::Slot(i) => {
                *work += 1;
                let (at, w) = st.slots[*i];
                (at, w, 0)
            }
            Scalar::Lit { at, width } => {
                *work += 1;
                (*at, *width, 0)
            }
            Scalar::Pair { a, b, at, width } => {
                let (ao, aw, sa) = a.exec(st, work);
                st.scratch.copy_within(ao..ao + aw, *at);
                let (bo, bw, sb) = b.exec(st, work);
                st.scratch.copy_within(bo..bo + bw, *at + aw);
                *work += 1;
                (*at, *width, sa.max(sb) + 1)
            }
            Scalar::Proj { of, off, width } => {
                let (o, _, s) = of.exec(st, work);
                *work += 1;
                (o + off, *width, s + 1)
            }
            Scalar::If { c, t, e } => {
                let (co, _, sc) = c.exec(st, work);
                let taken = if st.scratch[co] != 0 { t } else { e };
                let (o, w, sb) = taken.exec(st, work);
                *work += 1;
                (o, w, sc + sb + 1)
            }
            Scalar::Let { slot, bound, body } => {
                let (bo, bw, sb) = bound.exec(st, work);
                st.slots[*slot] = (bo, bw);
                let (o, w, sr) = body.exec(st, work);
                *work += 1;
                (o, w, sb + sr)
            }
            Scalar::Cmp {
                leq,
                a,
                b,
                size,
                at,
            } => {
                let (ao, w, sa) = a.exec(st, work);
                let (bo, _, sb) = b.exec(st, work);
                let r = {
                    let av = &st.scratch[ao..ao + w];
                    let bv = &st.scratch[bo..bo + w];
                    if *leq {
                        av <= bv
                    } else {
                        av == bv
                    }
                };
                st.scratch[*at] = u64::from(r);
                *work += 1 + size;
                (*at, 1, sa.max(sb) + 1)
            }
            Scalar::Call { f, args, at } => {
                let mut vals = [0u64; MAX_CALL_ARGS];
                let mut max_s = 0u64;
                for (i, a) in args.iter().enumerate() {
                    let (o, _, s) = a.exec(st, work);
                    vals[i] = st.scratch[o];
                    max_s = max_s.max(s);
                }
                // One unit for the extern node, one for the call itself —
                // matching the interpreter's two charges around the body.
                *work += 2;
                st.scratch[*at] = f(&vals[..args.len()]);
                (*at, 1, max_s + 1)
            }
        }
    }
}

impl SetOp {
    /// Execute over the current row: append the emitted row (if any) to
    /// `out`, accumulate work, return the span.
    fn exec(&self, st: &mut KernelState, work: &mut u64, out: &mut Vec<u64>) -> u64 {
        match self {
            SetOp::Empty => {
                *work += 1;
                0
            }
            SetOp::Single(s) => {
                let (o, w, sp) = s.exec(st, work);
                out.extend_from_slice(&st.scratch[o..o + w]);
                *work += 1;
                sp + 1
            }
            SetOp::If { c, t, e } => {
                let (co, _, sc) = c.exec(st, work);
                let taken = if st.scratch[co] != 0 { t } else { e };
                let sb = taken.exec(st, work, out);
                *work += 1;
                sc + sb + 1
            }
            SetOp::Let { slot, bound, body } => {
                let (bo, bw, sb) = bound.exec(st, work);
                st.slots[*slot] = (bo, bw);
                let sr = body.exec(st, work, out);
                *work += 1;
                sb + sr
            }
        }
    }
}

/// Static value size of a flat shape (`Value::size` is shape-determined for
/// flat values): the `=`/`<=` comparison charge.
fn shape_size(shape: &FlatShape) -> u64 {
    match shape {
        FlatShape::Unit | FlatShape::Bool | FlatShape::Atom | FlatShape::Nat => 1,
        FlatShape::Pair(a, b) => 1 + shape_size(a) + shape_size(b),
    }
}

/// Human-readable shape description for diagnostics and site reports.
fn shape_desc(shape: &FlatShape) -> String {
    match shape {
        FlatShape::Unit => "unit".to_string(),
        FlatShape::Bool => "bool".to_string(),
        FlatShape::Atom => "atom".to_string(),
        FlatShape::Nat => "nat".to_string(),
        FlatShape::Pair(a, b) => format!("({} * {})", shape_desc(a), shape_desc(b)),
    }
}

/// What the compiler knows about a name in scope.
enum Binding {
    /// The lambda parameter (the input row).
    Param,
    /// A `let`-bound scalar: its slot and compile-time shape.
    Slot(usize, FlatShape),
}

struct Compiler<'a> {
    registry: &'a ExternRegistry,
    input_shape: &'a FlatShape,
    input_width: usize,
    scope: Vec<(String, Binding)>,
    consts: Vec<(usize, u64)>,
    next: usize,
    slot_count: usize,
}

impl<'a> Compiler<'a> {
    fn alloc(&mut self, width: usize) -> usize {
        let at = self.next;
        self.next += width;
        at
    }

    fn resolve(&self, name: &str) -> Option<&Binding> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b)
    }

    fn lit(&mut self, words: &[u64], shape: FlatShape) -> (Scalar, FlatShape) {
        let at = self.alloc(words.len());
        for (i, &w) in words.iter().enumerate() {
            self.consts.push((at + i, w));
        }
        (
            Scalar::Lit {
                at,
                width: words.len(),
            },
            shape,
        )
    }

    fn scalar(&mut self, expr: &Expr) -> Result<(Scalar, FlatShape), String> {
        match &expr.kind {
            ExprKind::Var(x) => match self.resolve(x) {
                Some(Binding::Param) => Ok((
                    Scalar::Input {
                        width: self.input_width,
                    },
                    self.input_shape.clone(),
                )),
                Some(Binding::Slot(slot, shape)) => Ok((Scalar::Slot(*slot), shape.clone())),
                None => Err(format!("captures the free variable `{x}`")),
            },
            ExprKind::Unit => Ok(self.lit(&[], FlatShape::Unit)),
            ExprKind::Bool(b) => Ok(self.lit(&[u64::from(*b)], FlatShape::Bool)),
            ExprKind::Const(v) => {
                let shape = FlatShape::of_value(v)
                    .ok_or_else(|| format!("non-flat constant {v} in the body"))?;
                let mut words = Vec::with_capacity(shape.width());
                if !shape.encode_into(v, &mut words) {
                    return Err(format!("constant {v} does not encode under its shape"));
                }
                Ok(self.lit(&words, shape))
            }
            ExprKind::Pair(a, b) => {
                let (ka, sa) = self.scalar(a)?;
                let (kb, sb) = self.scalar(b)?;
                let (wa, wb) = (sa.width(), sb.width());
                let at = self.alloc(wa + wb);
                Ok((
                    Scalar::Pair {
                        a: Box::new(ka),
                        b: Box::new(kb),
                        at,
                        width: wa + wb,
                    },
                    FlatShape::Pair(Box::new(sa), Box::new(sb)),
                ))
            }
            ExprKind::Proj1(e) | ExprKind::Proj2(e) => {
                let first = matches!(expr.kind, ExprKind::Proj1(_));
                let (k, s) = self.scalar(e)?;
                let FlatShape::Pair(sa, sb) = s else {
                    return Err("projection from a non-pair shape".to_string());
                };
                let (off, shape) = if first { (0, *sa) } else { (sa.width(), *sb) };
                Ok((
                    Scalar::Proj {
                        of: Box::new(k),
                        off,
                        width: shape.width(),
                    },
                    shape,
                ))
            }
            ExprKind::If(c, t, e) => {
                let (kc, sc) = self.scalar(c)?;
                if sc != FlatShape::Bool {
                    return Err("if condition is not a boolean scalar".to_string());
                }
                let (kt, st) = self.scalar(t)?;
                let (ke, se) = self.scalar(e)?;
                if st != se {
                    return Err("the two if branches have different shapes".to_string());
                }
                Ok((
                    Scalar::If {
                        c: Box::new(kc),
                        t: Box::new(kt),
                        e: Box::new(ke),
                    },
                    st,
                ))
            }
            ExprKind::Let(x, bound, body) => {
                let (kb, sb) = self.scalar(bound)?;
                let slot = self.slot_count;
                self.slot_count += 1;
                self.scope.push((x.clone(), Binding::Slot(slot, sb)));
                let result = self.scalar(body);
                self.scope.pop();
                let (kr, sr) = result?;
                Ok((
                    Scalar::Let {
                        slot,
                        bound: Box::new(kb),
                        body: Box::new(kr),
                    },
                    sr,
                ))
            }
            ExprKind::Eq(a, b) | ExprKind::Leq(a, b) => {
                let leq = matches!(expr.kind, ExprKind::Leq(_, _));
                let (ka, sa) = self.scalar(a)?;
                let (kb, sb) = self.scalar(b)?;
                if sa != sb {
                    return Err("comparison operands have different shapes".to_string());
                }
                let at = self.alloc(1);
                Ok((
                    Scalar::Cmp {
                        leq,
                        a: Box::new(ka),
                        b: Box::new(kb),
                        size: shape_size(&sa),
                        at,
                    },
                    FlatShape::Bool,
                ))
            }
            ExprKind::Extern(name, args) => {
                let f = self
                    .registry
                    .get(name)
                    .ok_or_else(|| format!("unknown external `{name}`"))?;
                let scalar = f
                    .scalar_hint()
                    .ok_or_else(|| format!("external `{name}` has no word-level twin"))?;
                if args.len() != f.params.len() || args.len() > MAX_CALL_ARGS {
                    return Err(format!("external `{name}` arity not liftable"));
                }
                let result_shape = FlatShape::of_type(&f.result)
                    .filter(|s| s.width() == 1)
                    .ok_or_else(|| format!("external `{name}` result is not one word"))?;
                let mut compiled = Vec::with_capacity(args.len());
                for (arg, param_ty) in args.iter().zip(&f.params) {
                    let want = FlatShape::of_type(param_ty)
                        .filter(|s| s.width() == 1)
                        .ok_or_else(|| format!("external `{name}` parameter is not one word"))?;
                    let (k, s) = self.scalar(arg)?;
                    if s != want {
                        return Err(format!("external `{name}` argument shape mismatch"));
                    }
                    compiled.push(k);
                }
                let at = self.alloc(1);
                Ok((
                    Scalar::Call {
                        f: scalar,
                        args: compiled,
                        at,
                    },
                    result_shape,
                ))
            }
            other => Err(format!(
                "`{}` is not liftable as a scalar",
                kind_name(other)
            )),
        }
    }

    fn set_op(&mut self, expr: &Expr) -> Result<(SetOp, Option<FlatShape>), String> {
        match &expr.kind {
            ExprKind::Empty(_) => Ok((SetOp::Empty, None)),
            ExprKind::Singleton(e) => {
                let (k, s) = self.scalar(e)?;
                if s.width() == 0 {
                    return Err("zero-width output rows (all-unit elements)".to_string());
                }
                Ok((SetOp::Single(k), Some(s)))
            }
            ExprKind::If(c, t, e) => {
                let (kc, sc) = self.scalar(c)?;
                if sc != FlatShape::Bool {
                    return Err("if condition is not a boolean scalar".to_string());
                }
                let (kt, st) = self.set_op(t)?;
                let (ke, se) = self.set_op(e)?;
                let shape = match (st, se) {
                    (Some(a), Some(b)) if a == b => Some(a),
                    (Some(_), Some(_)) => {
                        return Err("the two if branches emit different shapes".to_string())
                    }
                    (a, b) => a.or(b),
                };
                Ok((
                    SetOp::If {
                        c: kc,
                        t: Box::new(kt),
                        e: Box::new(ke),
                    },
                    shape,
                ))
            }
            ExprKind::Let(x, bound, body) => {
                let (kb, sb) = self.scalar(bound)?;
                let slot = self.slot_count;
                self.slot_count += 1;
                self.scope.push((x.clone(), Binding::Slot(slot, sb)));
                let result = self.set_op(body);
                self.scope.pop();
                let (kr, shape) = result?;
                Ok((
                    SetOp::Let {
                        slot,
                        bound: kb,
                        body: Box::new(kr),
                    },
                    shape,
                ))
            }
            other => Err(format!(
                "`{}` is not a liftable set comprehension",
                kind_name(other)
            )),
        }
    }
}

/// A short constructor name for rejection messages.
fn kind_name(kind: &ExprKind) -> &'static str {
    match kind {
        ExprKind::Var(_) => "var",
        ExprKind::Lam(..) => "lambda",
        ExprKind::App(..) => "application",
        ExprKind::Let(..) => "let",
        ExprKind::Unit => "unit",
        ExprKind::Pair(..) => "pair",
        ExprKind::Proj1(_) => "pi1",
        ExprKind::Proj2(_) => "pi2",
        ExprKind::Bool(_) => "bool",
        ExprKind::If(..) => "if",
        ExprKind::Eq(..) => "=",
        ExprKind::Leq(..) => "<=",
        ExprKind::Const(_) => "const",
        ExprKind::Empty(_) => "empty",
        ExprKind::Singleton(_) => "singleton",
        ExprKind::Union(..) => "union",
        ExprKind::IsEmpty(_) => "isempty",
        ExprKind::Ext(..) => "ext",
        ExprKind::Dcr { .. } => "dcr",
        ExprKind::Sru { .. } => "sru",
        ExprKind::BDcr { .. } => "bdcr",
        ExprKind::Sri { .. } => "sri",
        ExprKind::Esr { .. } => "esr",
        ExprKind::BSri { .. } => "bsri",
        ExprKind::LogLoop { .. } => "log-loop",
        ExprKind::Loop { .. } => "loop",
        ExprKind::BLogLoop { .. } => "blog-loop",
        ExprKind::BLoop { .. } => "bloop",
        ExprKind::Extern(..) => "extern",
    }
}

/// Compile the body of `\param. body` into a row kernel over `input_shape`
/// rows, or explain why it cannot be lifted. Pure in (body, shape, registry):
/// the same inputs always make the same decision, which is what lets
/// prepare-time analysis predict the runtime path.
pub fn compile(
    param: &str,
    body: &Expr,
    input_shape: &FlatShape,
    registry: &ExternRegistry,
) -> Result<RowKernel, String> {
    let input_width = input_shape.width();
    let result = (|| {
        if input_width == 0 {
            return Err("zero-width input rows (all-unit elements)".to_string());
        }
        let mut c = Compiler {
            registry,
            input_shape,
            input_width,
            scope: vec![(param.to_string(), Binding::Param)],
            consts: Vec::new(),
            next: input_width,
            slot_count: 0,
        };
        let (body, out_shape) = c.set_op(body)?;
        // A body that provably never emits (every path is `{}`) has no output
        // shape of its own; any flat shape canonicalizes an empty row batch,
        // so borrow the input's.
        let output_shape = out_shape.unwrap_or_else(|| input_shape.clone());
        Ok(RowKernel {
            input_shape: input_shape.clone(),
            input_width,
            output_width: output_shape.width(),
            output_shape,
            scratch_len: c.next,
            slot_count: c.slot_count,
            consts: c.consts,
            body,
        })
    })();
    match &result {
        Ok(_) => COMPILES.fetch_add(1, Ordering::Relaxed),
        Err(_) => FALLBACKS.fetch_add(1, Ordering::Relaxed),
    };
    result
}

// ----- prepare-time site analysis -----

/// What the kernel compiler decided about one `ext` site of a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelSite {
    /// Source span of the `ext` expression, when the plan has spans.
    pub span: Option<Span>,
    /// Did the site compile to a row kernel?
    pub compiled: bool,
    /// `"input -> output"` row shapes for a compiled site, or the
    /// compiler's rejection reason.
    pub detail: String,
}

/// Analyze every `ext` site of `expr` whose function is a literal lambda:
/// derive the input row shape from the parameter annotation and run the
/// kernel compiler. Because [`compile`] is pure in (body, shape, registry),
/// a site reported `compiled` here is exactly a site the evaluator will run
/// through the kernel whenever the argument set is columnar (and kernels are
/// enabled).
pub fn analyze_sites(expr: &Expr, registry: &ExternRegistry) -> Vec<KernelSite> {
    let mut sites = Vec::new();
    expr.visit(&mut |e| {
        let ExprKind::Ext(f, _) = &e.kind else { return };
        let ExprKind::Lam(param, ty, body) = &f.kind else {
            sites.push(KernelSite {
                span: e.span,
                compiled: false,
                detail: "the ext function is not a literal lambda".to_string(),
            });
            return;
        };
        let site = match FlatShape::of_type(ty) {
            None => KernelSite {
                span: e.span,
                compiled: false,
                detail: format!("parameter type {ty} is not a flat shape"),
            },
            Some(shape) => match compile(param, body, &shape, registry) {
                Ok(kernel) => KernelSite {
                    span: e.span,
                    compiled: true,
                    detail: format!(
                        "{} -> {}",
                        shape_desc(&shape),
                        shape_desc(kernel.output_shape())
                    ),
                },
                Err(reason) => KernelSite {
                    span: e.span,
                    compiled: false,
                    detail: reason,
                },
            },
        };
        sites.push(site);
    });
    sites
}

// ----- process-wide observability counters -----

static COMPILES: AtomicU64 = AtomicU64::new(0);
static FALLBACKS: AtomicU64 = AtomicU64::new(0);
static EXT_HITS: AtomicU64 = AtomicU64::new(0);
static ROWS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide row-kernel counters (monotonic; kept out
/// of the bit-compared [`crate::eval::CostStats`] on purpose).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Bodies successfully compiled to kernels.
    pub compiles: u64,
    /// Compile attempts that fell back to the interpreter.
    pub fallbacks: u64,
    /// `ext` evaluations that executed through a kernel.
    pub ext_hits: u64,
    /// Input rows processed by kernels.
    pub rows: u64,
}

/// Record one kernel-executed `ext` over `rows` input rows.
pub(crate) fn note_ext_hit(rows: usize) {
    EXT_HITS.fetch_add(1, Ordering::Relaxed);
    ROWS.fetch_add(rows as u64, Ordering::Relaxed);
}

/// Snapshot the process-wide kernel counters.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        compiles: COMPILES.load(Ordering::Relaxed),
        fallbacks: FALLBACKS.load(Ordering::Relaxed),
        ext_hits: EXT_HITS.load(Ordering::Relaxed),
        rows: ROWS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{EvalConfig, Evaluator};
    use ncql_object::{Type, Value};

    fn pair_shape() -> FlatShape {
        FlatShape::Pair(Box::new(FlatShape::Atom), Box::new(FlatShape::Nat))
    }

    fn pair_ty() -> Type {
        Type::prod(Type::Base, Type::Nat)
    }

    /// Input set: n scrambled (atom, nat) pairs, columnar.
    fn input(n: u64) -> Value {
        Value::set_from((0..n).map(|i| {
            let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            Value::pair(Value::Atom(k % 97), Value::Nat(k % 41))
        }))
    }

    /// Evaluate `ext(\x: atom*nat. BODY, input)` with kernels forced on/off
    /// and assert bit-identical values and statistics.
    fn assert_kernel_matches_interpreter(body: Expr, n: u64) {
        let expr = Expr::ext(Expr::lam("x", pair_ty(), body), Expr::constant(input(n)));
        let mut with = Evaluator::new(EvalConfig::default());
        let v_with = with.eval_closed(&expr).expect("kernel path");
        let mut without = Evaluator::new(EvalConfig {
            kernels: false,
            ..EvalConfig::default()
        });
        let v_without = without.eval_closed(&expr).expect("interpreted path");
        assert_eq!(v_with, v_without, "values must agree");
        assert_eq!(with.stats(), without.stats(), "cost statistics must agree");
    }

    #[test]
    fn projection_kernel_matches_interpreter() {
        assert_kernel_matches_interpreter(Expr::singleton(Expr::proj1(Expr::var("x"))), 64);
    }

    #[test]
    fn never_emitting_kernel_matches_interpreter() {
        assert_kernel_matches_interpreter(Expr::empty(pair_ty()), 64);
    }

    #[test]
    fn swap_pair_kernel_matches_interpreter() {
        assert_kernel_matches_interpreter(
            Expr::singleton(Expr::pair(
                Expr::proj2(Expr::var("x")),
                Expr::proj1(Expr::var("x")),
            )),
            64,
        );
    }

    #[test]
    fn filter_kernel_matches_interpreter() {
        // if nat_leq(pi2 x, 20) then {x} else {}
        assert_kernel_matches_interpreter(
            Expr::ite(
                Expr::extern_call("nat_leq", vec![Expr::proj2(Expr::var("x")), Expr::nat(20)]),
                Expr::singleton(Expr::var("x")),
                Expr::empty(pair_ty()),
            ),
            64,
        );
    }

    #[test]
    fn let_and_arithmetic_kernel_matches_interpreter() {
        // let y = nat_add(pi2 x, 3) in if y <= 30 then {(pi1 x, y)} else {pi1 x, 0)}
        let body = Expr::let_in(
            "y",
            Expr::extern_call("nat_add", vec![Expr::proj2(Expr::var("x")), Expr::nat(3)]),
            Expr::ite(
                Expr::leq(Expr::var("y"), Expr::nat(30)),
                Expr::singleton(Expr::pair(Expr::proj1(Expr::var("x")), Expr::var("y"))),
                Expr::singleton(Expr::pair(Expr::proj1(Expr::var("x")), Expr::nat(0))),
            ),
        );
        assert_kernel_matches_interpreter(body, 64);
    }

    #[test]
    fn comparison_kernel_matches_interpreter() {
        // Pair comparison: {(x = x, (7, pi2 x) <= x ... )} exercises Cmp on
        // multi-word operands.
        let probe = Expr::pair(Expr::atom(40), Expr::nat(20));
        assert_kernel_matches_interpreter(
            Expr::singleton(Expr::pair(
                Expr::eq(Expr::var("x"), probe.clone()),
                Expr::leq(Expr::var("x"), probe),
            )),
            64,
        );
    }

    #[test]
    fn compile_rejects_unliftable_bodies_with_reasons() {
        let shape = pair_shape();
        let reg = ExternRegistry::standard();
        let reject = |body: Expr| compile("x", &body, &shape, &reg).unwrap_err();
        assert!(reject(Expr::singleton(Expr::var("free"))).contains("free variable"));
        assert!(
            reject(Expr::singleton(Expr::constant(Value::atom_set([1]))))
                .contains("non-flat constant")
        );
        assert!(reject(Expr::union(
            Expr::singleton(Expr::proj1(Expr::var("x"))),
            Expr::empty(Type::Base),
        ))
        .contains("union"));
        assert!(reject(Expr::singleton(Expr::unit())).contains("zero-width"));
        assert!(
            reject(Expr::singleton(Expr::extern_call(
                "card",
                vec![Expr::empty(Type::Base)]
            )))
            .contains("twin"),
            "set-consuming externs have no word twin"
        );
    }

    #[test]
    fn analyze_sites_reports_compiled_and_fallback_sites() {
        let good = Expr::ext(
            Expr::lam("x", pair_ty(), Expr::singleton(Expr::proj1(Expr::var("x")))),
            Expr::constant(input(16)),
        );
        let sites = analyze_sites(&good, &ExternRegistry::standard());
        assert_eq!(sites.len(), 1);
        assert!(sites[0].compiled);
        assert_eq!(sites[0].detail, "(atom * nat) -> atom");

        let bad = Expr::ext(
            Expr::lam("s", Type::set(Type::Base), Expr::singleton(Expr::var("s"))),
            Expr::constant(Value::set_from([Value::atom_set([1, 2])])),
        );
        let sites = analyze_sites(&bad, &ExternRegistry::standard());
        assert_eq!(sites.len(), 1);
        assert!(!sites[0].compiled);
        assert!(sites[0].detail.contains("not a flat shape"));
    }
}
