//! A minimal, dependency-free JSON tree: parser, writer, and accessors.
//!
//! The workspace builds hermetically against vendored stand-ins for its
//! crates.io dependencies, and no JSON library is among them — so the wire
//! protocol carries its own ~300-line implementation instead of growing a new
//! vendored crate. It covers exactly what the protocol needs: RFC 8259
//! objects/arrays/strings/numbers/booleans/null, `\uXXXX` escapes (surrogate
//! pairs included), a nesting-depth limit so a hostile request cannot blow
//! the stack, and a compact writer.
//!
//! Numbers come in two variants. Non-negative integer literals that fit a
//! `u64` parse to [`Json::UInt`] and print from the integer directly, so the
//! counters the protocol carries (ids, work and span statistics, latencies)
//! round-trip exactly even at and beyond 2⁵³ where `f64` rounds. Everything
//! else (fractions, exponents, negatives) is [`Json::Num`] (`f64`).
//! Equality treats the two variants numerically — `UInt(8)` equals `Num(8.0)`
//! — with the comparison done on the integer side, never through a lossy
//! `u64 → f64` conversion; [`Json::as_u64`] refuses `Num` values that are not
//! exactly representable non-negative integers rather than rounding.

use std::fmt;

/// Maximum nesting depth the parser accepts. Wire values are shallow (a
/// binding for a deeply nested complex object is the worst case); 128 is far
/// above anything legitimate and far below stack exhaustion.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-integer, negative, or out-of-`u64`-range JSON number.
    Num(f64),
    /// A non-negative integer number, kept exact at any magnitude a `u64`
    /// holds (see the module docs on integer exactness).
    UInt(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order (duplicate keys: last one wins on
    /// lookup, both are written back out — the protocol never emits
    /// duplicates).
    Obj(Vec<(String, Json)>),
    /// A pre-serialized JSON fragment, emitted verbatim by the writer. Never
    /// produced by the parser — it exists so already-serialized pieces (the
    /// engine's `Diagnostic::to_json`) embed without a parse round-trip.
    Raw(String),
}

impl Json {
    /// A `Json::Str` from anything string-like.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// A `Json::UInt` from an unsigned integer (exact at any magnitude).
    pub fn num(n: u64) -> Json {
        Json::UInt(n)
    }

    /// Member lookup on an object (`None` on non-objects / missing keys).
    /// With duplicate keys, the last occurrence wins.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is a number. Lossy above 2⁵³ for `UInt` values —
    /// exact consumers use [`Json::as_u64`].
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            Json::UInt(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The number as an exact non-negative integer: any `UInt`, or a `Num`
    /// with no fractional part in `[0, 2^53]` (a float above that boundary
    /// may have been rounded at parse time, so it is refused).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(n) => Some(*n),
            Json::Num(n) if *n >= 0.0 && *n <= 9_007_199_254_740_992.0 && n.fract() == 0.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }
}

/// Does the float `b` denote exactly the integer `a`? Decided on the integer
/// side: converting `a` to `f64` would itself round above 2⁵³ and report
/// false equalities, so instead `b` must be integral, in `u64` range, and
/// convert back to precisely `a`.
fn uint_eq_num(a: u64, b: f64) -> bool {
    b >= 0.0 && b.fract() == 0.0 && b < 18_446_744_073_709_551_616.0 && b as u64 == a
}

impl PartialEq for Json {
    /// Structural equality, except numbers compare numerically across the
    /// `UInt`/`Num` variants — decided exactly on the integer side, never by
    /// converting the `u64` to `f64` — so a value that took the float parse
    /// path still equals its integer-built counterpart.
    fn eq(&self, other: &Json) -> bool {
        match (self, other) {
            (Json::Null, Json::Null) => true,
            (Json::Bool(a), Json::Bool(b)) => a == b,
            (Json::Num(a), Json::Num(b)) => a == b,
            (Json::UInt(a), Json::UInt(b)) => a == b,
            (Json::UInt(a), Json::Num(b)) | (Json::Num(b), Json::UInt(a)) => uint_eq_num(*a, *b),
            (Json::Str(a), Json::Str(b)) => a == b,
            (Json::Arr(a), Json::Arr(b)) => a == b,
            (Json::Obj(a), Json::Obj(b)) => a == b,
            (Json::Raw(a), Json::Raw(b)) => a == b,
            _ => false,
        }
    }
}

/// Append `s` as a JSON string literal.
fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Json) {
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(true) => out.push_str("true"),
        Json::Bool(false) => out.push_str("false"),
        Json::Num(n) => {
            // Integral values print without the trailing `.0` so ids and
            // counters read (and re-parse) as integers.
            if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Json::UInt(n) => out.push_str(&format!("{n}")),
        Json::Str(s) => write_string(out, s),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Json::Obj(members) => {
            out.push('{');
            for (i, (k, v)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, v);
            }
            out.push('}');
        }
        Json::Raw(fragment) => out.push_str(fragment),
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_value(&mut out, self);
        f.write_str(&out)
    }
}

/// Why a text failed to parse as JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset at which the problem was detected.
    pub at: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.at)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, JsonError> {
        Err(JsonError {
            message: message.into(),
            at: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            self.err(format!("expected `{word}`"))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return self.err("nesting deeper than the protocol allows");
        }
        self.skip_ws();
        match self.peek() {
            None => self.err("unexpected end of input"),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value(depth + 1)?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return self.err("expected `,` or `]` in array"),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut members = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.skip_ws();
                    if self.peek() != Some(b'"') {
                        return self.err("expected a string key in object");
                    }
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.value(depth + 1)?;
                    members.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(members));
                        }
                        _ => return self.err("expected `,` or `}` in object"),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(other) => self.err(format!("unexpected byte `{}`", other as char)),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a following `\uXXXX` low
                                // surrogate is mandatory.
                                if self.peek() != Some(b'\\') {
                                    return self.err("lone high surrogate");
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return self.err("lone high surrogate");
                                }
                                self.pos += 1;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return self.err("invalid low surrogate");
                                }
                                let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                match char::from_u32(code) {
                                    Some(c) => c,
                                    None => return self.err("invalid surrogate pair"),
                                }
                            } else {
                                match char::from_u32(hi) {
                                    Some(c) => c,
                                    None => return self.err("invalid \\u escape"),
                                }
                            };
                            out.push(c);
                            continue; // hex4 advanced past the digits already
                        }
                        _ => return self.err("invalid escape"),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return self.err("raw control character in string"),
                Some(_) => {
                    // Decode one UTF-8 character (the input is a &str upstream
                    // of the byte view, so this cannot fail on valid input —
                    // but the parser is defensive anyway).
                    let rest = &self.bytes[self.pos..];
                    let len = match rest[0] {
                        b if b < 0x80 => 1,
                        b if (0xC0..0xE0).contains(&b) => 2,
                        b if (0xE0..0xF0).contains(&b) => 3,
                        b if b >= 0xF0 => 4,
                        _ => return self.err("invalid UTF-8 in string"),
                    };
                    if rest.len() < len {
                        return self.err("truncated UTF-8 in string");
                    }
                    match std::str::from_utf8(&rest[..len]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return self.err("invalid UTF-8 in string"),
                    }
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return self.err("truncated \\u escape");
        }
        let digits = &self.bytes[self.pos..end];
        let text = std::str::from_utf8(digits).map_err(|_| JsonError {
            message: "invalid \\u escape".to_string(),
            at: self.pos,
        })?;
        let code = u32::from_str_radix(text, 16).map_err(|_| JsonError {
            message: "invalid \\u escape".to_string(),
            at: self.pos,
        })?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        // Plain digits so far: keep a non-negative integer exact as `UInt`
        // unless a fraction/exponent follows or it overflows `u64` (then the
        // general `f64` path below takes over).
        let integral = self.bytes[start] != b'-';
        if integral && !matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
            let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::UInt(n));
            }
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        match text.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => self.err("invalid number"),
        }
    }
}

/// Parse one JSON value from `text`, requiring it to span the whole input
/// (modulo surrounding whitespace).
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return parser.err("trailing bytes after the JSON value");
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let text = r#"{"op":"execute","id":7,"text":"{@1} union {@2}","bindings":[{"name":"s","value":{"set":[{"atom":1}]}}],"deadline_ms":250}"#;
        let parsed = parse(text).unwrap();
        assert_eq!(parsed.get("op").unwrap().as_str(), Some("execute"));
        assert_eq!(parsed.get("id").unwrap().as_u64(), Some(7));
        let reprinted = parse(&parsed.to_string()).unwrap();
        assert_eq!(parsed, reprinted);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let original = Json::str("a \"quote\"\nand \\ tab\t€ done");
        let reparsed = parse(&original.to_string()).unwrap();
        assert_eq!(original, reparsed);
        // \u escapes, including a surrogate pair.
        let fancy = parse(r#""A€😀""#).unwrap();
        assert_eq!(fancy.as_str(), Some("A€😀"));
    }

    #[test]
    fn rejects_garbage_with_positions() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "nul", "\"unterminated", "1 2"] {
            assert!(parse(bad).is_err(), "{bad:?} parsed");
        }
        let err = parse("{\"a\": }").unwrap_err();
        assert!(err.at > 0);
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn depth_limit_holds() {
        let mut deep = String::new();
        for _ in 0..1000 {
            deep.push('[');
        }
        for _ in 0..1000 {
            deep.push(']');
        }
        let err = parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"));
    }

    #[test]
    fn numbers_are_exact_where_the_protocol_needs_them() {
        assert_eq!(parse("9007199254740992").unwrap().as_u64(), Some(1 << 53));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_u64(), Some(1000));
        // Integral numbers reprint without a fractional suffix.
        assert_eq!(Json::num(42).to_string(), "42");
    }

    #[test]
    fn integers_round_trip_exactly_across_the_f64_boundary() {
        // 2^53 ± 1 is where `f64` starts rounding; the integer path must not.
        for n in [
            (1u64 << 53) - 1,
            1u64 << 53,
            (1u64 << 53) + 1,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(Json::num(n).to_string(), n.to_string());
            assert_eq!(parse(&n.to_string()).unwrap().as_u64(), Some(n), "{n}");
        }
        // The old lossy path would collapse 2^53 + 1 onto 2^53.
        assert_ne!(
            parse("9007199254740993").unwrap(),
            parse("9007199254740992").unwrap()
        );
        // Beyond u64: falls back to f64 and stops pretending to be exact.
        let huge = parse("18446744073709551616").unwrap();
        assert_eq!(huge.as_u64(), None);
        assert!(huge.as_f64().is_some());
    }

    #[test]
    fn numeric_equality_bridges_the_variants_exactly() {
        assert_eq!(Json::UInt(1000), Json::Num(1000.0));
        assert_eq!(parse("1e3").unwrap(), Json::num(1000));
        assert_ne!(Json::UInt(3), Json::Num(3.5));
        // At the boundary the comparison must not round the integer side:
        // (2^53 + 1) as f64 == 2^53 exactly, so a float-side comparison would
        // wrongly accept this pair.
        assert_ne!(Json::UInt((1 << 53) + 1), Json::Num(9007199254740992.0));
        assert_eq!(Json::UInt(1 << 53), Json::Num(9007199254740992.0));
        assert_ne!(Json::UInt(0), Json::Num(-0.5));
    }

    #[test]
    fn raw_fragments_embed_verbatim() {
        let obj = Json::Obj(vec![(
            "diagnostic".to_string(),
            Json::Raw("{\"severity\":\"error\"}".to_string()),
        )]);
        assert_eq!(obj.to_string(), r#"{"diagnostic":{"severity":"error"}}"#);
        let reparsed = parse(&obj.to_string()).unwrap();
        assert_eq!(
            reparsed.get("diagnostic").unwrap().get("severity").unwrap(),
            &Json::str("error")
        );
    }
}
