//! Prepare-time static analysis: symbolic work/span bounds and a query linter.
//!
//! The paper's central claim is that queries in this language carry *static*
//! parallel-complexity guarantees — Theorems 6.1/6.2 place `dcr^(k)`/`bdcr^(k)`
//! queries in ACᵏ. This module turns that meta-theorem into an engine-usable
//! analysis: a compositional abstract interpreter over [`ExprKind`] that
//! computes **upper-bound polynomials** for the work and span the instrumented
//! evaluator in [`crate::eval`] will charge, in the cardinalities of the free
//! schema relations, plus a **lower work bound** (`work_floor`) used to reject
//! queries that are guaranteed to exceed a session's work limit before any
//! evaluation happens.
//!
//! The cost model mirrored here is exactly the one `Evaluator` charges:
//!
//! * every expression node charges 1 unit of work on entry;
//! * `eq`/`leq` charge `min(|a|, |b|)` extra (size-bounded comparison);
//! * `union` charges `|a ∪ b|` extra;
//! * `ext` applies its map once per element (each application charges 1 plus
//!   the body's cost) and charges the result cardinality at the end;
//! * the union recursors (`dcr`/`sru`/`bdcr`) apply the singleton map per
//!   element and then combine over a balanced binary tree — `m − 1` combiner
//!   calls whose *span* contributes only `⌈log₂ m⌉` levels (the AC link);
//! * the insert recursors (`sri`/`esr`/`bsri`) and the iterators
//!   (`loop`/`log-loop` and bounded forms) run a sequential chain whose span
//!   is the *sum* of the step spans.
//!
//! Set growth through a recursion is resolved by a one-variable recurrence:
//! the combiner/step body is analysed once with a fresh *measure variable* `g`
//! standing for the accumulator size, the resulting size bound is decomposed
//! as `A·g + R`, and the closed form (`R·log m`, geometric in `A`, or the
//! bounded recursor's hard cap) is substituted back. When the argument
//! cardinality is a known constant the analyser instead runs the combining
//! tree / chain *numerically*, round by round, which gives finite bounds even
//! for non-linear combiners (the powerset query).
//!
//! Everything here is a *bound*, never a promise of tightness: `Unbounded` is
//! always a sound answer, and the analyser degrades to it (never panics) when
//! its node budget runs out or a recurrence is not linear in the measure.

use crate::analysis::free_vars;
use crate::eval::log_rounds;
use crate::expr::{Expr, ExprKind};
use crate::externs::ExternRegistry;
use crate::span::Span;
use ncql_object::{Type, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// Polynomials
// ---------------------------------------------------------------------------

/// A monomial: each variable maps to `(power, log-power)`, i.e. the factor
/// `v^power · log(v)^log_power`, where `log` is the evaluator's
/// [`log_rounds`] (`⌊log₂ v⌋ + 1` for `v ≥ 1`, `0` for `v = 0`).
pub type Monomial = BTreeMap<String, (u32, u32)>;

/// A multivariate polynomial with saturating `u64` coefficients over relation
/// cardinalities, admitting `log` factors. All coefficients are non-negative,
/// which the bound algebra leans on throughout: polynomials are monotone in
/// every variable, so substituting an upper bound for a variable preserves
/// upper bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    terms: BTreeMap<Monomial, u64>,
}

/// Merging more terms than this triggers compaction (upper bounds get
/// coarsened per variable-support group; lower bounds drop terms).
const MAX_TERMS: usize = 32;

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Poly {
        Poly {
            terms: BTreeMap::new(),
        }
    }

    /// A constant polynomial.
    pub fn constant(c: u64) -> Poly {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Monomial::new(), c);
        }
        Poly { terms }
    }

    /// The polynomial `v` for a single cardinality variable.
    pub fn var(name: &str) -> Poly {
        let mut m = Monomial::new();
        m.insert(name.to_string(), (1, 0));
        let mut terms = BTreeMap::new();
        terms.insert(m, 1);
        Poly { terms }
    }

    /// The polynomial `log(v)`.
    pub fn log_var(name: &str) -> Poly {
        let mut m = Monomial::new();
        m.insert(name.to_string(), (0, 1));
        let mut terms = BTreeMap::new();
        terms.insert(m, 1);
        Poly { terms }
    }

    /// Is this syntactically zero?
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// `Some(c)` when the polynomial is a constant.
    pub fn as_const(&self) -> Option<u64> {
        match self.terms.len() {
            0 => Some(0),
            1 => {
                let (m, c) = self.terms.iter().next().expect("len checked");
                m.is_empty().then_some(*c)
            }
            _ => None,
        }
    }

    /// Pointwise sum.
    pub fn add(&self, other: &Poly) -> Poly {
        let mut out = self.terms.clone();
        for (m, c) in &other.terms {
            let slot = out.entry(m.clone()).or_insert(0);
            *slot = slot.saturating_add(*c);
        }
        Poly { terms: out }
    }

    /// `self + c`.
    pub fn add_const(&self, c: u64) -> Poly {
        self.add(&Poly::constant(c))
    }

    /// Product of two polynomials.
    pub fn mul(&self, other: &Poly) -> Poly {
        let mut out: BTreeMap<Monomial, u64> = BTreeMap::new();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                let mut m = ma.clone();
                for (v, (p, q)) in mb {
                    let slot = m.entry(v.clone()).or_insert((0, 0));
                    slot.0 = slot.0.saturating_add(*p);
                    slot.1 = slot.1.saturating_add(*q);
                }
                let slot = out.entry(m).or_insert(0);
                *slot = slot.saturating_add(ca.saturating_mul(*cb));
            }
        }
        Poly { terms: out }
    }

    /// `c · self`.
    pub fn scale(&self, c: u64) -> Poly {
        if c == 0 {
            return Poly::zero();
        }
        Poly {
            terms: self
                .terms
                .iter()
                .map(|(m, k)| (m.clone(), k.saturating_mul(c)))
                .collect(),
        }
    }

    /// Pointwise coefficient maximum: a sound **upper** bound for
    /// `max(self, other)` at every non-negative assignment (each operand is
    /// dominated termwise by the joined coefficients).
    pub fn join(&self, other: &Poly) -> Poly {
        let mut out = self.terms.clone();
        for (m, c) in &other.terms {
            let slot = out.entry(m.clone()).or_insert(0);
            *slot = (*slot).max(*c);
        }
        Poly { terms: out }
    }

    /// Evaluate at concrete cardinalities. Returns `None` when a variable is
    /// missing from `lookup`. Log factors evaluate through [`log_rounds`].
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<u64>) -> Option<u64> {
        let mut total: u64 = 0;
        for (m, c) in &self.terms {
            let mut term = *c;
            for (v, (p, q)) in m {
                let val = lookup(v)?;
                for _ in 0..*p {
                    term = term.saturating_mul(val);
                }
                let lg = log_rounds(val as usize);
                for _ in 0..*q {
                    term = term.saturating_mul(lg);
                }
            }
            total = total.saturating_add(term);
        }
        Some(total)
    }

    /// Evaluate a closed (variable-free) polynomial; `None` if any variable
    /// remains.
    pub fn eval_closed(&self) -> Option<u64> {
        self.eval(&|_| None)
    }

    /// Evaluate with every variable set to zero — the unconditional minimum
    /// of a monotone polynomial, used for the doomed-query floor.
    pub fn eval_at_zero(&self) -> u64 {
        self.eval(&|_| Some(0)).expect("total lookup")
    }

    /// An upper bound for `log_rounds(self(x))` as a polynomial, valid at
    /// every non-negative assignment. Uses `log(c·Πvᵖ·log(v)^q) ≤
    /// log(c) + Σ(p+q)·log(v)` per monomial (since `log_rounds(ab) ≤
    /// log_rounds(a) + log_rounds(b)`, `log_rounds(v^p) ≤ p·log_rounds(v)`,
    /// and `log_rounds(log_rounds(v)) ≤ log_rounds(v)`), and
    /// `log_rounds(Σᵢ tᵢ) ≤ Σᵢ log_rounds(tᵢ) + 2(k−1)` across `k` monomials.
    pub fn log_bound(&self) -> Poly {
        if self.terms.is_empty() {
            return Poly::zero();
        }
        let mut out = Poly::zero();
        for (m, c) in &self.terms {
            let mut term = Poly::constant(log_rounds(*c as usize));
            for (v, (p, q)) in m {
                let total = (*p as u64).saturating_add(*q as u64);
                term = term.add(&Poly::log_var(v).scale(total));
            }
            out = out.add(&term);
        }
        out.add_const(2 * (self.terms.len() as u64 - 1))
    }

    /// Substitute an upper bound `replacement` for `var`. Sound for upper
    /// bounds because the polynomial is monotone in every variable:
    /// `v^p·log(v)^q ↦ P^p·log_bound(P)^q`.
    pub fn subst(&self, var: &str, replacement: &Poly) -> Poly {
        let mut out = Poly::zero();
        let repl_log = replacement.log_bound();
        for (m, c) in &self.terms {
            let mut term = Poly::constant(*c);
            for (v, (p, q)) in m {
                if v == var {
                    for _ in 0..*p {
                        term = term.mul(replacement);
                    }
                    for _ in 0..*q {
                        term = term.mul(&repl_log);
                    }
                } else {
                    let mut mono = Monomial::new();
                    mono.insert(v.clone(), (*p, *q));
                    let mut factor = BTreeMap::new();
                    factor.insert(mono, 1);
                    term = term.mul(&Poly { terms: factor });
                }
            }
            out = out.add(&term);
        }
        out
    }

    /// Does the polynomial mention `var` at all?
    pub fn mentions(&self, var: &str) -> bool {
        self.terms.keys().any(|m| m.contains_key(var))
    }

    /// Decompose as `A·var + R` where `R` does not mention `var`. `None` when
    /// any term is non-linear in `var` (including `log(var)` factors).
    pub fn linear_in(&self, var: &str) -> Option<(u64, Poly)> {
        let mut a = 0u64;
        let mut rest = Poly::zero();
        for (m, c) in &self.terms {
            match m.get(var) {
                None => {
                    rest = rest.add(&Poly {
                        terms: BTreeMap::from([(m.clone(), *c)]),
                    });
                }
                Some(&(1, 0)) if m.len() == 1 => a = a.saturating_add(*c),
                Some(_) => return None,
            }
        }
        Some((a, rest))
    }

    /// Coarsen an **upper** bound so it never exceeds `MAX_TERMS` terms:
    /// within each group of monomials sharing a variable support, log-powers
    /// fold into full powers (`log_rounds(v) ≤ v`), powers take the groupwise
    /// maximum, and coefficients sum. Sound because within a support group
    /// either every variable is ≥ 1 (so raising powers only grows the term)
    /// or some variable is 0 (so both sides vanish).
    pub fn compact_upper(self) -> Poly {
        if self.terms.len() <= MAX_TERMS {
            return self;
        }
        let mut groups: BTreeMap<Vec<String>, (Monomial, u64)> = BTreeMap::new();
        for (m, c) in self.terms {
            let support: Vec<String> = m.keys().cloned().collect();
            let entry = groups
                .entry(support)
                .or_insert_with(|| (Monomial::new(), 0));
            for (v, (p, q)) in m {
                let folded = (p).saturating_add(q);
                let slot = entry.0.entry(v).or_insert((0, 0));
                slot.0 = slot.0.max(folded);
            }
            entry.1 = entry.1.saturating_add(c);
        }
        Poly {
            terms: groups.into_values().collect(),
        }
    }

    /// Shrink a **lower** bound by dropping terms (coefficients are
    /// non-negative, so any sub-sum is still a lower bound).
    pub fn compact_lower(self) -> Poly {
        if self.terms.len() <= MAX_TERMS {
            return self;
        }
        Poly {
            terms: self.terms.into_iter().take(MAX_TERMS).collect(),
        }
    }

    /// A deterministic sample evaluation (every variable at 8) used only to
    /// *pick between* two already-sound bounds — never to establish one.
    fn sample(&self) -> u64 {
        self.eval(&|_| Some(8)).expect("total lookup")
    }

    /// Sound pointwise comparison: `true` guarantees `self(x) ≤ other(x)` at
    /// **every** non-negative assignment `x`; `false` means "could not prove
    /// it" (the check is incomplete, never unsound). The rewrite engine's
    /// cost gate leans on this direction: a rewrite only fires on a proven
    /// `≤`, so incompleteness can at worst suppress an optimisation.
    ///
    /// The certificate is a greedy matching: each monomial of `self` must be
    /// charged against coefficient budget of `other`-monomials that dominate
    /// it. `v^pb·log(v)^qb` dominates `v^pa·log(v)^qa` when `pb ≥ pa` and
    /// `pb + qb ≥ pa + qa` (excess plain powers absorb log powers since
    /// `log_rounds(v) ≤ v`, and `log_rounds(v) ≥ 1` for `v ≥ 1`). Domination
    /// additionally requires *identical* variable support: a superset support
    /// is unsound at assignments where the extra variable is 0 (the dominating
    /// term vanishes while the dominated one does not).
    pub fn le_pointwise(&self, other: &Poly) -> bool {
        let mut budget: Vec<(&Monomial, u64)> = other.terms.iter().map(|(m, c)| (m, *c)).collect();
        'terms: for (m, c) in &self.terms {
            let mut need = *c;
            for (bm, avail) in budget.iter_mut() {
                if *avail == 0 || !monomial_dominates(bm, m) {
                    continue;
                }
                let used = need.min(*avail);
                *avail -= used;
                need -= used;
                if need == 0 {
                    continue 'terms;
                }
            }
            return false;
        }
        true
    }
}

/// Does the monomial `big` dominate `small` at every non-negative assignment
/// (see [`Poly::le_pointwise`] for the exact side conditions)?
fn monomial_dominates(big: &Monomial, small: &Monomial) -> bool {
    if big.len() != small.len() {
        return false;
    }
    small.iter().all(|(v, &(pa, qa))| match big.get(v) {
        Some(&(pb, qb)) => pb >= pa && (pb as u64) + (qb as u64) >= (pa as u64) + (qa as u64),
        None => false,
    })
}

/// A sound **lower** bound for `max(a, b)`: exact on constants, otherwise the
/// operand that looks larger at a sample point (either operand alone is a
/// valid lower bound for the max).
pub(crate) fn lower_max(a: &Poly, b: &Poly) -> Poly {
    match (a.as_const(), b.as_const()) {
        (Some(ca), Some(cb)) => Poly::constant(ca.max(cb)),
        _ => {
            if a.sample() >= b.sample() {
                a.clone()
            } else {
                b.clone()
            }
        }
    }
}

/// A sound **lower** bound for `min(a, b)`: exact on constants, otherwise 0.
pub(crate) fn lower_min(a: &Poly, b: &Poly) -> Poly {
    match (a.as_const(), b.as_const()) {
        (Some(ca), Some(cb)) => Poly::constant(ca.min(cb)),
        _ => Poly::zero(),
    }
}

impl fmt::Display for Poly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Highest-degree first reads like a complexity bound.
        let mut terms: Vec<(&Monomial, &u64)> = self.terms.iter().collect();
        terms.sort_by_key(|(m, _)| {
            let deg: u64 = m.values().map(|(p, q)| (*p as u64) + (*q as u64)).sum();
            std::cmp::Reverse(deg)
        });
        for (i, (m, c)) in terms.into_iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            let mut factors: Vec<String> = Vec::new();
            for (v, (p, q)) in m.iter() {
                if *p == 1 {
                    factors.push(v.clone());
                } else if *p > 1 {
                    factors.push(format!("{v}^{p}"));
                }
                if *q == 1 {
                    factors.push(format!("log({v})"));
                } else if *q > 1 {
                    factors.push(format!("log({v})^{q}"));
                }
            }
            if factors.is_empty() {
                write!(f, "{c}")?;
            } else if *c == 1 {
                write!(f, "{}", factors.join("*"))?;
            } else {
                write!(f, "{c}*{}", factors.join("*"))?;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Bounds and ranges
// ---------------------------------------------------------------------------

/// An upper bound that may be infinite. `Unbounded` is the analyser's honest
/// answer when a recurrence is non-linear or the node budget ran out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bound {
    /// A finite symbolic bound.
    Finite(Poly),
    /// No finite bound could be established.
    Unbounded,
}

impl Bound {
    /// A constant bound.
    pub fn constant(c: u64) -> Bound {
        Bound::Finite(Poly::constant(c))
    }

    /// The finite polynomial, if any.
    pub fn as_poly(&self) -> Option<&Poly> {
        match self {
            Bound::Finite(p) => Some(p),
            Bound::Unbounded => None,
        }
    }

    /// `Some(c)` when the bound is a finite constant.
    pub fn as_const(&self) -> Option<u64> {
        self.as_poly().and_then(Poly::as_const)
    }

    /// Lifted sum.
    ///
    /// **Upper bounds only** (note the [`Poly::compact_upper`] coarsening —
    /// see the floor-routing audit on [`CostBound`]). Floor polynomials are
    /// plain [`Poly`]s and must stay on `Poly::add`/`Poly::mul` +
    /// [`Poly::compact_lower`].
    pub fn add(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.add(b).compact_upper()),
            _ => Bound::Unbounded,
        }
    }

    /// `self + c`.
    pub fn add_const(&self, c: u64) -> Bound {
        self.add(&Bound::constant(c))
    }

    /// Lifted product. Zero absorbs `Unbounded`: iterating an opaque body
    /// zero times costs nothing. **Upper bounds only** — same coarsening
    /// caveat as [`Bound::add`].
    pub fn mul(&self, other: &Bound) -> Bound {
        if self.as_const() == Some(0) || other.as_const() == Some(0) {
            return Bound::constant(0);
        }
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.mul(b).compact_upper()),
            _ => Bound::Unbounded,
        }
    }

    /// Upper bound for `max(self, other)`.
    pub fn join(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.join(b)),
            _ => Bound::Unbounded,
        }
    }

    /// Sound pointwise comparison lifted from [`Poly::le_pointwise`]:
    /// everything is `≤ Unbounded`, `Unbounded` is `≤` nothing finite.
    /// Incomplete in the same proof-or-give-up sense.
    pub fn le_pointwise(&self, other: &Bound) -> bool {
        match (self, other) {
            (_, Bound::Unbounded) => true,
            (Bound::Unbounded, Bound::Finite(_)) => false,
            (Bound::Finite(a), Bound::Finite(b)) => a.le_pointwise(b),
        }
    }

    /// Upper bound for `min(self, other)`: exact on constants; a finite
    /// operand beats `Unbounded`; otherwise either finite operand is sound.
    pub fn upper_min(&self, other: &Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => match (a.as_const(), b.as_const()) {
                (Some(ca), Some(cb)) => Bound::constant(ca.min(cb)),
                _ => {
                    if a.sample() <= b.sample() {
                        self.clone()
                    } else {
                        other.clone()
                    }
                }
            },
            (Bound::Finite(_), Bound::Unbounded) => self.clone(),
            (Bound::Unbounded, _) => other.clone(),
        }
    }

    /// Lifted [`Poly::log_bound`].
    pub fn log_bound(&self) -> Bound {
        match self {
            Bound::Finite(p) => Bound::Finite(p.log_bound()),
            Bound::Unbounded => Bound::Unbounded,
        }
    }

    /// Evaluate at concrete cardinalities; `None` when unbounded or a
    /// variable is missing.
    pub fn eval(&self, lookup: &dyn Fn(&str) -> Option<u64>) -> Option<u64> {
        self.as_poly().and_then(|p| p.eval(lookup))
    }

    /// Evaluate a closed bound.
    pub fn eval_closed(&self) -> Option<u64> {
        self.as_poly().and_then(Poly::eval_closed)
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(p) => write!(f, "{p}"),
            Bound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// A two-sided range: a guaranteed lower-bound polynomial and a (possibly
/// infinite) upper bound. Lower bounds are deliberately coarse — they feed
/// only the doomed-query check, where looseness merely misses rejections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Range {
    pub lo: Poly,
    pub hi: Bound,
}

impl Range {
    pub fn exact(c: u64) -> Range {
        Range {
            lo: Poly::constant(c),
            hi: Bound::constant(c),
        }
    }

    pub fn new(lo: Poly, hi: Bound) -> Range {
        Range { lo, hi }
    }

    pub fn between(lo: u64, hi: Bound) -> Range {
        Range {
            lo: Poly::constant(lo),
            hi,
        }
    }

    pub fn unknown_card() -> Range {
        Range::between(0, Bound::Unbounded)
    }

    pub fn unknown_size() -> Range {
        Range::between(1, Bound::Unbounded)
    }

    pub fn add(&self, other: &Range) -> Range {
        Range {
            lo: self.lo.add(&other.lo).compact_lower(),
            hi: self.hi.add(&other.hi),
        }
    }

    pub fn add_const(&self, c: u64) -> Range {
        Range {
            lo: self.lo.add_const(c),
            hi: self.hi.add_const(c),
        }
    }

    /// Range of `max(a, b)` — for joins of alternatives use [`Range::join`].
    pub fn max(&self, other: &Range) -> Range {
        Range {
            lo: lower_max(&self.lo, &other.lo),
            hi: self.hi.join(&other.hi),
        }
    }

    /// Range covering *either* operand (e.g. the two branches of an `if`):
    /// the lower bound must hold for both, so it is the lower `min`.
    pub fn join(&self, other: &Range) -> Range {
        Range {
            lo: lower_min(&self.lo, &other.lo),
            hi: self.hi.join(&other.hi),
        }
    }
}

/// Work/span cost of evaluating one expression, as ranges.
#[derive(Debug, Clone)]
pub(crate) struct Cost {
    pub work: Range,
    pub span: Range,
}

impl Cost {
    /// The cost of a leaf node: one unit of work, zero span.
    pub fn leaf() -> Cost {
        Cost {
            work: Range::exact(1),
            span: Range::exact(0),
        }
    }

    /// The cost when nothing is known (budget exhausted / opaque function):
    /// every node still charges at least one unit of work on entry.
    pub fn opaque() -> Cost {
        Cost {
            work: Range::between(1, Bound::Unbounded),
            span: Range::between(0, Bound::Unbounded),
        }
    }
}

// ---------------------------------------------------------------------------
// Abstract values
// ---------------------------------------------------------------------------

/// Structural knowledge about an object value.
#[derive(Debug, Clone)]
pub(crate) enum Shape {
    /// Atom / bool / unit / nat.
    Scalar,
    /// A pair with per-component bounds.
    Pair(Rc<ObjBound>, Rc<ObjBound>),
    /// A set with a bound covering *every* element.
    Set(Rc<ObjBound>),
    /// Unknown structure.
    Top,
}

/// Bounds on one object value: its cardinality (1 for non-sets), its
/// [`Value::size`], and its shape. Invariants: `size ≥ 1` always, and for
/// sets `card ≤ size − 1` (each element has size ≥ 1).
#[derive(Debug, Clone)]
pub(crate) struct ObjBound {
    pub card: Range,
    pub size: Range,
    pub shape: Shape,
}

impl ObjBound {
    pub fn scalar() -> ObjBound {
        ObjBound {
            card: Range::exact(1),
            size: Range::exact(1),
            shape: Shape::Scalar,
        }
    }

    pub fn top() -> ObjBound {
        ObjBound {
            card: Range::unknown_card(),
            size: Range::unknown_size(),
            shape: Shape::Top,
        }
    }

    /// Exact bounds for a concrete value.
    pub fn of_value(v: &Value) -> ObjBound {
        match v {
            Value::Atom(_) | Value::Bool(_) | Value::Unit | Value::Nat(_) => ObjBound::scalar(),
            Value::Pair(a, b) => {
                let a = ObjBound::of_value(a);
                let b = ObjBound::of_value(b);
                ObjBound {
                    card: Range::exact(1),
                    size: a.size.add(&b.size).add_const(1),
                    shape: Shape::Pair(Rc::new(a), Rc::new(b)),
                }
            }
            Value::Set(s) => {
                let card = s.len() as u64;
                let size = v.size() as u64;
                let elem = s
                    .iter()
                    .map(ObjBound::of_value)
                    .reduce(|a, b| a.join(&b))
                    .unwrap_or_else(ObjBound::top);
                ObjBound {
                    card: Range::exact(card),
                    size: Range::exact(size),
                    shape: Shape::Set(Rc::new(elem)),
                }
            }
        }
    }

    /// Shape-only bounds from a type (cardinalities of sets unknown).
    pub fn of_type(ty: &Type) -> ObjBound {
        match ty {
            Type::Base | Type::Bool | Type::Unit | Type::Nat => ObjBound::scalar(),
            Type::Prod(a, b) => {
                let a = ObjBound::of_type(a);
                let b = ObjBound::of_type(b);
                ObjBound {
                    card: Range::exact(1),
                    size: a.size.add(&b.size).add_const(1),
                    shape: Shape::Pair(Rc::new(a), Rc::new(b)),
                }
            }
            Type::Set(t) => {
                let elem = ObjBound::of_type(t);
                ObjBound {
                    card: Range::unknown_card(),
                    size: Range::unknown_size(),
                    shape: Shape::Set(Rc::new(elem)),
                }
            }
            Type::Fun(_, _) => ObjBound::top(),
        }
    }

    /// Bounds for a schema relation whose cardinality is the symbolic
    /// variable `name`: `card = |name|` exactly, `1 + |name| ≤ size ≤
    /// 1 + |name| · elem_size`.
    pub fn schema_relation(name: &str, ty: &Type) -> ObjBound {
        match ty {
            Type::Set(t) => {
                let elem = ObjBound::of_type(t);
                let n = Poly::var(name);
                let size_hi = match &elem.size.hi {
                    Bound::Finite(es) => Bound::Finite(n.mul(es).add_const(1)),
                    Bound::Unbounded => Bound::Unbounded,
                };
                ObjBound {
                    card: Range::new(n.clone(), Bound::Finite(n.clone())),
                    size: Range::new(n.add_const(1), size_hi),
                    shape: Shape::Set(Rc::new(elem)),
                }
            }
            other => ObjBound::of_type(other),
        }
    }

    /// Covering join: bounds valid for a value that is *either* operand.
    pub fn join(&self, other: &ObjBound) -> ObjBound {
        let shape = match (&self.shape, &other.shape) {
            (Shape::Scalar, Shape::Scalar) => Shape::Scalar,
            (Shape::Pair(a1, b1), Shape::Pair(a2, b2)) => {
                Shape::Pair(Rc::new(a1.join(a2)), Rc::new(b1.join(b2)))
            }
            (Shape::Set(e1), Shape::Set(e2)) => Shape::Set(Rc::new(e1.join(e2))),
            _ => Shape::Top,
        };
        ObjBound {
            card: self.card.join(&other.card),
            size: self.size.join(&other.size),
            shape,
        }
    }

    /// Bounds after `meet(self, bound)` — the bounded recursors' cap. The
    /// meet is contained in `bound` structurally, so `bound`'s uppers apply;
    /// lowers collapse (the meet can be empty).
    pub fn cap(&self, bound: &ObjBound) -> ObjBound {
        ObjBound {
            card: Range::new(Poly::zero(), self.card.hi.upper_min(&bound.card.hi)),
            size: Range::new(Poly::constant(1), self.size.hi.upper_min(&bound.size.hi)),
            shape: bound.shape.clone().loosen_lows(),
        }
    }

    /// The element bound of a set-shaped value (`top` when unknown).
    pub fn set_elem(&self) -> ObjBound {
        match &self.shape {
            Shape::Set(e) => (**e).clone(),
            _ => ObjBound::top(),
        }
    }
}

impl Shape {
    /// Recursively zero the lower bounds of every nested range — used when a
    /// shape is reused as a *cover* for values that may be structurally
    /// smaller (the bounded recursors' meet).
    fn loosen_lows(self) -> Shape {
        fn loosen(b: &ObjBound) -> ObjBound {
            ObjBound {
                card: Range::new(Poly::zero(), b.card.hi.clone()),
                size: Range::new(Poly::constant(1), b.size.hi.clone()),
                shape: b.shape.clone().loosen_lows(),
            }
        }
        match self {
            Shape::Pair(a, b) => Shape::Pair(Rc::new(loosen(&a)), Rc::new(loosen(&b))),
            Shape::Set(e) => Shape::Set(Rc::new(loosen(&e))),
            s => s,
        }
    }
}

/// An abstract runtime value: an object bound, a closure (the analyser is
/// higher-order, like the evaluator), or nothing known.
#[derive(Debug, Clone)]
pub(crate) enum AbsVal<'a> {
    Obj(ObjBound),
    Fun(Rc<AbsClosure<'a>>),
    Top,
}

#[derive(Debug)]
pub(crate) struct AbsClosure<'a> {
    param: &'a str,
    body: &'a Expr,
    env: AbsEnv<'a>,
}

/// A persistent environment: an immutable linked list of bindings.
type AbsEnv<'a> = Option<Rc<EnvNode<'a>>>;

#[derive(Debug)]
pub(crate) struct EnvNode<'a> {
    name: &'a str,
    val: AbsVal<'a>,
    next: AbsEnv<'a>,
}

fn env_bind<'a>(env: &AbsEnv<'a>, name: &'a str, val: AbsVal<'a>) -> AbsEnv<'a> {
    Some(Rc::new(EnvNode {
        name,
        val,
        next: env.clone(),
    }))
}

fn env_lookup<'a>(env: &AbsEnv<'a>, name: &str) -> Option<AbsVal<'a>> {
    let mut cur = env;
    while let Some(node) = cur {
        if node.name == name {
            return Some(node.val.clone());
        }
        cur = &node.next;
    }
    None
}

impl<'a> AbsVal<'a> {
    /// View as an object bound (functions and Top degrade to `top()`).
    fn as_obj(&self) -> ObjBound {
        match self {
            AbsVal::Obj(b) => b.clone(),
            _ => ObjBound::top(),
        }
    }

    fn join(&self, other: &AbsVal<'a>) -> AbsVal<'a> {
        match (self, other) {
            (AbsVal::Obj(a), AbsVal::Obj(b)) => AbsVal::Obj(a.join(b)),
            (AbsVal::Fun(a), AbsVal::Fun(b)) if std::ptr::eq(a.body, b.body) => {
                AbsVal::Fun(a.clone())
            }
            _ => AbsVal::Top,
        }
    }
}

// ---------------------------------------------------------------------------
// The abstract interpreter
// ---------------------------------------------------------------------------

/// Node budget for a full query analysis. Abstract evaluation re-analyses
/// recursor bodies per simulated round, so this is comfortably above any
/// realistic query; exhausting it degrades the answer to `Unbounded`.
const DEFAULT_BUDGET: u64 = 200_000;

/// Budget for the cheap per-closure analysis behind the parallel-region gate.
const GATE_BUDGET: u64 = 2_000;

/// Maximum abstract call depth — a stack-overflow guard independent of the
/// node budget (deeply nested higher-order programs).
const MAX_DEPTH: u32 = 400;

/// Sequential chains (insert recursors, iterators) are simulated round by
/// round when the round count is a known constant up to this cap; beyond it
/// the symbolic recurrence takes over.
const NUMERIC_STEP_CAP: u64 = 256;

pub(crate) struct Analyzer<'a> {
    registry: &'a ExternRegistry,
    schema: BTreeMap<&'a str, ObjBound>,
    budget: u64,
    depth: u32,
    fresh: u64,
}

impl<'a> Analyzer<'a> {
    pub fn new(registry: &'a ExternRegistry, schema: &'a [(String, Type)], budget: u64) -> Self {
        Analyzer {
            registry,
            schema: schema
                .iter()
                .map(|(name, ty)| (name.as_str(), ObjBound::schema_relation(name, ty)))
                .collect(),
            budget,
            depth: 0,
            fresh: 0,
        }
    }

    fn fresh_measure(&mut self) -> String {
        self.fresh += 1;
        format!("%g{}", self.fresh)
    }

    /// Abstractly evaluate `expr`, returning a cover of its value and a
    /// work/span cost range. Mirrors `Evaluator::eval_kind` charge for
    /// charge; every arm's upper bound dominates the corresponding concrete
    /// charge sequence.
    pub fn eval(&mut self, expr: &'a Expr, env: &AbsEnv<'a>) -> (AbsVal<'a>, Cost) {
        if self.budget == 0 || self.depth >= MAX_DEPTH {
            return (AbsVal::Top, Cost::opaque());
        }
        self.budget -= 1;
        match &expr.kind {
            ExprKind::Var(x) => {
                let val = env_lookup(env, x)
                    .or_else(|| self.schema.get(x.as_str()).cloned().map(AbsVal::Obj))
                    .unwrap_or(AbsVal::Top);
                (val, Cost::leaf())
            }
            ExprKind::Lam(p, _, body) => (
                AbsVal::Fun(Rc::new(AbsClosure {
                    param: p,
                    body,
                    env: env.clone(),
                })),
                Cost::leaf(),
            ),
            ExprKind::Unit => (AbsVal::Obj(ObjBound::scalar()), Cost::leaf()),
            ExprKind::Bool(_) => (AbsVal::Obj(ObjBound::scalar()), Cost::leaf()),
            ExprKind::Const(v) => (AbsVal::Obj(ObjBound::of_value(v)), Cost::leaf()),
            ExprKind::Empty(t) => (
                AbsVal::Obj(ObjBound {
                    card: Range::exact(0),
                    size: Range::exact(1),
                    shape: Shape::Set(Rc::new(ObjBound::of_type(t))),
                }),
                Cost::leaf(),
            ),
            ExprKind::App(fe, ae) => {
                let (fv, fc) = self.eval(fe, env);
                let (av, ac) = self.eval(ae, env);
                let (rv, rc) = self.apply(&fv, av);
                (
                    rv,
                    Cost {
                        work: fc.work.add(&ac.work).add(&rc.work).add_const(1),
                        span: fc.span.add(&ac.span).add(&rc.span),
                    },
                )
            }
            ExprKind::Let(name, rhs, body) => {
                let (rv, rc) = self.eval(rhs, env);
                let inner = env_bind(env, name, rv);
                let (bv, bc) = self.eval(body, &inner);
                (
                    bv,
                    Cost {
                        work: rc.work.add(&bc.work).add_const(1),
                        span: rc.span.add(&bc.span),
                    },
                )
            }
            ExprKind::Pair(a, b) => {
                let (av, ac) = self.eval(a, env);
                let (bv, bc) = self.eval(b, env);
                let ao = av.as_obj();
                let bo = bv.as_obj();
                let size = ao.size.add(&bo.size).add_const(1);
                (
                    AbsVal::Obj(ObjBound {
                        card: Range::exact(1),
                        size,
                        shape: Shape::Pair(Rc::new(ao), Rc::new(bo)),
                    }),
                    Cost {
                        work: ac.work.add(&bc.work).add_const(1),
                        span: ac.span.max(&bc.span).add_const(1),
                    },
                )
            }
            ExprKind::Proj1(e) | ExprKind::Proj2(e) => {
                let first = matches!(expr.kind, ExprKind::Proj1(_));
                let (v, c) = self.eval(e, env);
                let out = match &v.as_obj().shape {
                    Shape::Pair(a, b) => {
                        if first {
                            (**a).clone()
                        } else {
                            (**b).clone()
                        }
                    }
                    _ => ObjBound::top(),
                };
                (
                    AbsVal::Obj(out),
                    Cost {
                        work: c.work.add_const(1),
                        span: c.span.add_const(1),
                    },
                )
            }
            ExprKind::If(cond, then, els) => {
                let (_, cc) = self.eval(cond, env);
                let (tv, tc) = self.eval(then, env);
                let (ev, ec) = self.eval(els, env);
                // Only the taken branch is evaluated: upper is the max of
                // the branch costs, lower the min.
                let branch = Cost {
                    work: tc.work.join(&ec.work),
                    span: tc.span.join(&ec.span),
                };
                (
                    tv.join(&ev),
                    Cost {
                        work: cc.work.add(&branch.work).add_const(1),
                        span: cc.span.add(&branch.span).add_const(1),
                    },
                )
            }
            ExprKind::Eq(a, b) | ExprKind::Leq(a, b) => {
                let (av, ac) = self.eval(a, env);
                let (bv, bc) = self.eval(b, env);
                let ao = av.as_obj();
                let bo = bv.as_obj();
                // Extra charge: min(|a|, |b|) in Value::size, which is ≥ 1.
                let cmp = Range::new(Poly::constant(1), ao.size.hi.upper_min(&bo.size.hi));
                (
                    AbsVal::Obj(ObjBound::scalar()),
                    Cost {
                        work: ac.work.add(&bc.work).add(&cmp).add_const(1),
                        span: ac.span.max(&bc.span).add_const(1),
                    },
                )
            }
            ExprKind::Singleton(e) => {
                let (v, c) = self.eval(e, env);
                let elem = v.as_obj();
                let size = elem.size.add_const(1);
                (
                    AbsVal::Obj(ObjBound {
                        card: Range::exact(1),
                        size,
                        shape: Shape::Set(Rc::new(elem)),
                    }),
                    Cost {
                        work: c.work.add_const(1),
                        span: c.span.add_const(1),
                    },
                )
            }
            ExprKind::Union(a, b) => {
                let (av, ac) = self.eval(a, env);
                let (bv, bc) = self.eval(b, env);
                let ao = av.as_obj();
                let bo = bv.as_obj();
                // Extra charge |a ∪ b|: at most |a| + |b|, at least max.
                let merged = Range::new(
                    lower_max(&ao.card.lo, &bo.card.lo),
                    ao.card.hi.add(&bo.card.hi),
                );
                let out = ObjBound {
                    card: merged.clone(),
                    // size(a ∪ b) = 1 + Σ ≤ (size a − 1) + (size b − 1) + 1,
                    // and the union contains each operand, so each operand's
                    // size is a lower bound.
                    size: Range::new(
                        lower_max(&ao.size.lo, &bo.size.lo),
                        ao.size.hi.add(&bo.size.hi),
                    ),
                    shape: Shape::Set(Rc::new(ao.set_elem().join(&bo.set_elem()))),
                };
                (
                    AbsVal::Obj(out),
                    Cost {
                        work: ac.work.add(&bc.work).add(&merged).add_const(1),
                        span: ac.span.max(&bc.span).add_const(1),
                    },
                )
            }
            ExprKind::IsEmpty(e) => {
                let (_, c) = self.eval(e, env);
                (
                    AbsVal::Obj(ObjBound::scalar()),
                    Cost {
                        work: c.work.add_const(1),
                        span: c.span.add_const(1),
                    },
                )
            }
            ExprKind::Ext(fe, ae) => self.eval_ext(expr, fe, ae, env),
            ExprKind::Dcr { e, f, u, arg } | ExprKind::Sru { e, f, u, arg } => {
                self.eval_union_recursor(e, f, u, None, arg, env)
            }
            ExprKind::BDcr {
                e,
                f,
                u,
                bound,
                arg,
            } => self.eval_union_recursor(e, f, u, Some(bound), arg, env),
            ExprKind::Sri { e, i, arg } | ExprKind::Esr { e, i, arg } => {
                self.eval_insert_recursor(e, i, None, arg, env)
            }
            ExprKind::BSri { e, i, bound, arg } => {
                self.eval_insert_recursor(e, i, Some(bound), arg, env)
            }
            ExprKind::LogLoop { f, set, init } => self.eval_iterator(f, None, set, init, true, env),
            ExprKind::Loop { f, set, init } => self.eval_iterator(f, None, set, init, false, env),
            ExprKind::BLogLoop {
                f,
                bound,
                set,
                init,
            } => self.eval_iterator(f, Some(bound), set, init, true, env),
            ExprKind::BLoop {
                f,
                bound,
                set,
                init,
            } => self.eval_iterator(f, Some(bound), set, init, false, env),
            ExprKind::Extern(name, args) => {
                let mut work = Range::exact(2);
                let mut span = Range::exact(1);
                for a in args {
                    let (_, c) = self.eval(a, env);
                    work = work.add(&c.work);
                    span = Range {
                        lo: span.lo,
                        hi: span.hi.join(&c.span.hi.add_const(1)),
                    };
                }
                let out = self
                    .registry
                    .get(name)
                    .map(|f| ObjBound::of_type(&f.result))
                    .unwrap_or_else(ObjBound::top);
                (AbsVal::Obj(out), Cost { work, span })
            }
        }
    }

    /// Abstract function application. Mirrors `Evaluator::apply_obj`: one
    /// unit of work for the call, the body's cost, and one extra span level.
    fn apply(&mut self, f: &AbsVal<'a>, arg: AbsVal<'a>) -> (AbsVal<'a>, Cost) {
        match f {
            AbsVal::Fun(clo) => {
                if self.budget == 0 || self.depth >= MAX_DEPTH {
                    return (AbsVal::Top, Cost::opaque());
                }
                self.depth += 1;
                let inner = env_bind(&clo.env, clo.param, arg);
                let (v, c) = self.eval(clo.body, &inner);
                self.depth -= 1;
                (
                    v,
                    Cost {
                        work: c.work.add_const(1),
                        span: c.span.add_const(1),
                    },
                )
            }
            _ => (
                AbsVal::Top,
                Cost {
                    work: Range::between(2, Bound::Unbounded),
                    span: Range::between(1, Bound::Unbounded),
                },
            ),
        }
    }

    /// Apply to a pair `(a, b)` — the combiner/step calling convention.
    fn apply2(&mut self, f: &AbsVal<'a>, a: ObjBound, b: ObjBound) -> (AbsVal<'a>, Cost) {
        let size = a.size.add(&b.size).add_const(1);
        let pair = ObjBound {
            card: Range::exact(1),
            size,
            shape: Shape::Pair(Rc::new(a), Rc::new(b)),
        };
        self.apply(f, AbsVal::Obj(pair))
    }
}

/// `⌈log₂ a⌉` for `a ≥ 2` (callers never pass 0/1).
fn ceil_log2(a: u64) -> u32 {
    u64::BITS - (a - 1).leading_zeros()
}

/// `base^k` over bounds (`k` is at most 64).
fn bound_pow(base: &Bound, k: u32) -> Bound {
    let mut out = Bound::constant(1);
    for _ in 0..k {
        out = out.mul(base);
    }
    out
}

/// Substitute an upper bound for a measure variable inside an upper bound.
fn subst_bound(b: &Bound, var: &str, replacement: &Bound) -> Bound {
    match b {
        Bound::Finite(p) if !p.mentions(var) => b.clone(),
        Bound::Finite(p) => match replacement {
            Bound::Finite(r) => Bound::Finite(p.subst(var, r).compact_upper()),
            Bound::Unbounded => Bound::Unbounded,
        },
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// The recursion prefix — operand evaluation costs plus the node's own
/// charge. Work sums; span is the *max* of the operand spans.
struct Prefix {
    work: Range,
    span: Range,
}

impl Prefix {
    fn new() -> Prefix {
        Prefix {
            work: Range::exact(1),
            span: Range::exact(0),
        }
    }

    fn absorb(&mut self, c: &Cost) {
        self.work = self.work.add(&c.work);
        self.span = self.span.max(&c.span);
    }
}

/// The closed-form size cap for an accumulator recurrence `size' ≤ A·g + R`
/// iterated `rounds` times from starting size `s0`, given an optional hard
/// cap (the bounded recursors' meet) and whether growth beyond linear is
/// tolerable (`geometric_rounds` is `Some(levels)` for the combining tree,
/// where depth is logarithmic, and `None` for sequential chains).
#[allow(clippy::too_many_arguments)]
fn solve_size_recurrence(
    sigma: &Bound,
    g: &str,
    s0: &Bound,
    rounds: &Bound,
    cap: Option<&Bound>,
    m_for_geometric: Option<&Bound>,
) -> Bound {
    if let Some(c) = cap {
        // Every round ends in `meet(·, bound)`, so the bound's size caps all
        // intermediate values regardless of the recurrence.
        return c.join(s0);
    }
    let sigma = match sigma {
        Bound::Finite(p) => p,
        Bound::Unbounded => return Bound::Unbounded,
    };
    if !sigma.mentions(g) {
        return s0.join(&Bound::Finite(sigma.clone()));
    }
    match sigma.linear_in(g) {
        None => Bound::Unbounded,
        Some((0, rest)) => s0.join(&Bound::Finite(rest)),
        Some((1, rest)) => s0.add(&rounds.mul(&Bound::Finite(rest))),
        Some((a, rest)) => match m_for_geometric {
            // Tree depth is ⌈log₂ m⌉, so A^depth ≤ A · m^⌈log₂ A⌉.
            Some(m) => Bound::constant(a)
                .mul(&bound_pow(m, ceil_log2(a)))
                .mul(&s0.join(&Bound::Finite(rest)).add_const(1)),
            // A sequential chain compounds A^n — no polynomial bound.
            None => Bound::Unbounded,
        },
    }
}

impl<'a> Analyzer<'a> {
    /// `ext(f, e)`: `f` applied once per element (independently — span takes
    /// the max), then one charge for the flattened result cardinality.
    fn eval_ext(
        &mut self,
        _expr: &'a Expr,
        fe: &'a Expr,
        ae: &'a Expr,
        env: &AbsEnv<'a>,
    ) -> (AbsVal<'a>, Cost) {
        let (fv, fc) = self.eval(fe, env);
        let (av, ac) = self.eval(ae, env);
        let arg = av.as_obj();
        let m = arg.card.clone();
        let (rv, rc) = self.apply(&fv, AbsVal::Obj(arg.set_elem()));
        let out = rv.as_obj();
        let card_hi = m.hi.mul(&out.card.hi);
        let result = ObjBound {
            card: Range::new(Poly::zero(), card_hi.clone()),
            size: Range::new(Poly::constant(1), m.hi.mul(&out.size.hi).add_const(1)),
            shape: Shape::Set(Rc::new(out.set_elem())),
        };
        let work_hi = fc
            .work
            .hi
            .add(&ac.work.hi)
            .add(&m.hi.mul(&rc.work.hi))
            .add(&card_hi)
            .add_const(1);
        let work_lo = fc
            .work
            .lo
            .add(&ac.work.lo)
            .add(&m.lo.mul(&rc.work.lo))
            .add_const(1)
            .compact_lower();
        let span_hi = fc.span.hi.add(&ac.span.hi).add(&rc.span.hi).add_const(1);
        let span_lo = fc.span.lo.add(&ac.span.lo).add_const(1);
        (
            AbsVal::Obj(result),
            Cost {
                work: Range::new(work_lo, work_hi),
                span: Range::new(span_lo, span_hi),
            },
        )
    }

    /// `dcr` / `sru` / `bdcr`: per-element singleton map, then a balanced
    /// combining tree of `m − 1` combiner calls across `⌈log₂ m⌉` levels.
    fn eval_union_recursor(
        &mut self,
        e: &'a Expr,
        f: &'a Expr,
        u: &'a Expr,
        bound: Option<&'a Expr>,
        arg: &'a Expr,
        env: &AbsEnv<'a>,
    ) -> (AbsVal<'a>, Cost) {
        let mut prefix = Prefix::new();
        let (ev, ec) = self.eval(e, env);
        prefix.absorb(&ec);
        let (fv, fc) = self.eval(f, env);
        prefix.absorb(&fc);
        let (uv, uc) = self.eval(u, env);
        prefix.absorb(&uc);
        let cap = bound.map(|b| {
            let (bval, bc) = self.eval(b, env);
            prefix.absorb(&bc);
            bval.as_obj()
        });
        let (av, ac) = self.eval(arg, env);
        prefix.absorb(&ac);
        let arg_obj = av.as_obj();
        let m = arg_obj.card.clone();

        let mut e_obj = ev.as_obj();
        if let Some(b) = &cap {
            e_obj = e_obj.cap(b);
        }

        // Leaves: f per element; every leaf costs at least the 2-unit call
        // floor, giving the work floor an m·2 term.
        let (leaf_v, leaf_c) = self.apply(&fv, AbsVal::Obj(arg_obj.set_elem()));
        let mut leaf_obj = leaf_v.as_obj();
        if let Some(b) = &cap {
            leaf_obj = leaf_obj.cap(b);
        }
        let leaves_work_hi = m.hi.mul(&leaf_c.work.hi);
        let leaves_work_lo = m.lo.scale(2);

        let (result, tree_work_hi, tree_span_hi) = match m.hi.as_const() {
            Some(mc) => self.numeric_tree(&uv, leaf_obj.join(&e_obj), mc, cap.as_ref()),
            None => self.symbolic_tree(&uv, &leaf_obj, &e_obj, &m.hi, cap.as_ref()),
        };

        let work = Range::new(
            prefix.work.lo.add(&leaves_work_lo).compact_lower(),
            prefix.work.hi.add(&leaves_work_hi).add(&tree_work_hi),
        );
        let span = Range::new(
            prefix.span.lo.add_const(1),
            prefix
                .span
                .hi
                .add(&leaf_c.span.hi)
                .add(&tree_span_hi)
                .add_const(1),
        );
        (AbsVal::Obj(result), Cost { work, span })
    }

    /// Simulate the combining tree round by round for a known leaf count.
    /// Sound for any actual `m ≤ leaves` because node bounds only grow and a
    /// shallower tree's rounds are a prefix of the simulated ones. Finite
    /// even for non-linear combiners (powerset): at most 64 rounds.
    fn numeric_tree(
        &mut self,
        u: &AbsVal<'a>,
        start: ObjBound,
        leaves: u64,
        cap: Option<&ObjBound>,
    ) -> (ObjBound, Bound, Bound) {
        let mut node = start;
        let mut width = leaves;
        let mut work = Bound::constant(0);
        let mut span = Bound::constant(0);
        while width > 1 {
            let (rv, cc) = self.apply2(u, node.clone(), node.clone());
            let mut r = rv.as_obj();
            if let Some(b) = cap {
                r = r.cap(b);
            }
            node = node.join(&r);
            work = work.add(&match &cc.work.hi {
                Bound::Finite(p) => Bound::Finite(p.scale(width / 2)),
                Bound::Unbounded => Bound::Unbounded,
            });
            span = span.add(&cc.span.hi);
            width = width.div_ceil(2);
        }
        (node, work, span)
    }

    /// Solve the combining-tree recurrence symbolically: analyse the combiner
    /// once at measure size `g`, decompose the result size as `A·g + R`, and
    /// charge `m − 1 ≤ m` calls at the closed-form maximum node size, with
    /// `⌈log₂ m⌉` levels on the span.
    fn symbolic_tree(
        &mut self,
        u: &AbsVal<'a>,
        leaf_obj: &ObjBound,
        e_obj: &ObjBound,
        m_hi: &Bound,
        cap: Option<&ObjBound>,
    ) -> (ObjBound, Bound, Bound) {
        let g = self.fresh_measure();
        let gx = measure_obj(&g);
        let (rv, cc) = self.apply2(u, gx.clone(), gx);
        let r_obj = rv.as_obj();
        let s0 = leaf_obj.size.hi.join(&e_obj.size.hi);
        let levels = m_hi.log_bound();
        let s_max = solve_size_recurrence(
            &r_obj.size.hi,
            &g,
            &s0,
            &levels,
            cap.map(|b| &b.size.hi),
            Some(m_hi),
        );
        let call_work = subst_bound(&cc.work.hi, &g, &s_max);
        let call_span = subst_bound(&cc.span.hi, &g, &s_max);
        let result = capped_set_result(&s_max, cap);
        (result, m_hi.mul(&call_work), levels.mul(&call_span))
    }

    /// `sri` / `esr` / `bsri`: a sequential chain — `n` step calls whose
    /// spans *sum*.
    fn eval_insert_recursor(
        &mut self,
        e: &'a Expr,
        i: &'a Expr,
        bound: Option<&'a Expr>,
        arg: &'a Expr,
        env: &AbsEnv<'a>,
    ) -> (AbsVal<'a>, Cost) {
        let mut prefix = Prefix::new();
        let (ev, ec) = self.eval(e, env);
        prefix.absorb(&ec);
        let (iv, ic) = self.eval(i, env);
        prefix.absorb(&ic);
        let cap = bound.map(|b| {
            let (bval, bc) = self.eval(b, env);
            prefix.absorb(&bc);
            bval.as_obj()
        });
        let (av, ac) = self.eval(arg, env);
        prefix.absorb(&ac);
        let arg_obj = av.as_obj();
        let n = arg_obj.card.clone();
        let mut acc0 = ev.as_obj();
        if let Some(b) = &cap {
            acc0 = acc0.cap(b);
        }
        let elem = arg_obj.set_elem();
        let step = |this: &mut Self, acc: ObjBound| {
            let (rv, cc) = this.apply2(&iv.clone(), elem.clone(), acc);
            (rv, cc)
        };
        self.eval_chain(prefix, acc0, n, step, cap, Shape::Top)
    }

    /// `loop` / `log-loop` / `bloop` / `blog-loop`: the body applied `|set|`
    /// or `log_rounds(|set|)` times, sequentially.
    fn eval_iterator(
        &mut self,
        f: &'a Expr,
        bound: Option<&'a Expr>,
        set: &'a Expr,
        init: &'a Expr,
        logarithmic: bool,
        env: &AbsEnv<'a>,
    ) -> (AbsVal<'a>, Cost) {
        let mut prefix = Prefix::new();
        let (fv, fc) = self.eval(f, env);
        prefix.absorb(&fc);
        let cap = bound.map(|b| {
            let (bval, bc) = self.eval(b, env);
            prefix.absorb(&bc);
            bval.as_obj()
        });
        let (sv, sc) = self.eval(set, env);
        prefix.absorb(&sc);
        let (iv, icst) = self.eval(init, env);
        prefix.absorb(&icst);
        let card = sv.as_obj().card;
        let rounds = if logarithmic {
            Range::new(
                match card.lo.as_const() {
                    Some(c) => Poly::constant(log_rounds(c as usize)),
                    None => Poly::zero(),
                },
                card.hi.log_bound(),
            )
        } else {
            card
        };
        let mut acc0 = iv.as_obj();
        if let Some(b) = &cap {
            acc0 = acc0.cap(b);
        }
        let step = |this: &mut Self, acc: ObjBound| this.apply(&fv.clone(), AbsVal::Obj(acc));
        self.eval_chain(prefix, acc0, rounds, step, cap, Shape::Top)
    }

    /// Shared chain analysis: numeric simulation for small known round
    /// counts, the `A·g + R` recurrence otherwise.
    fn eval_chain(
        &mut self,
        prefix: Prefix,
        acc0: ObjBound,
        rounds: Range,
        mut step: impl FnMut(&mut Self, ObjBound) -> (AbsVal<'a>, Cost),
        cap: Option<ObjBound>,
        result_shape: Shape,
    ) -> (AbsVal<'a>, Cost) {
        let numeric = rounds.hi.as_const().filter(|n| *n <= NUMERIC_STEP_CAP);
        let (result, chain_work_hi, chain_span_hi) = match numeric {
            Some(n) => {
                let mut acc = acc0;
                let mut work = Bound::constant(0);
                let mut span = Bound::constant(0);
                for _ in 0..n {
                    let (rv, cc) = step(self, acc.clone());
                    let mut r = rv.as_obj();
                    if let Some(b) = &cap {
                        r = r.cap(b);
                    }
                    acc = acc.join(&r);
                    work = work.add(&cc.work.hi);
                    span = span.add(&cc.span.hi);
                }
                (acc, work, span)
            }
            None => {
                let g = self.fresh_measure();
                let gx = measure_obj(&g);
                let (rv, cc) = step(self, gx);
                let r_obj = rv.as_obj();
                let s_max = solve_size_recurrence(
                    &r_obj.size.hi,
                    &g,
                    &acc0.size.hi,
                    &rounds.hi,
                    cap.as_ref().map(|b| &b.size.hi),
                    None,
                );
                let call_work = subst_bound(&cc.work.hi, &g, &s_max);
                let call_span = subst_bound(&cc.span.hi, &g, &s_max);
                let mut result = capped_set_result(&s_max, cap.as_ref());
                result.shape = match result.shape {
                    s @ (Shape::Pair(_, _) | Shape::Set(_)) => s,
                    _ => result_shape,
                };
                (result, rounds.hi.mul(&call_work), rounds.hi.mul(&call_span))
            }
        };
        let work = Range::new(
            prefix.work.lo.add(&rounds.lo.scale(2)).compact_lower(),
            prefix.work.hi.add(&chain_work_hi),
        );
        let span = Range::new(
            prefix.span.lo.add_const(1),
            prefix.span.hi.add(&chain_span_hi).add_const(1),
        );
        (AbsVal::Obj(result), Cost { work, span })
    }
}

/// The symbolic accumulator cover at measure `g`: any value of cardinality
/// and size at most `g`, with elements bounded the same way.
fn measure_obj(g: &str) -> ObjBound {
    let r = |lo: u64| Range::new(Poly::constant(lo), Bound::Finite(Poly::var(g)));
    let elem = ObjBound {
        card: r(0),
        size: r(1),
        shape: Shape::Top,
    };
    ObjBound {
        card: r(0),
        size: r(1),
        shape: Shape::Set(Rc::new(elem)),
    }
}

/// The result cover of a symbolically-solved recursion: size (and hence
/// cardinality) at most `s_max`, shaped by the hard cap when one exists.
fn capped_set_result(s_max: &Bound, cap: Option<&ObjBound>) -> ObjBound {
    match cap {
        Some(b) => b.clone().cap(b),
        None => ObjBound {
            card: Range::new(Poly::zero(), s_max.clone()),
            size: Range::new(Poly::constant(1), s_max.clone()),
            shape: Shape::Top,
        },
    }
}

// ---------------------------------------------------------------------------
// Lints
// ---------------------------------------------------------------------------

/// The lint catalog. Each lint has a stable kebab-case name (shown in
/// diagnostics) and a default severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Lint {
    /// A `let`/lambda binding that is never referenced.
    UnusedBinding,
    /// A binder that shadows a schema relation of the same name.
    ShadowedSchemaVariable,
    /// A closed subexpression inside a lambda body — re-evaluated on every
    /// application; a `let`-hoisting opportunity for the optimizer.
    ConstantSubexpression,
    /// A statically-empty set used as an operand where it makes the
    /// surrounding operation trivial.
    EmptySetOperand,
    /// A recursor combiner/step that syntactically ignores an argument it
    /// must combine — a near-certain algebraic-law violation (`wellformed`).
    IgnoredCombinerArgument,
    /// The instantiated work *floor* already exceeds the session's work
    /// limit: evaluation is guaranteed to fail with `WorkLimitExceeded`.
    DoomedWorkBound,
}

impl Lint {
    /// The stable lint name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            Lint::UnusedBinding => "unused-binding",
            Lint::ShadowedSchemaVariable => "shadowed-schema-variable",
            Lint::ConstantSubexpression => "constant-subexpression",
            Lint::EmptySetOperand => "empty-set-operand",
            Lint::IgnoredCombinerArgument => "ignored-combiner-argument",
            Lint::DoomedWorkBound => "doomed-work-bound",
        }
    }

    /// Warning lints flag rewrite opportunities; deny lints flag queries
    /// that are (almost) certainly wrong to run.
    pub fn default_severity(self) -> Severity {
        match self {
            Lint::IgnoredCombinerArgument | Lint::DoomedWorkBound => Severity::Deny,
            _ => Severity::Warning,
        }
    }
}

/// Finding severity: `Warning` surfaces through `PreparedQuery::analysis`;
/// `Deny` additionally rejects the query at prepare under a deny policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Deny,
}

/// One lint finding, carrying the offending node's source span when the
/// query was parsed from text.
#[derive(Debug, Clone)]
pub struct Finding {
    pub lint: Lint,
    pub severity: Severity,
    pub message: String,
    pub span: Option<Span>,
}

impl Finding {
    fn new(lint: Lint, message: String, span: Option<Span>) -> Finding {
        Finding {
            lint,
            severity: lint.default_severity(),
            message,
            span,
        }
    }
}

/// Is the expression *statically* the empty set?
fn statically_empty(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Empty(_) => true,
        ExprKind::Const(Value::Set(s)) => s.is_empty(),
        ExprKind::Union(a, b) => statically_empty(a) && statically_empty(b),
        ExprKind::Ext(_, arg) => statically_empty(arg),
        _ => false,
    }
}

fn is_var(e: &Expr, name: &str) -> bool {
    matches!(&e.kind, ExprKind::Var(x) if x == name)
}

fn uses_var(e: &Expr, name: &str) -> bool {
    free_vars(e).contains(name)
}

/// Which components of the pair parameter `p` does `body` use? Sees through
/// the `lam2` desugaring (`let a = π₁ p in let b = π₂ p in …` counts a
/// component as used only when its `let` binder is), and is conservative
/// toward "used" everywhere else.
fn pair_component_use(p: &str, body: &Expr) -> (bool, bool) {
    fn walk(p: &str, e: &Expr, used: &mut (bool, bool)) {
        match &e.kind {
            ExprKind::Var(x) if x == p => *used = (true, true),
            ExprKind::Proj1(inner) if is_var(inner, p) => used.0 = true,
            ExprKind::Proj2(inner) if is_var(inner, p) => used.1 = true,
            ExprKind::Let(name, rhs, inner) => {
                match &rhs.kind {
                    ExprKind::Proj1(arg) if is_var(arg, p) => {
                        if uses_var(inner, name) {
                            used.0 = true;
                        }
                    }
                    ExprKind::Proj2(arg) if is_var(arg, p) => {
                        if uses_var(inner, name) {
                            used.1 = true;
                        }
                    }
                    _ => walk(p, rhs, used),
                }
                if name != p {
                    walk(p, inner, used);
                }
            }
            _ => {
                for child in e.children() {
                    if child.binds == Some(p) {
                        continue; // shadowed below here
                    }
                    walk(p, child.expr, used);
                }
            }
        }
    }
    let mut used = (false, false);
    walk(p, body, &mut used);
    used
}

/// The syntactic lint pass.
fn lint_pass(expr: &Expr, schema: &[(String, Type)], findings: &mut Vec<Finding>) {
    fn empty_operand(e: &Expr, what: &str, findings: &mut Vec<Finding>) {
        if statically_empty(e) {
            findings.push(Finding::new(
                Lint::EmptySetOperand,
                what.to_string(),
                e.span,
            ));
        }
    }

    fn walk(expr: &Expr, schema: &[(String, Type)], in_lambda: bool, findings: &mut Vec<Finding>) {
        // Constant subexpressions: only meaningful inside a lambda body
        // (that's when they are re-evaluated per application), only for
        // non-trivial non-literal nodes, and flagged maximally — a flagged
        // node's children are not revisited.
        let literal = matches!(
            expr.kind,
            ExprKind::Const(_)
                | ExprKind::Bool(_)
                | ExprKind::Unit
                | ExprKind::Empty(_)
                | ExprKind::Var(_)
                | ExprKind::Lam(_, _, _)
        );
        if in_lambda && !literal && expr.size() >= 4 && free_vars(expr).is_empty() {
            findings.push(Finding::new(
                Lint::ConstantSubexpression,
                "this subexpression is constant but sits under a lambda, so it is \
                 re-evaluated on every application; hoist it into a `let` outside"
                    .to_string(),
                expr.span,
            ));
            return;
        }

        match &expr.kind {
            ExprKind::Lam(p, _, body) | ExprKind::Let(p, _, body) if !p.starts_with('%') => {
                if !uses_var(body, p) {
                    findings.push(Finding::new(
                        Lint::UnusedBinding,
                        format!("binding `{p}` is never used"),
                        expr.span,
                    ));
                }
                if schema.iter().any(|(name, _)| name == p) {
                    findings.push(Finding::new(
                        Lint::ShadowedSchemaVariable,
                        format!("binding `{p}` shadows the schema relation of the same name"),
                        expr.span,
                    ));
                }
            }
            ExprKind::Union(a, b) => {
                empty_operand(
                    a,
                    "operand of `union` is statically empty — the union is just the other operand",
                    findings,
                );
                empty_operand(
                    b,
                    "operand of `union` is statically empty — the union is just the other operand",
                    findings,
                );
            }
            ExprKind::Ext(_, arg) => empty_operand(
                arg,
                "`ext` over a statically-empty set always yields the empty set",
                findings,
            ),
            ExprKind::Dcr { u, arg, .. }
            | ExprKind::Sru { u, arg, .. }
            | ExprKind::BDcr { u, arg, .. } => {
                empty_operand(
                    arg,
                    "recursing over a statically-empty set always yields the zero value `e`",
                    findings,
                );
                if let ExprKind::Lam(p, _, body) = &u.kind {
                    let (first, second) = pair_component_use(p, body);
                    if !(first && second) {
                        let which = if first { "second" } else { "first" };
                        findings.push(Finding::new(
                            Lint::IgnoredCombinerArgument,
                            format!(
                                "combiner ignores its {which} argument — `dcr`/`sru` require an \
                                 associative-commutative combiner with identity `e` (the \
                                 well-formedness laws), which an argument-dropping combiner \
                                 almost certainly violates"
                            ),
                            u.span.or(expr.span),
                        ));
                    }
                }
            }
            ExprKind::Sri { i, arg, .. }
            | ExprKind::Esr { i, arg, .. }
            | ExprKind::BSri { i, arg, .. } => {
                empty_operand(
                    arg,
                    "recursing over a statically-empty set always yields the zero value `e`",
                    findings,
                );
                // The element may legitimately be ignored (e.g. a parity flip
                // per element); dropping the *accumulator* discards all prior
                // work and breaks insert-commutativity.
                if let ExprKind::Lam(p, _, body) = &i.kind {
                    let (_, acc_used) = pair_component_use(p, body);
                    if !acc_used {
                        findings.push(Finding::new(
                            Lint::IgnoredCombinerArgument,
                            "insert step ignores its accumulator — every element would \
                             overwrite the result, violating the insert-commutativity law"
                                .to_string(),
                            i.span.or(expr.span),
                        ));
                    }
                }
            }
            ExprKind::LogLoop { set, .. }
            | ExprKind::Loop { set, .. }
            | ExprKind::BLogLoop { set, .. }
            | ExprKind::BLoop { set, .. } => empty_operand(
                set,
                "iterating over a statically-empty counting set applies the body zero times",
                findings,
            ),
            _ => {}
        }

        for child in expr.children() {
            let entered_lambda =
                in_lambda || child.iterated || matches!(expr.kind, ExprKind::Lam(_, _, _));
            walk(child.expr, schema, entered_lambda, findings);
        }
    }

    walk(expr, schema, false, findings);
}

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

/// The symbolic cost bounds of one query, in the cardinalities of its free
/// schema relations (a variable `r` in the rendered form reads as "the
/// cardinality of relation `r`", e.g. `work <= 4*r + 3`).
///
/// # Floor-routing audit (coarsening directions)
///
/// The two `MAX_TERMS` compactions coarsen in *opposite* directions:
/// [`Poly::compact_upper`] may only **grow** a polynomial (sound for the
/// `work`/`span` upper bounds) and [`Poly::compact_lower`] may only
/// **shrink** one (sound for the floors). An upper-coarsened floor would be
/// unsound — it could push `work_floor_min` past a session's `max_work` and
/// make deny-policy rejection (or the rewrite engine's cost gate) fire on
/// queries that are actually fine. The invariants the abstract interpreter
/// maintains, audited end to end:
///
/// * `work_floor`/`span_floor` (`Range::lo`) are plain [`Poly`]s and flow
///   only through the exact, uncompacted `Poly::add`/`Poly::mul`/
///   [`Poly::scale`] plus [`Poly::compact_lower`], `lower_max` and
///   `lower_min` (which *select* an operand, never coarsen one).
/// * [`Bound::add`]/[`Bound::mul`] and the `subst_bound` substitution path
///   call [`Poly::compact_upper`] (and the monotone [`Poly::subst`], which
///   is itself upper-only) — they are reachable **exclusively** from
///   `Range::hi` upper bounds, never from floors.
/// * Saturating coefficient arithmetic is sound in both directions: a
///   saturated floor coefficient is `≤` the true sum (still a lower bound),
///   and a saturated upper coefficient still dominates any measured
///   `u64` cost.
///
/// The `compact_lower(p) ≤ p ≤ compact_upper(p)` sandwich is pinned under
/// `MAX_TERMS` pressure by a proptest in `tests/bound_props.rs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostBound {
    /// Upper bound on `CostStats::work`.
    pub work: Bound,
    /// Upper bound on `CostStats::span`.
    pub span: Bound,
    /// Guaranteed lower bound on the work of any *completed* evaluation.
    pub work_floor: Poly,
    /// Guaranteed lower bound on the span of any completed evaluation.
    pub span_floor: Poly,
}

impl CostBound {
    /// The unconditional work minimum — the floor with every relation
    /// cardinality at zero. If this exceeds a session's `max_work`, the
    /// query cannot complete: evaluation is guaranteed to abort with
    /// `WorkLimitExceeded`.
    pub fn work_floor_min(&self) -> u64 {
        self.work_floor.eval_at_zero()
    }
}

impl fmt::Display for CostBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "work <= {}, span <= {}", self.work, self.span)
    }
}

/// The full result of analysing one query at prepare time.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Symbolic work/span bounds.
    pub cost: CostBound,
    /// Lint findings, in source order.
    pub findings: Vec<Finding>,
}

impl QueryAnalysis {
    /// The findings that reject the query under a deny-level lint policy.
    pub fn deny_findings(&self) -> impl Iterator<Item = &Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Deny)
    }
}

/// Analyse a query against a schema: infer symbolic work/span bounds by
/// abstract interpretation of the evaluator's cost model, and run the lint
/// pass. Total: never panics, never diverges (node budget + depth guard),
/// degrades to `Bound::Unbounded` instead of guessing.
pub fn analyze_query(
    expr: &Expr,
    schema: &[(String, Type)],
    registry: &ExternRegistry,
) -> QueryAnalysis {
    let mut analyzer = Analyzer::new(registry, schema, DEFAULT_BUDGET);
    let (_, cost) = analyzer.eval(expr, &None);
    let cost = CostBound {
        work: cost.work.hi,
        span: cost.span.hi,
        work_floor: cost.work.lo,
        span_floor: cost.span.lo,
    };
    let mut findings = Vec::new();
    lint_pass(expr, schema, &mut findings);
    QueryAnalysis { cost, findings }
}

/// The per-application cost estimate behind the evaluator's parallel-region
/// gate: the closure body's static work bound when the analyser can pin a
/// finite constant, else the legacy `1 + body size` heuristic. Memoised per
/// closure by the evaluator, so the (cheap, gate-budgeted) analysis runs at
/// most once per distinct lambda.
pub(crate) fn region_gate_cost(body: &Expr) -> u64 {
    let registry = ExternRegistry::standard();
    let mut analyzer = Analyzer::new(&registry, &[], GATE_BUDGET);
    let (_, cost) = analyzer.eval(body, &None);
    match cost.work.hi.eval_closed() {
        Some(w) => w.max(1),
        None => 1 + body.size() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_with_stats, Evaluator};
    use crate::expr::Expr;

    fn analyze_closed(expr: &Expr) -> QueryAnalysis {
        analyze_query(expr, &[], &ExternRegistry::standard())
    }

    /// Assert `floor ≤ measured ≤ bound` for a closed query on the default
    /// sequential evaluator.
    fn assert_sound(expr: &Expr) {
        let (_, stats) = eval_with_stats(expr).expect("query evaluates");
        let analysis = analyze_closed(expr);
        let work_hi = analysis
            .cost
            .work
            .eval_closed()
            .expect("closed query has a closed work bound");
        let span_hi = analysis
            .cost
            .span
            .eval_closed()
            .expect("closed query has a closed span bound");
        assert!(
            stats.work <= work_hi,
            "work {} exceeds bound {work_hi}",
            stats.work
        );
        assert!(
            stats.span <= span_hi,
            "span {} exceeds bound {span_hi}",
            stats.span
        );
        assert!(
            analysis.cost.work_floor_min() <= stats.work,
            "work floor {} exceeds measured {}",
            analysis.cost.work_floor_min(),
            stats.work
        );
        assert!(
            analysis.cost.span_floor.eval_at_zero() <= stats.span,
            "span floor exceeds measured span"
        );
    }

    #[test]
    fn poly_algebra_and_display() {
        let p = Poly::var("|r|")
            .mul(&Poly::var("|r|"))
            .scale(3)
            .add_const(5);
        assert_eq!(p.to_string(), "3*|r|^2 + 5");
        assert_eq!(p.eval(&|_| Some(4)), Some(53));
        assert_eq!(Poly::log_var("|r|").eval(&|_| Some(8)), Some(4));
        assert_eq!(Poly::zero().to_string(), "0");
        let (a, rest) = Poly::var("g").scale(2).add_const(7).linear_in("g").unwrap();
        assert_eq!(a, 2);
        assert_eq!(rest.as_const(), Some(7));
        assert!(Poly::var("g").mul(&Poly::var("g")).linear_in("g").is_none());
    }

    #[test]
    fn log_bound_dominates_log_rounds() {
        // log_bound must over-approximate log_rounds of the polynomial's
        // value at every point.
        let p = Poly::var("n").mul(&Poly::var("n")).scale(3).add_const(17);
        let lb = p.log_bound();
        for n in [0u64, 1, 2, 5, 100, 4096] {
            let val = p.eval(&|_| Some(n)).unwrap();
            let bound = lb.eval(&|_| Some(n)).unwrap();
            assert!(
                log_rounds(val as usize) <= bound,
                "n={n}: log_rounds({val}) > {bound}"
            );
        }
    }

    #[test]
    fn closed_query_bounds_are_sound() {
        let union = Expr::union(
            Expr::singleton(Expr::atom(1)),
            Expr::singleton(Expr::atom(2)),
        );
        assert_sound(&union);

        let ext = Expr::ext(
            Expr::lam("x", Type::Base, Expr::singleton(Expr::var("x"))),
            Expr::constant(Value::atom_set(vec![1, 2, 3, 4, 5])),
        );
        assert_sound(&ext);

        // A dcr computing the union of singletons — exercises the tree.
        let ty = Type::set(Type::Base);
        let dcr = Expr::dcr(
            Expr::empty(Type::Base),
            Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y"))),
            Expr::lam2(
                "a",
                "b",
                Type::prod(ty.clone(), ty),
                Expr::union(Expr::var("a"), Expr::var("b")),
            ),
            Expr::constant(Value::atom_set(0..13)),
        );
        assert_sound(&dcr);

        // An insert recursor summing via extern arithmetic.
        let nat_pair = Type::prod(Type::Base, Type::Nat);
        let sri = Expr::sri(
            Expr::nat(0),
            Expr::lam2(
                "x",
                "acc",
                Type::prod(Type::Base, Type::Nat),
                Expr::extern_call(
                    "nat_add",
                    vec![
                        Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
                        Expr::var("acc"),
                    ],
                ),
            ),
            Expr::constant(Value::atom_set(vec![3, 1, 4, 1, 5])),
        );
        let _ = nat_pair;
        assert_sound(&sri);

        // An iterator doubling a counter log-many times.
        let log_loop = Expr::log_loop(
            Expr::lam(
                "n",
                Type::Nat,
                Expr::extern_call("nat_add", vec![Expr::var("n"), Expr::var("n")]),
            ),
            Expr::constant(Value::atom_set(0..9)),
            Expr::nat(1),
        );
        assert_sound(&log_loop);
    }

    #[test]
    fn symbolic_bound_covers_concrete_cardinalities() {
        // ext(λx. {x}, r) over a schema relation: the bound is symbolic in
        // |r| and must dominate the measured cost at every instantiation.
        let schema = vec![("r".to_string(), Type::set(Type::Base))];
        let expr = Expr::ext(
            Expr::lam("x", Type::Base, Expr::singleton(Expr::var("x"))),
            Expr::var("r"),
        );
        let analysis = analyze_query(&expr, &schema, &ExternRegistry::standard());
        let work = analysis.cost.work.clone();
        assert!(
            work.as_poly().expect("finite").mentions("r"),
            "bound should be symbolic in |r|: {work}"
        );
        for n in [0u64, 1, 7, 32] {
            let binding = vec![("r".to_string(), Value::atom_set(0..n))];
            let mut ev = Evaluator::default();
            ev.eval_with_bindings(&expr, &binding).expect("evaluates");
            let measured = ev.stats().work;
            let bound = work.eval(&|name| (name == "r").then_some(n)).unwrap();
            assert!(
                measured <= bound,
                "|r|={n}: measured {measured} > bound {bound}"
            );
            assert!(analysis.cost.work_floor.eval(&|_| Some(n)).unwrap() <= measured);
        }
    }

    #[test]
    fn doomed_floor_exceeds_tiny_budget() {
        let expr = Expr::union(
            Expr::singleton(Expr::atom(1)),
            Expr::singleton(Expr::atom(2)),
        );
        let analysis = analyze_closed(&expr);
        // The concrete evaluation charges 7 units; the floor must sit in
        // (3, 7] for the doomed check to fire on a 3-unit budget.
        let floor = analysis.cost.work_floor_min();
        assert!(floor > 3, "floor {floor} too weak to catch max_work = 3");
        let (_, stats) = eval_with_stats(&expr).unwrap();
        assert!(floor <= stats.work);
    }

    #[test]
    fn lints_fire_and_classify() {
        // Unused binding + shadowed schema variable.
        let schema = vec![("r".to_string(), Type::set(Type::Base))];
        let expr = Expr::let_in("r", Expr::singleton(Expr::atom(1)), Expr::atom(2));
        let analysis = analyze_query(&expr, &schema, &ExternRegistry::standard());
        let lints: Vec<Lint> = analysis.findings.iter().map(|f| f.lint).collect();
        assert!(lints.contains(&Lint::UnusedBinding));
        assert!(lints.contains(&Lint::ShadowedSchemaVariable));
        assert!(analysis.deny_findings().next().is_none());

        // Empty union operand.
        let expr = Expr::union(Expr::empty(Type::Base), Expr::singleton(Expr::atom(1)));
        let analysis = analyze_closed(&expr);
        assert!(analysis
            .findings
            .iter()
            .any(|f| f.lint == Lint::EmptySetOperand));

        // A combiner that drops its first argument: deny.
        let ty = Type::set(Type::Base);
        let expr = Expr::dcr(
            Expr::empty(Type::Base),
            Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y"))),
            Expr::lam2("a", "b", Type::prod(ty.clone(), ty), Expr::var("b")),
            Expr::constant(Value::atom_set(vec![1, 2, 3])),
        );
        let analysis = analyze_closed(&expr);
        let deny: Vec<&Finding> = analysis.deny_findings().collect();
        assert_eq!(deny.len(), 1);
        assert_eq!(deny[0].lint, Lint::IgnoredCombinerArgument);

        // The same shape using both arguments is clean.
        let ty = Type::set(Type::Base);
        let expr = Expr::dcr(
            Expr::empty(Type::Base),
            Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y"))),
            Expr::lam2(
                "a",
                "b",
                Type::prod(ty.clone(), ty),
                Expr::union(Expr::var("a"), Expr::var("b")),
            ),
            Expr::constant(Value::atom_set(vec![1, 2, 3])),
        );
        assert!(analyze_closed(&expr).deny_findings().next().is_none());

        // An insert step may ignore the element but not the accumulator.
        let step_ignores_elem = Expr::sri(
            Expr::nat(0),
            Expr::lam2(
                "x",
                "acc",
                Type::prod(Type::Base, Type::Nat),
                Expr::extern_call("nat_add", vec![Expr::var("acc"), Expr::nat(1)]),
            ),
            Expr::constant(Value::atom_set(vec![1, 2])),
        );
        assert!(analyze_closed(&step_ignores_elem)
            .deny_findings()
            .next()
            .is_none());
        let step_ignores_acc = Expr::sri(
            Expr::nat(0),
            Expr::lam2(
                "x",
                "acc",
                Type::prod(Type::Base, Type::Nat),
                Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
            ),
            Expr::constant(Value::atom_set(vec![1, 2])),
        );
        assert!(analyze_closed(&step_ignores_acc)
            .deny_findings()
            .next()
            .is_some());

        // Constant subexpression under a lambda.
        let expr = Expr::ext(
            Expr::lam(
                "x",
                Type::Base,
                Expr::union(
                    Expr::singleton(Expr::atom(7)),
                    Expr::singleton(Expr::atom(8)),
                ),
            ),
            Expr::constant(Value::atom_set(vec![1, 2])),
        );
        assert!(analyze_closed(&expr)
            .findings
            .iter()
            .any(|f| f.lint == Lint::ConstantSubexpression));
    }

    #[test]
    fn region_gate_cost_is_finite_for_simple_bodies() {
        let body = Expr::singleton(Expr::var("x"));
        assert_eq!(region_gate_cost(&body), 2);
        // Bodies the analyser cannot bound fall back to the size heuristic.
        let opaque = Expr::union(Expr::var("a"), Expr::var("b"));
        assert_eq!(region_gate_cost(&opaque), 1 + opaque.size() as u64);
    }
}
