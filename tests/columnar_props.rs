//! Property-based equivalence of the two `VSet` representations.
//!
//! `VSet::from_iter` promotes large flat-shaped element sets to the columnar
//! (word-row) representation while `VSet::from_iter_boxed` pins the boxed
//! one; every observable behaviour — equality, the lifted linear order,
//! hashing, the canonical printed form, membership, insertion, and the set
//! algebra — must be identical between the two, including with mixed
//! representations on the two sides of a binary operation.

use ncql::object::{FlatShape, VSet, Value};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

fn fingerprint(s: &VSet) -> u64 {
    let mut h = DefaultHasher::new();
    s.hash(&mut h);
    h.finish()
}

/// Random flat-shaped rows: nested pairs of atoms, bools, and nats. The
/// element pool is kept small so duplicate elements (and equal sets built
/// from different input orders) actually occur.
fn arb_flat_rows() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec((0u64..24, any::<bool>(), 0u64..6), 0..64).prop_map(|rows| {
        rows.into_iter()
            .map(|(a, b, n)| {
                Value::pair(Value::pair(Value::Atom(a), Value::Bool(b)), Value::Nat(n))
            })
            .collect()
    })
}

fn arb_atom_rows() -> impl Strategy<Value = Vec<Value>> {
    proptest::collection::vec(0u64..40, 0..50)
        .prop_map(|xs| xs.into_iter().map(Value::Atom).collect())
}

/// Every pairwise observation on the four representation combinations of the
/// same two mathematical sets must agree.
fn assert_equivalent(xs: Vec<Value>, ys: Vec<Value>) {
    let (ac, bc) = (VSet::from_iter(xs.clone()), VSet::from_iter(ys.clone()));
    let (ab, bb) = (VSet::from_iter_boxed(xs), VSet::from_iter_boxed(ys));
    // The two representations of one set are indistinguishable.
    prop_assert_eq!(&ac, &ab);
    prop_assert_eq!(fingerprint(&ac), fingerprint(&ab));
    prop_assert_eq!(
        Value::Set(ac.clone()).to_string(),
        Value::Set(ab.clone()).to_string()
    );
    prop_assert_eq!(
        Value::Set(ac.clone()).cmp(&Value::Set(ab.clone())),
        Ordering::Equal
    );
    // Ordering between *different* sets is representation-independent.
    prop_assert_eq!(
        Value::Set(ac.clone()).cmp(&Value::Set(bc.clone())),
        Value::Set(ab.clone()).cmp(&Value::Set(bb.clone()))
    );
    // The set algebra agrees on every representation pairing.
    for (x, y) in [(&ac, &bc), (&ac, &bb), (&ab, &bc), (&ab, &bb)] {
        prop_assert_eq!(x.union(y), ac.union(&bc));
        prop_assert_eq!(x.intersect(y), ac.intersect(&bc));
        prop_assert_eq!(x.difference(y), ac.difference(&bc));
        prop_assert_eq!(x.is_subset_of(y), ab.is_subset_of(&bb));
    }
    // Membership sees exactly the same elements.
    for e in bc.iter() {
        prop_assert_eq!(ac.contains(e), ab.contains(e));
    }
    // Insertion preserves canonical form and equivalence.
    let (mut ic, mut ib) = (ac.clone(), ab.clone());
    for e in bc.iter() {
        prop_assert_eq!(ic.insert(e.clone()), ib.insert(e.clone()));
        prop_assert_eq!(&ic, &ib);
    }
    prop_assert_eq!(ic, ac.union(&bc));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn columnar_and_boxed_sets_are_observably_identical(
        xs in arb_flat_rows(),
        ys in arb_flat_rows(),
    ) {
        assert_equivalent(xs, ys);
    }

    #[test]
    fn scalar_sets_are_observably_identical(
        xs in arb_atom_rows(),
        ys in arb_atom_rows(),
    ) {
        assert_equivalent(xs, ys);
    }

    #[test]
    fn union_many_is_canonical_for_any_shard_split(
        rows in arb_flat_rows(),
        cuts in proptest::collection::vec(0usize..8, 0..8),
    ) {
        // Split the rows into shards at pseudo-random boundaries; the merged
        // union must equal the set built from the undivided input.
        let expected = VSet::from_iter(rows.clone());
        let mut shards: Vec<VSet> = Vec::new();
        let mut rest = rows;
        for cut in cuts {
            let take = cut.min(rest.len());
            let tail = rest.split_off(take);
            shards.push(VSet::from_iter(rest));
            rest = tail;
        }
        shards.push(VSet::from_iter(rest));
        prop_assert_eq!(VSet::union_many(shards), expected);
    }

    #[test]
    fn row_encoding_orders_like_values(
        a in (0u64..64, any::<bool>(), 0u64..64),
        b in (0u64..64, any::<bool>(), 0u64..64),
    ) {
        // The columnar claim in one property: same-shape rows compare by
        // words exactly as their decoded values compare by the lifted order.
        let mk = |(x, f, n): (u64, bool, u64)| {
            Value::pair(Value::Atom(x), Value::pair(Value::Bool(f), Value::Nat(n)))
        };
        let (va, vb) = (mk(a), mk(b));
        let shape = FlatShape::of_value(&va).expect("flat");
        let (mut ra, mut rb) = (Vec::new(), Vec::new());
        prop_assert!(shape.encode_into(&va, &mut ra));
        prop_assert!(shape.encode_into(&vb, &mut rb));
        prop_assert_eq!(ra.cmp(&rb), va.cmp(&vb));
        prop_assert_eq!(shape.decode(&ra), va);
    }
}
