//! The NC query language of Suciu & Breazu-Tannen (1994): the nested relational
//! algebra NRA (§3) extended with recursion on sets (§2) and the logarithmic
//! iterators of §7.1.
//!
//! The crate provides:
//!
//! * [`expr::Expr`] — the abstract syntax of the language: the NRA constructs of
//!   §3 (tuples, singletons, union, emptiness test, conditional, λ-abstraction,
//!   application, `ext`), the order predicate `≤` that makes databases *ordered*,
//!   the four recursion forms on sets (`sru`, `sri`, `dcr`, `esr`), their bounded
//!   variants (`bdcr`, `bsri`), the iterators (`loop`, `log-loop`, `bloop`,
//!   `blog-loop`), and external functions Σ (Proposition 6.3).
//! * [`mod@typecheck`] — a bidirectional-ish type checker for the language, including
//!   the PS-type side conditions of the bounded constructs.
//! * [`eval`] — a reference evaluator instrumented with a **work/span (PRAM) cost
//!   model**. The span of a `dcr` combining tree is logarithmic in the set size,
//!   the span of `ext` is one parallel step plus the maximum over its element
//!   computations, and the span of `sri` is linear — this is exactly the
//!   observable difference between the NC language (Theorems 6.1/6.2) and the
//!   PTIME language (Proposition 6.6).
//! * [`parallel`] — the parallel evaluation backend: with
//!   `EvalConfig::parallelism` set (or through [`parallel::ParallelEvaluator`]),
//!   the `ext` element map and the `dcr` leaf map and combining-tree rounds are
//!   forked onto `ncql-pram`'s persistent work-stealing pool, with a
//!   cost-model-driven cutover so small regions stay sequential and a
//!   thread-budget semaphore so nested regions borrow idle workers. Values and
//!   cost statistics are bit-identical to the sequential backend.
//! * [`analysis`] — free variables, expression size, and the *depth of recursion
//!   nesting* of §3, which stratifies the language into the ACᵏ levels.
//! * [`analyze`] — prepare-time static analysis: symbolic work/span upper
//!   bounds in the schema-relation cardinalities (mirroring [`eval`]'s cost
//!   model, with the `dcr` combining tree contributing a log factor to the
//!   span), a guaranteed work floor for rejecting doomed queries, and a
//!   span-aware lint pass.
//! * [`rewrite`] — the algebraic optimizer: a fixpoint rewrite engine
//!   (constant folding, ext-fusion, filter pushdown, common-subexpression
//!   hoisting) whose every rewrite is gated by the [`analyze`] cost model so
//!   a plan's work/span guarantee can only improve.
//! * [`wellformed`] — the bounded checker for the algebraic preconditions
//!   (associativity, commutativity, identity) of `dcr`/`sru` instances; the
//!   general problem is Π⁰₁-complete (§2), so the checker works over a finite
//!   carrier sampled from a concrete input.
//! * [`derived`] — the derived operations the paper lists as expressible in NRA:
//!   set intersection and difference, cartesian product, relational projections,
//!   selections, relation composition, nest/unnest, membership, and friends.
//! * [`externs`] — the external-function registry Σ (arithmetic and aggregates)
//!   used in the Proposition 6.3 experiments.
//! * [`kernel`] — compiled row kernels: `ext` bodies built from projections,
//!   pairs, scalar comparisons/arithmetic and constants over flat-shaped
//!   input lower to a register program executed directly over the columnar
//!   word rows, with work/span accounting bit-identical to the interpreter
//!   and a clean fallback for everything unliftable.

pub mod analysis;
pub mod analyze;
pub mod derived;
pub mod error;
pub mod eval;
pub mod expr;
pub mod externs;
pub mod kernel;
pub mod parallel;
pub mod rewrite;
pub mod span;
pub mod typecheck;
pub mod wellformed;

pub use analyze::{analyze_query, Bound, CostBound, Finding, Lint, Poly, QueryAnalysis, Severity};
pub use error::{EvalError, TypeError, TypeErrorKind};
pub use eval::{CancelToken, CostStats, EvalConfig, Evaluator};
pub use expr::{Expr, ExprKind};
pub use kernel::{kernel_stats, KernelSite, KernelStats};
pub use parallel::{eval_parallel, normalize_parallelism, parallelism_from_env, ParallelEvaluator};
pub use rewrite::{optimize, FiredRewrite, OptLevel, RewriteOutcome};
pub use span::Span;
pub use typecheck::{typecheck, typecheck_closed, TypeEnv};

/// Convenient result alias for evaluation.
pub type EvalResult<T> = Result<T, EvalError>;
