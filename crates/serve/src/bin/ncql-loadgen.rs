//! `ncql-loadgen`: concurrent load against an `ncql-served` instance, with a
//! latency-percentile report written to `BENCH_serve.json`.
//!
//! ```text
//! ncql-loadgen [--addr HOST:PORT] [--clients N] [--requests N]
//!              [--deadline-ms MS] [--out PATH]
//! ```
//!
//! Without `--addr` the generator self-hosts: it starts an in-process server
//! (configured from the `NCQL_SERVE_*` environment) and aims the clients at
//! it, which is what the CI smoke leg and quick local runs use. `busy`
//! answers are retried with backoff and counted separately from errors; the
//! process exits non-zero if any request ultimately failed, so "zero errors"
//! is scriptable.

use ncql_engine::SessionBuilder;
use ncql_serve::loadgen::{run_load, LoadConfig};
use ncql_serve::{ServeConfig, Server};
use std::net::SocketAddr;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr: Option<String> = None;
    let mut out_path = "BENCH_serve.json".to_string();
    let mut config = LoadConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = Some(a),
                None => return usage("--addr needs a HOST:PORT value"),
            },
            "--clients" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.clients = n,
                None => return usage("--clients needs an integer"),
            },
            "--requests" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) => config.requests_per_client = n,
                None => return usage("--requests needs an integer"),
            },
            "--deadline-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(ms) => config.deadline_ms = Some(ms),
                None => return usage("--deadline-ms needs an integer"),
            },
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => return usage("--out needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: ncql-loadgen [--addr HOST:PORT] [--clients N] [--requests N] \
                     [--deadline-ms MS] [--out PATH]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag `{other}`")),
        }
    }

    // Self-host when no address was given; the handle keeps the in-process
    // server alive for the duration of the run.
    let mut self_hosted = None;
    let target: SocketAddr = match addr {
        Some(addr) => match addr.parse() {
            Ok(addr) => addr,
            Err(e) => return usage(&format!("bad --addr `{addr}`: {e}")),
        },
        None => {
            let session = SessionBuilder::from_env().build();
            let server = match Server::bind(ServeConfig::from_env(), session) {
                Ok(server) => server,
                Err(e) => {
                    eprintln!("ncql-loadgen: self-host bind failed: {e}");
                    return ExitCode::FAILURE;
                }
            };
            match server.spawn() {
                Ok(handle) => {
                    let addr = handle.addr();
                    self_hosted = Some(handle);
                    addr
                }
                Err(e) => {
                    eprintln!("ncql-loadgen: self-host spawn failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    eprintln!(
        "ncql-loadgen: {} clients x {} requests against {target}{}",
        config.clients,
        config.requests_per_client,
        if self_hosted.is_some() {
            " (self-hosted)"
        } else {
            ""
        }
    );
    let report = run_load(target, &config);
    if let Some(handle) = self_hosted {
        handle.shutdown();
    }

    println!(
        "ok {} / errors {} / busy retries {} in {:?} ({:.0} req/s)",
        report.ok,
        report.errors,
        report.busy_retries,
        report.elapsed,
        report.throughput_rps()
    );
    println!(
        "latency us: p50 {} / p95 {} / p99 {} / max {} / mean {}",
        report.latency.p50_us,
        report.latency.p95_us,
        report.latency.p99_us,
        report.latency.max_us,
        report.latency.mean_us
    );
    for sample in &report.error_samples {
        eprintln!("ncql-loadgen: error sample: {sample}");
    }

    let payload = format!("{}\n", report.to_json());
    if let Err(e) = std::fs::write(&out_path, payload) {
        eprintln!("ncql-loadgen: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("ncql-loadgen: wrote {out_path}");

    if report.errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("ncql-loadgen: {problem}");
    eprintln!(
        "usage: ncql-loadgen [--addr HOST:PORT] [--clients N] [--requests N] \
         [--deadline-ms MS] [--out PATH]"
    );
    ExitCode::FAILURE
}
