//! `ncql-serve`: a concurrent TCP query server for the NC query language,
//! with structured wire diagnostics, per-request deadlines and budgets, and
//! admission control.
//!
//! The paper's promise is a query language whose evaluations are *small* —
//! NC-parallelizable, polylog depth — which makes the natural deployment
//! shape many concurrent cheap queries against one shared engine. This crate
//! is that serving layer, built std-only (no async runtime) on the
//! workspace's existing concurrency story:
//!
//! * [`Server`] accepts TCP connections and handles each on its own thread;
//!   every handler shares one [`Session`](ncql_engine::Session) — one plan
//!   cache, one work-stealing pool — because the session is `Sync` by
//!   design.
//! * The protocol ([`protocol`]) is newline-delimited JSON. Errors arrive as
//!   the engine's structured [`Diagnostic`](ncql_engine::Diagnostic) — span,
//!   line, column, snippet — plus a typed code, so clients never parse caret
//!   art.
//! * Per-request isolation: a wall-clock deadline enforced by a
//!   [`DeadlineWatchdog`](deadline::DeadlineWatchdog) over cooperative
//!   [`CancelToken`](ncql_engine::CancelToken)s, per-request
//!   `max_work`/`max_set_size` budgets that only tighten the session's
//!   limits, and an admission [`Semaphore`](limits::Semaphore) that answers
//!   `busy` under overload instead of queueing unboundedly.
//! * [`Client`] is the blocking counterpart used by the `ncql-loadgen`
//!   binary, the protocol test suites, and Rust scripts.
//!
//! # A round trip
//!
//! ```
//! use ncql_serve::{Client, ServeConfig, Server};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let server = Server::bind(ServeConfig::default(), ncql_engine::Session::new())?;
//! let handle = server.spawn()?;
//!
//! let mut client = Client::connect(handle.addr())?;
//! let outcome = client.execute("{@1} union {@2} union {@1}")?;
//! assert_eq!(outcome.printed, "{a1, a2}");
//!
//! // Errors carry the engine's structured diagnostic, not rendered text.
//! let err = client.execute("pi1 true").unwrap_err();
//! let diagnostic = err.remote().expect("typed server error");
//! assert_eq!(diagnostic.code, "type");
//! assert_eq!(diagnostic.line, Some(1));
//!
//! client.close()?;
//! handle.shutdown();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod corpus;
pub mod deadline;
pub mod json;
pub mod limits;
pub mod loadgen;
pub mod protocol;
pub mod server;

pub use client::{
    Client, ClientError, ExecuteParams, WireDiagnostic, WireOutcome, WirePrepared, WireStats,
    WireStatsReply,
};
pub use loadgen::{LoadConfig, LoadReport, Percentiles};
pub use protocol::{error_code, ProtocolError, Request};
pub use server::{ServeConfig, Server, ServerHandle};
