//! Uniform entry point for evaluating library queries on either backend.
//!
//! Callers (benches, examples, the differential suite, downstream users) pick
//! a backend with one knob: `parallelism = None` evaluates on the sequential
//! reference evaluator, `Some(n)` on the parallel backend with `n` worker
//! threads. Results and cost statistics are bit-identical either way — that is
//! the contract the differential suite enforces.

use ncql_core::eval::{CostStats, EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_core::parallel::ParallelEvaluator;
use ncql_core::EvalResult;
use ncql_object::Value;

/// Evaluate a closed query with the given parallelism knob, returning the
/// value and the cost statistics. `None` (and `Some(0 | 1)`) run sequentially.
pub fn eval_query(expr: &Expr, parallelism: Option<usize>) -> EvalResult<(Value, CostStats)> {
    eval_query_with(expr, parallelism, EvalConfig::default())
}

/// Like [`eval_query`], but over a caller-supplied base configuration (resource
/// limits, registry, cutover threshold). The `parallelism` argument overrides
/// the configuration's own knob.
pub fn eval_query_with(
    expr: &Expr,
    parallelism: Option<usize>,
    base: EvalConfig,
) -> EvalResult<(Value, CostStats)> {
    let config = EvalConfig {
        parallelism,
        ..base
    };
    match parallelism {
        Some(n) if n > 1 => {
            let mut ev = ParallelEvaluator::with_config(config);
            let v = ev.eval_closed(expr)?;
            Ok((v, ev.stats()))
        }
        _ => {
            let mut ev = Evaluator::new(config);
            let v = ev.eval_closed(expr)?;
            Ok((v, ev.stats()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parity;
    use ncql_object::Value;

    #[test]
    fn both_backends_through_the_entry_point_agree() {
        let q = parity::parity_dcr(Expr::Const(Value::atom_set(0..99)));
        let (v_seq, s_seq) = eval_query(&q, None).unwrap();
        for threads in [1usize, 2, 4] {
            let (v_par, s_par) = eval_query(&q, Some(threads)).unwrap();
            assert_eq!(v_par, v_seq, "threads={threads}");
            assert_eq!(s_par, s_seq, "threads={threads}");
        }
        assert_eq!(v_seq, Value::Bool(true));
    }
}
