//! Property tests for the cost-model invariants of the two evaluation
//! backends, driven by the vendored `proptest`.
//!
//! For randomly generated well-formed expressions these pin down:
//!
//! * `span ≤ work` on both backends (the critical path cannot exceed the total
//!   operation count — a PRAM tautology the instrumentation must respect);
//! * the `dcr` combining tree does `m − 1` combiner applications and its span
//!   grows *additively* by one fixed per-level increment each time the set
//!   size doubles — i.e. as `⌈log₂ m⌉` — while `esr` span grows linearly;
//! * the resource-limit errors `SetTooLarge` and `WorkLimitExceeded` fire
//!   under exactly the same conditions on the sequential and the parallel
//!   backend (same error discriminant, or the same value on success) —
//!   *regardless of which pool worker observes the shared budget's exhaustion
//!   first*, which the properties force by randomizing the pool's steal-order
//!   seed and oversubscribing the pool relative to the parallelism knob;
//! * pool scheduling is unobservable: every `(steal seed, pool size)` pair
//!   yields the same `(Value, CostStats)`, including `span ≤ work` and the
//!   `m − 1` combiner count, on the work-stealing pool backend.

use ncql_core::error::EvalError;
use ncql_core::eval::{eval_with_stats, CostStats, EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_core::parallel::ParallelEvaluator;
use ncql_core::EvalResult;
use ncql_object::{Type, Value};
use proptest::prelude::*;

fn xor_combiner() -> Expr {
    Expr::lam2(
        "a",
        "b",
        Type::prod(Type::Bool, Type::Bool),
        Expr::ite(
            Expr::var("a"),
            Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
            Expr::var("b"),
        ),
    )
}

fn parity_dcr(atoms: Vec<u64>) -> Expr {
    Expr::dcr(
        Expr::bool_val(false),
        Expr::lam("y", Type::Base, Expr::bool_val(true)),
        xor_combiner(),
        Expr::constant(Value::atom_set(atoms)),
    )
}

fn sum_dcr(atoms: Vec<u64>) -> Expr {
    Expr::dcr(
        Expr::nat(0),
        Expr::lam(
            "x",
            Type::Base,
            Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
        ),
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Nat, Type::Nat),
            Expr::extern_call("nat_add", vec![Expr::var("a"), Expr::var("b")]),
        ),
        Expr::constant(Value::atom_set(atoms)),
    )
}

fn ext_spread(atoms: Vec<u64>, shift: u64) -> Expr {
    Expr::ext(
        Expr::lam(
            "x",
            Type::Base,
            Expr::union(
                Expr::singleton(Expr::var("x")),
                Expr::singleton(Expr::extern_call(
                    "nat_to_atom",
                    vec![Expr::extern_call(
                        "nat_add",
                        vec![
                            Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
                            Expr::nat(shift),
                        ],
                    )],
                )),
            ),
        ),
        Expr::constant(Value::atom_set(atoms)),
    )
}

fn parity_esr(atoms: Vec<u64>) -> Expr {
    Expr::esr(
        Expr::bool_val(false),
        Expr::lam2(
            "y",
            "acc",
            Type::prod(Type::Base, Type::Bool),
            Expr::ite(
                Expr::var("acc"),
                Expr::bool_val(false),
                Expr::bool_val(true),
            ),
        ),
        Expr::constant(Value::atom_set(atoms)),
    )
}

/// One random query from the template family, selected by `shape`.
fn random_query(shape: u64, atoms: Vec<u64>, shift: u64) -> Expr {
    match shape % 4 {
        0 => parity_dcr(atoms),
        1 => sum_dcr(atoms),
        2 => ext_spread(atoms, shift),
        _ => parity_esr(atoms),
    }
}

fn eval_parallel_with(
    expr: &Expr,
    threads: usize,
    base: EvalConfig,
) -> EvalResult<(Value, CostStats)> {
    let mut ev = ParallelEvaluator::with_config(EvalConfig {
        parallelism: Some(threads),
        parallel_cutoff: 1,
        ..base
    });
    let v = ev.eval_closed(expr)?;
    Ok((v, ev.stats()))
}

/// Like [`eval_parallel_with`], but with the pool scheduling knobs exposed:
/// an independent pool size (possibly oversubscribed relative to `threads`)
/// and a steal-order seed. Every combination must be observationally
/// identical to the sequential backend.
fn eval_on_pool(
    expr: &Expr,
    threads: usize,
    pool_threads: usize,
    steal_seed: u64,
    base: EvalConfig,
) -> EvalResult<(Value, CostStats)> {
    eval_parallel_with(
        expr,
        threads,
        EvalConfig {
            pool_threads: Some(pool_threads),
            pool_steal_seed: steal_seed,
            ..base
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn span_is_bounded_by_work_on_both_backends(
        shape in 0u64..4,
        atoms in proptest::collection::vec(0u64..500, 0..50),
        shift in 1u64..40,
        threads in 2usize..9,
        pool_threads in 2usize..10,
        steal_seed in proptest::prelude::any::<u64>(),
    ) {
        let q = random_query(shape, atoms, shift);
        let (v_seq, seq) = eval_with_stats(&q).expect("sequential eval");
        prop_assert!(seq.span <= seq.work, "sequential span {} > work {}", seq.span, seq.work);
        // The pool size is drawn independently of the parallelism knob, so
        // this also covers over- and under-subscribed pools.
        let (v_par, par) = eval_on_pool(&q, threads, pool_threads, steal_seed, EvalConfig::default())
            .expect("parallel eval");
        prop_assert!(par.span <= par.work, "parallel span {} > work {}", par.span, par.work);
        prop_assert_eq!(v_par, v_seq);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn dcr_combiner_count_is_m_minus_one(
        atoms in proptest::collection::vec(0u64..10_000, 1..80),
        threads in 2usize..9,
        pool_threads in 2usize..10,
        steal_seed in proptest::prelude::any::<u64>(),
    ) {
        let m = Value::atom_set(atoms.clone()).cardinality().unwrap_or(0) as u64;
        let q = parity_dcr(atoms);
        let (_, seq) = eval_with_stats(&q).expect("sequential eval");
        prop_assert_eq!(seq.combiner_calls, m.saturating_sub(1));
        let (_, par) = eval_on_pool(&q, threads, pool_threads, steal_seed, EvalConfig::default())
            .expect("parallel eval");
        prop_assert_eq!(par.combiner_calls, m.saturating_sub(1));
    }

    /// One evaluator — therefore one persistent pool — re-scored across many
    /// queries: the pool's internal state (deque history, steal cursors)
    /// accumulated by earlier queries must never leak into later results.
    #[test]
    fn one_pool_many_queries_stays_equivalent(
        shapes in proptest::collection::vec((0u64..4, proptest::collection::vec(0u64..200, 1..40)), 1..5),
        threads in 2usize..9,
        steal_seed in proptest::prelude::any::<u64>(),
    ) {
        let mut ev = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(threads),
            parallel_cutoff: 1,
            pool_steal_seed: steal_seed,
            ..EvalConfig::default()
        });
        for (shape, atoms) in shapes {
            let q = random_query(shape, atoms, 17);
            let (v_seq, seq) = eval_with_stats(&q).expect("sequential eval");
            let v_par = ev.eval_closed(&q).expect("parallel eval");
            prop_assert_eq!(v_par, v_seq);
            prop_assert_eq!(ev.stats(), seq);
        }
    }

    #[test]
    fn dcr_span_grows_by_one_level_per_doubling(
        exp in 1u32..7,
        threads in 2usize..9,
    ) {
        // Measure spans at m = 2^1 .. 2^(exp+1): parity's leaf and combiner
        // spans are constant, so the whole-query span at 2^(j+1) must exceed
        // the span at 2^j by exactly one per-level increment — the ⌈log₂ m⌉
        // growth of the combining tree. The increment is derived from the
        // first doubling, not hard-coded.
        let span_at = |m: u64, threads: usize| -> u64 {
            let q = parity_dcr((0..m).collect());
            let (_, stats) = eval_parallel_with(&q, threads, EvalConfig::default()).expect("eval");
            stats.span
        };
        let level_increment = span_at(4, threads) - span_at(2, threads);
        prop_assert!(level_increment > 0);
        for j in 1..=exp {
            let lo = span_at(1u64 << j, threads);
            let hi = span_at(1u64 << (j + 1), threads);
            prop_assert_eq!(
                hi - lo,
                level_increment,
                "doubling 2^{} -> 2^{} added {} instead of one level ({})",
                j, j + 1, hi - lo, level_increment
            );
        }
    }

    #[test]
    fn esr_span_grows_linearly_not_logarithmically(
        exp in 2u32..6,
    ) {
        let span_at = |m: u64| -> u64 {
            let (_, stats) = eval_with_stats(&parity_esr((0..m).collect())).expect("eval");
            stats.span
        };
        // Doubling the input roughly doubles the esr span (sequential chain);
        // allow slack for the constant prefix.
        let lo = span_at(1u64 << exp);
        let hi = span_at(1u64 << (exp + 1));
        prop_assert!(hi >= lo * 2 - 8, "esr span {} vs {} not linear", hi, lo);
    }

    #[test]
    fn resource_limits_fire_identically(
        shape in 0u64..4,
        atoms in proptest::collection::vec(0u64..300, 0..60),
        shift in 1u64..40,
        threads in 2usize..9,
        pool_threads in 2usize..10,
        steal_seed in proptest::prelude::any::<u64>(),
        max_work in 1u64..4_000,
        max_set_size in 1usize..80,
    ) {
        let q = random_query(shape, atoms, shift);
        let limits = EvalConfig {
            max_work,
            max_set_size,
            ..EvalConfig::default()
        };
        let mut seq_ev = Evaluator::new(limits.clone());
        let seq = seq_ev.eval_closed(&q);
        // The steal seed and the independent pool size decide *which worker*
        // observes the shared work budget's exhaustion first; the outcome
        // must not care.
        let par = eval_on_pool(&q, threads, pool_threads, steal_seed, limits).map(|(v, _)| v);
        // A limit error fires in parallel iff one fires sequentially. Which of
        // the two limits gets reported may differ when both are crossed in one
        // evaluation (shards notice their overruns concurrently), so the two
        // limit kinds form one equivalence class.
        let resource_limit = |e: &EvalError| {
            matches!(
                e,
                EvalError::WorkLimitExceeded { .. } | EvalError::SetTooLarge { .. }
            )
        };
        match (&seq, &par) {
            (Ok(a), Ok(b)) => prop_assert_eq!(a, b),
            (Err(ea), Err(eb)) => {
                prop_assert!(
                    resource_limit(ea) && resource_limit(eb),
                    "unexpected error kinds: seq={:?} par={:?}", ea, eb
                );
            }
            _ => prop_assert!(false, "backends disagree: seq={:?} par={:?}", seq, par),
        }
    }
}
