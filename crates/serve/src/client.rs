//! A blocking wire client: one TCP connection, typed requests, typed
//! responses.
//!
//! The client exists for three audiences — the load generator, the protocol
//! test suites, and anyone scripting against `ncql-served` from Rust. It
//! speaks exactly the protocol of [`crate::protocol`]: requests out as
//! single JSON lines, responses back as [`WireOutcome`]/[`WireDiagnostic`].

use crate::json::{self, Json};
use crate::protocol::value_to_json;
use ncql_object::Value;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// The structured diagnostic of an `error` response: the wire form of the
/// engine's [`Diagnostic`](ncql_engine::Diagnostic), plus the protocol error
/// code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireDiagnostic {
    /// Protocol error code (`parse`, `type`, ..., `deadline`, `busy`, ...).
    pub code: String,
    /// `error` or `warning`.
    pub severity: String,
    /// The human-readable message.
    pub message: String,
    /// Byte span in the submitted query text, when located.
    pub span: Option<(usize, usize)>,
    /// 1-based line of the span's start.
    pub line: Option<usize>,
    /// 1-based column (bytes) of the span's start.
    pub column: Option<usize>,
    /// The source line the span starts on.
    pub snippet: Option<String>,
}

impl fmt::Display for WireDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.code, self.severity, self.message)?;
        if let (Some(line), Some(column)) = (self.line, self.column) {
            write!(f, " (at {line}:{column})")?;
        }
        Ok(())
    }
}

/// Evaluation cost statistics as reported on the wire.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Total elementary operations.
    pub work: u64,
    /// Critical-path length.
    pub span: u64,
    /// Largest intermediate set observed.
    pub max_set_size: u64,
}

/// A successful `execute` response.
#[derive(Debug, Clone, PartialEq)]
pub struct WireOutcome {
    /// The decoded result value.
    pub value: Value,
    /// The server's canonical printed form of the value.
    pub printed: String,
    /// The query's inferred type, printed.
    pub ty: String,
    /// Evaluation cost statistics.
    pub stats: WireStats,
    /// Which backend evaluated (`sequential` / `parallel (N threads)`).
    pub backend: String,
}

/// A successful `prepare` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WirePrepared {
    /// The inferred type, printed.
    pub ty: String,
    /// The §3 recursion-nesting level (ACᵏ).
    pub ac_level: u64,
    /// The recursion depth of the normal form.
    pub recursion_depth: u64,
    /// The pretty-printed normal form.
    pub normal_form: String,
}

/// A `stats` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireStatsReply {
    /// Plan-cache hits.
    pub cache_hits: u64,
    /// Plan-cache misses.
    pub cache_misses: u64,
    /// Plan-cache evictions.
    pub cache_evictions: u64,
    /// Prepared plans currently cached.
    pub prepared_plans: u64,
    /// Live work-stealing pool workers in the server process.
    pub pool_workers: u64,
    /// The session's backend, printed.
    pub backend: String,
}

/// Client-side failure: transport, malformed response, or a typed error
/// response from the server.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed.
    Io(io::Error),
    /// The server's response line was not understood.
    Malformed(String),
    /// The server answered with a typed error. (Boxed: a diagnostic is much
    /// larger than the other variants, and the hot path is `Ok`.)
    Remote(Box<WireDiagnostic>),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Malformed(m) => write!(f, "malformed response: {m}"),
            ClientError::Remote(d) => write!(f, "server error: {d}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> ClientError {
        ClientError::Io(e)
    }
}

impl ClientError {
    /// The remote diagnostic, when this is a typed server error.
    pub fn remote(&self) -> Option<&WireDiagnostic> {
        match self {
            ClientError::Remote(d) => Some(d),
            _ => None,
        }
    }

    /// The remote error code, when this is a typed server error.
    pub fn code(&self) -> Option<&str> {
        self.remote().map(|d| d.code.as_str())
    }
}

/// Extra knobs for [`Client::execute_with`].
#[derive(Debug, Clone, Default)]
pub struct ExecuteParams<'a> {
    /// Free-variable declarations, as (name, printed type) pairs.
    pub schema: &'a [(String, String)],
    /// Values for the declared free variables.
    pub bindings: &'a [(String, Value)],
    /// Requested wall-clock deadline in milliseconds.
    pub deadline_ms: Option<u64>,
    /// Requested work budget.
    pub max_work: Option<u64>,
    /// Requested intermediate-set cap.
    pub max_set_size: Option<u64>,
}

/// One blocking protocol connection.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: BufWriter::new(stream),
            next_id: 0,
        })
    }

    /// Prepare `text` (front end only; nothing is evaluated).
    pub fn prepare(
        &mut self,
        text: &str,
        schema: &[(String, String)],
    ) -> Result<WirePrepared, ClientError> {
        let mut fields = vec![("op".to_string(), Json::str("prepare"))];
        push_common(&mut fields, self.take_id(), text, schema);
        let ok = self.round_trip(Json::Obj(fields))?;
        Ok(WirePrepared {
            ty: require_str(&ok, "type")?,
            ac_level: require_u64(&ok, "ac_level")?,
            recursion_depth: require_u64(&ok, "recursion_depth")?,
            normal_form: require_str(&ok, "normal_form")?,
        })
    }

    /// Execute a closed query with default limits.
    pub fn execute(&mut self, text: &str) -> Result<WireOutcome, ClientError> {
        self.execute_with(text, &ExecuteParams::default())
    }

    /// Execute with schema, bindings, and per-request limits.
    pub fn execute_with(
        &mut self,
        text: &str,
        params: &ExecuteParams<'_>,
    ) -> Result<WireOutcome, ClientError> {
        let op = if params.bindings.is_empty() {
            "execute"
        } else {
            "execute_with_bindings"
        };
        let mut fields = vec![("op".to_string(), Json::str(op))];
        push_common(&mut fields, self.take_id(), text, params.schema);
        if !params.bindings.is_empty() {
            fields.push((
                "bindings".to_string(),
                Json::Arr(
                    params
                        .bindings
                        .iter()
                        .map(|(name, value)| {
                            Json::Obj(vec![
                                ("name".to_string(), Json::str(name)),
                                ("value".to_string(), value_to_json(value)),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        if let Some(ms) = params.deadline_ms {
            fields.push(("deadline_ms".to_string(), Json::num(ms)));
        }
        if let Some(w) = params.max_work {
            fields.push(("max_work".to_string(), Json::num(w)));
        }
        if let Some(s) = params.max_set_size {
            fields.push(("max_set_size".to_string(), Json::num(s)));
        }
        let ok = self.round_trip(Json::Obj(fields))?;
        let stats = ok
            .get("stats")
            .ok_or_else(|| ClientError::Malformed("missing `stats`".to_string()))?;
        let value_json = ok
            .get("value")
            .ok_or_else(|| ClientError::Malformed("missing `value`".to_string()))?;
        let value = crate::protocol::value_from_json(value_json).map_err(ClientError::Malformed)?;
        Ok(WireOutcome {
            value,
            printed: require_str(&ok, "printed")?,
            ty: require_str(&ok, "type")?,
            stats: WireStats {
                work: require_u64(stats, "work")?,
                span: require_u64(stats, "span")?,
                max_set_size: require_u64(stats, "max_set_size")?,
            },
            backend: require_str(&ok, "backend")?,
        })
    }

    /// Fetch the server's session observability counters.
    pub fn stats(&mut self) -> Result<WireStatsReply, ClientError> {
        let fields = vec![
            ("op".to_string(), Json::str("stats")),
            ("id".to_string(), Json::num(self.take_id())),
        ];
        let ok = self.round_trip(Json::Obj(fields))?;
        let cache = ok
            .get("cache")
            .ok_or_else(|| ClientError::Malformed("missing `cache`".to_string()))?;
        Ok(WireStatsReply {
            cache_hits: require_u64(cache, "hits")?,
            cache_misses: require_u64(cache, "misses")?,
            cache_evictions: require_u64(cache, "evictions")?,
            prepared_plans: require_u64(&ok, "prepared_plans")?,
            pool_workers: require_u64(&ok, "pool_workers")?,
            backend: require_str(&ok, "backend")?,
        })
    }

    /// Politely end the connection (the server acknowledges, then hangs up).
    pub fn close(mut self) -> Result<(), ClientError> {
        let fields = vec![
            ("op".to_string(), Json::str("close")),
            ("id".to_string(), Json::num(self.take_id())),
        ];
        self.round_trip(Json::Obj(fields))?;
        Ok(())
    }

    /// Send a raw, pre-serialized request line and return the raw response
    /// line. For protocol tests that need to speak malformed requests.
    pub fn round_trip_raw(&mut self, line: &str) -> Result<String, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        Ok(response.trim_end().to_string())
    }

    fn take_id(&mut self) -> u64 {
        self.next_id += 1;
        self.next_id
    }

    fn round_trip(&mut self, request: Json) -> Result<Json, ClientError> {
        let line = self.round_trip_raw(&request.to_string())?;
        let response =
            json::parse(&line).map_err(|e| ClientError::Malformed(format!("{e}: {line}")))?;
        if let Some(error) = response.get("error") {
            return Err(ClientError::Remote(Box::new(parse_diagnostic(error)?)));
        }
        response
            .get("ok")
            .cloned()
            .ok_or_else(|| ClientError::Malformed(format!("neither `ok` nor `error`: {line}")))
    }
}

fn push_common(fields: &mut Vec<(String, Json)>, id: u64, text: &str, schema: &[(String, String)]) {
    fields.push(("id".to_string(), Json::num(id)));
    fields.push(("text".to_string(), Json::str(text)));
    if !schema.is_empty() {
        fields.push((
            "schema".to_string(),
            Json::Arr(
                schema
                    .iter()
                    .map(|(name, ty)| {
                        Json::Obj(vec![
                            ("name".to_string(), Json::str(name)),
                            ("type".to_string(), Json::str(ty)),
                        ])
                    })
                    .collect(),
            ),
        ));
    }
}

fn parse_diagnostic(error: &Json) -> Result<WireDiagnostic, ClientError> {
    let code = require_str(error, "code")?;
    let diagnostic = error
        .get("diagnostic")
        .ok_or_else(|| ClientError::Malformed("missing `diagnostic`".to_string()))?;
    let span = match diagnostic.get("span") {
        Some(span) if !span.is_null() => Some((
            require_u64(span, "start")? as usize,
            require_u64(span, "end")? as usize,
        )),
        _ => None,
    };
    let opt_u64 = |name: &str| {
        diagnostic
            .get(name)
            .filter(|v| !v.is_null())
            .and_then(Json::as_u64)
    };
    Ok(WireDiagnostic {
        code,
        severity: require_str(diagnostic, "severity")?,
        message: require_str(diagnostic, "message")?,
        span,
        line: opt_u64("line").map(|n| n as usize),
        column: opt_u64("column").map(|n| n as usize),
        snippet: diagnostic
            .get("snippet")
            .filter(|v| !v.is_null())
            .and_then(Json::as_str)
            .map(str::to_string),
    })
}

fn require_str(json: &Json, field: &str) -> Result<String, ClientError> {
    json.get(field)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| ClientError::Malformed(format!("missing string `{field}`")))
}

fn require_u64(json: &Json, field: &str) -> Result<u64, ClientError> {
    json.get(field)
        .and_then(Json::as_u64)
        .ok_or_else(|| ClientError::Malformed(format!("missing integer `{field}`")))
}
