//! Deterministic workload generators for the experiments: graphs, flat
//! relations, unary sets and nested complex objects.
//!
//! All generators are seeded, so every experiment run is reproducible; the
//! benches fix the seed per data point.

use crate::relation::Relation;
use ncql_object::{Type, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A path graph `0 → 1 → … → n`.
pub fn path_graph(n: u64) -> Relation {
    Relation::from_pairs((0..n).map(|i| (i, i + 1)))
}

/// A cycle graph on `n` nodes.
pub fn cycle_graph(n: u64) -> Relation {
    Relation::from_pairs((0..n).map(|i| (i, (i + 1) % n.max(1))))
}

/// A complete directed graph (without self-loops) on `n` nodes.
pub fn complete_graph(n: u64) -> Relation {
    Relation::from_pairs((0..n).flat_map(|i| (0..n).filter(move |&j| j != i).map(move |j| (i, j))))
}

/// A balanced binary tree with `n` nodes, edges parent → child.
pub fn binary_tree(n: u64) -> Relation {
    Relation::from_pairs((1..n).map(|i| ((i - 1) / 2, i)))
}

/// A two-dimensional grid graph with `side × side` nodes, edges to the right and
/// downward neighbours.
pub fn grid_graph(side: u64) -> Relation {
    let mut pairs = Vec::new();
    for r in 0..side {
        for c in 0..side {
            let id = r * side + c;
            if c + 1 < side {
                pairs.push((id, id + 1));
            }
            if r + 1 < side {
                pairs.push((id, id + side));
            }
        }
    }
    Relation::from_pairs(pairs)
}

/// An Erdős–Rényi random directed graph `G(n, p)` with a fixed seed.
pub fn random_graph(n: u64, edge_probability: f64, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pairs = Vec::new();
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen_bool(edge_probability.clamp(0.0, 1.0)) {
                pairs.push((i, j));
            }
        }
    }
    Relation::from_pairs(pairs)
}

/// A random binary relation with exactly `tuples` tuples over the universe
/// `0 … n−1` (or fewer if `tuples > n²`).
pub fn random_relation(n: u64, tuples: usize, seed: u64) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rel = Relation::new();
    let cap = ((n as usize) * (n as usize)).min(tuples);
    let mut attempts = 0;
    while rel.len() < cap && attempts < cap * 20 {
        rel.insert(rng.gen_range(0..n), rng.gen_range(0..n));
        attempts += 1;
    }
    rel
}

/// A random unary set of `k` atoms drawn from `0 … n−1`.
pub fn random_atom_set(n: u64, k: usize, seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut atoms = std::collections::BTreeSet::new();
    let cap = k.min(n as usize);
    while atoms.len() < cap {
        atoms.insert(rng.gen_range(0..n));
    }
    Value::atom_set(atoms)
}

/// The unary set `{0, …, n−1}`.
pub fn dense_atom_set(n: u64) -> Value {
    Value::atom_set(0..n)
}

/// A random complex object of the given type, with sets of at most
/// `max_set_size` elements and atoms drawn from `0 … universe−1`.
pub fn random_value(ty: &Type, universe: u64, max_set_size: usize, seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    random_value_with(&mut rng, ty, universe, max_set_size)
}

fn random_value_with(rng: &mut StdRng, ty: &Type, universe: u64, max_set_size: usize) -> Value {
    match ty {
        Type::Base => Value::Atom(rng.gen_range(0..universe.max(1))),
        Type::Bool => Value::Bool(rng.gen_bool(0.5)),
        Type::Unit => Value::Unit,
        Type::Nat => Value::Nat(rng.gen_range(0..universe.max(1))),
        Type::Prod(a, b) => Value::pair(
            random_value_with(rng, a, universe, max_set_size),
            random_value_with(rng, b, universe, max_set_size),
        ),
        Type::Set(t) => {
            let size = rng.gen_range(0..=max_set_size);
            Value::set_from((0..size).map(|_| random_value_with(rng, t, universe, max_set_size)))
        }
        Type::Fun(_, _) => Value::Unit,
    }
}

/// A nested "document store" value of type `{(D × {D × D})}`: a set of named
/// sub-relations, the kind of complex object the nested algebra is designed for.
pub fn document_store(groups: u64, edges_per_group: u64, seed: u64) -> Value {
    let mut rng = StdRng::seed_from_u64(seed);
    Value::set_from((0..groups).map(|g| {
        let rel = Value::relation_from_pairs(
            (0..edges_per_group).map(|_| (rng.gen_range(0..16u64), rng.gen_range(0..16u64))),
        );
        Value::pair(Value::Atom(g), rel)
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn structured_graphs_have_expected_sizes() {
        assert_eq!(path_graph(5).len(), 5);
        assert_eq!(cycle_graph(5).len(), 5);
        assert_eq!(complete_graph(4).len(), 12);
        assert_eq!(binary_tree(7).len(), 6);
        assert_eq!(grid_graph(3).len(), 12);
    }

    #[test]
    fn random_generators_are_deterministic_per_seed() {
        assert_eq!(random_graph(10, 0.3, 42), random_graph(10, 0.3, 42));
        assert_ne!(random_graph(10, 0.3, 42), random_graph(10, 0.3, 43));
        assert_eq!(random_atom_set(100, 10, 7), random_atom_set(100, 10, 7));
        assert_eq!(
            random_value(&Type::binary_relation(), 16, 8, 3),
            random_value(&Type::binary_relation(), 16, 8, 3)
        );
    }

    #[test]
    fn random_relation_respects_requested_cardinality() {
        let r = random_relation(16, 40, 1);
        assert_eq!(r.len(), 40);
        let small = random_relation(2, 100, 1);
        assert!(small.len() <= 4);
    }

    #[test]
    fn random_values_have_the_requested_type() {
        let ty = Type::set(Type::prod(Type::Base, Type::set(Type::Bool)));
        let v = random_value(&ty, 8, 5, 11);
        assert!(v.has_type(&ty));
    }

    #[test]
    fn document_store_shape() {
        let doc = document_store(3, 5, 9);
        let ty = Type::set(Type::prod(Type::Base, Type::binary_relation()));
        assert!(doc.has_type(&ty));
        assert_eq!(doc.cardinality(), Some(3));
    }
}
