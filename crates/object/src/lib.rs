//! Complex-object value model for the NC query language.
//!
//! This crate implements the data model of Suciu & Breazu-Tannen,
//! *"A Query Language for NC"* (UPenn TR MS-CIS-94-05, 1994), sections 2, 3 and 5:
//!
//! * [`Type`] — complex object types built from an ordered base type `D`, booleans,
//!   `unit`, binary products and finite sets, plus the function types used by the
//!   ambient language NRA and an external natural-number type used in the
//!   arithmetic-extension experiments (Proposition 6.3).
//! * [`Value`] — complex object values with a canonical (sorted, duplicate-free)
//!   set representation and a total order lifted from the order on `D` to all
//!   types, as required for queries over *ordered* databases.
//! * [`flat`] — flat shapes (products of scalars) and the fixed-width word-row
//!   encoding behind [`VSet`]'s columnar representation of large flat-element
//!   sets, whose row order coincides with the lifted value order.
//! * [`encoding`] — the string encoding of complex objects over the eight-symbol
//!   alphabet of §5, minimal encodings, the 3-bits-per-symbol binary form, and the
//!   Immerman-style positional (characteristic vector) encoding of flat relations.
//! * [`intern`] — a process-wide atom interner: symbolic atoms (`@alice`)
//!   become dense `u32` ids tagged into the `u64` atom space, so atom-bearing
//!   shapes stay fixed-width (and hence columnar/kernel-eligible) while
//!   `Display` prints the name back.
//! * [`obs`] — process-wide observability counters for the columnar
//!   representation (promotions/demotions), kept outside the bit-compared
//!   cost model.
//! * [`morphism`] — base-domain morphisms (order-preserving injections) used to
//!   state and test genericity of database queries (§5, following Chandra & Harel).
//!
//! The crate is purely a data substrate: it knows nothing about expressions,
//! evaluation, or circuits. Those live in `ncql-core`, `ncql-circuit` and friends.

pub mod encoding;
pub mod error;
pub mod flat;
pub mod intern;
pub mod morphism;
pub mod obs;
pub mod types;
pub mod value;

pub use error::ObjectError;
pub use flat::FlatShape;
pub use intern::{atom_name, intern_atom, NAMED_ATOM_BASE};
pub use obs::{columnar_stats, ColumnarStats};
pub use types::Type;
pub use value::{Atom, VSet, Value};
