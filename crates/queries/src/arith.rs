//! The ordered-universe arithmetic toolkit of Proposition 7.8, step 2.
//!
//! The simulation of an ACᵏ circuit family inside the language first builds, from
//! the input, an ordered set of "numbers" `0 … p−1` (a power of the active
//! domain) and then *pre-computes* the arithmetic relations it needs — successor,
//! the strict order, addition, multiplication and BIT — as ordinary database
//! relations over those numbers. "E.g. to compute addition, we use transitive
//! closure, a technique found in \[21\]."
//!
//! This module provides:
//!
//! * in-language builders for the successor and strict-order relations over a
//!   given universe set (the successor relation is definable with `≤` and set
//!   operations; the strict order is its transitive closure, computed with the
//!   same `dcr` as every other transitive closure), and
//! * native builders for the addition / multiplication / BIT *tables* as values
//!   of flat relation types, which the language then queries like any other
//!   input relation. The tables play the role of the pre-computation step of
//!   Proposition 7.8; constructing them inside the language is possible but adds
//!   nothing to the experiments, so we follow the paper and treat them as a
//!   pre-computed ordered-database extension.

use crate::graph;
use ncql_core::derived;
use ncql_core::expr::{fresh_var, Expr};
use ncql_object::{Type, Value};

/// The strict-order relation `{(x, y) | x < y}` over a universe set, built
/// in-language from `≤` and equality.
pub fn strict_order(universe: Expr) -> Expr {
    let u = fresh_var("univ");
    Expr::let_in(
        u.clone(),
        universe,
        derived::select(
            Type::prod(Type::Base, Type::Base),
            derived::cartesian_product(Type::Base, Type::Base, Expr::var(u.clone()), Expr::var(u)),
            |p| {
                derived::and(
                    Expr::leq(Expr::proj1(p.clone()), Expr::proj2(p.clone())),
                    derived::not(Expr::eq(Expr::proj1(p.clone()), Expr::proj2(p))),
                )
            },
        ),
    )
}

/// The successor relation `{(x, y) | x < y ∧ ¬∃z. x < z < y}` over a universe
/// set, built in-language.
pub fn successor(universe: Expr) -> Expr {
    let u = fresh_var("univ");
    let lt = fresh_var("lt");
    Expr::let_in(
        u.clone(),
        universe,
        Expr::let_in(
            lt.clone(),
            strict_order(Expr::var(u.clone())),
            derived::select(
                Type::prod(Type::Base, Type::Base),
                Expr::var(lt.clone()),
                move |p| {
                    // No z with (x, z) ∈ lt and (z, y) ∈ lt.
                    let x = Expr::proj1(p.clone());
                    let y = Expr::proj2(p);
                    Expr::is_empty(derived::select(Type::Base, Expr::var(u), move |z| {
                        derived::and(
                            derived::member(
                                Type::prod(Type::Base, Type::Base),
                                Expr::pair(x.clone(), z.clone()),
                                Expr::var(lt.clone()),
                            ),
                            derived::member(
                                Type::prod(Type::Base, Type::Base),
                                Expr::pair(z, y.clone()),
                                Expr::var(lt.clone()),
                            ),
                        )
                    }))
                },
            ),
        ),
    )
}

/// Sanity identity used by tests: the transitive closure of the successor
/// relation is the strict order (both built in-language).
pub fn strict_order_via_tc_of_successor(universe: Expr) -> Expr {
    graph::tc_dcr(successor(universe))
}

/// The addition table `{((a, b), c) | a + b = c, all in 0…p−1}` as a value of
/// type `{(D × D) × D}` (pre-computed, per Proposition 7.8 step 2).
pub fn addition_table(p: u64) -> Value {
    Value::set_from((0..p).flat_map(|a| {
        (0..p).filter_map(move |b| {
            let c = a + b;
            (c < p)
                .then(|| Value::pair(Value::pair(Value::Atom(a), Value::Atom(b)), Value::Atom(c)))
        })
    }))
}

/// The multiplication table `{((a, b), c) | a · b = c, all in 0…p−1}`.
pub fn multiplication_table(p: u64) -> Value {
    Value::set_from((0..p).flat_map(|a| {
        (0..p).filter_map(move |b| {
            let c = a * b;
            (c < p)
                .then(|| Value::pair(Value::pair(Value::Atom(a), Value::Atom(b)), Value::Atom(c)))
        })
    }))
}

/// The BIT relation `{(i, j) | bit j of i is 1, i < p}` of type `{D × D}` —
/// Immerman's BIT predicate as a database relation.
pub fn bit_table(p: u64) -> Value {
    Value::relation_from_pairs((0..p).flat_map(|i| {
        (0..64u64).filter_map(move |j| ((i >> j) & 1 == 1 && (1u64 << j) <= i).then_some((i, j)))
    }))
}

/// The universe `{0, …, p−1}` as a value.
pub fn universe(p: u64) -> Value {
    Value::atom_set(0..p)
}

/// Look up `a + b` in an addition-table expression — the in-language query
/// `Π₂(σ_{Π₁ = (a, b)}(plus))`, returning a singleton set.
pub fn add_lookup(table: Expr, a: Expr, b: Expr) -> Expr {
    let key = fresh_var("key");
    Expr::let_in(
        key.clone(),
        Expr::pair(a, b),
        derived::project2(
            Type::prod(Type::Base, Type::Base),
            Type::Base,
            derived::select(
                Type::prod(Type::prod(Type::Base, Type::Base), Type::Base),
                table,
                move |row| Expr::eq(Expr::proj1(row), Expr::var(key)),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use ncql_core::eval::eval_closed;
    use ncql_core::typecheck::typecheck_closed;

    fn univ_expr(p: u64) -> Expr {
        Expr::constant(universe(p))
    }

    #[test]
    fn successor_and_strict_order() {
        let succ = eval_closed(&successor(univ_expr(5))).unwrap();
        assert_eq!(
            Relation::from_value(&succ).unwrap(),
            Relation::from_pairs(vec![(0, 1), (1, 2), (2, 3), (3, 4)])
        );
        let lt = eval_closed(&strict_order(univ_expr(4))).unwrap();
        assert_eq!(
            Relation::from_value(&lt).unwrap(),
            Relation::from_pairs(vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
        );
    }

    #[test]
    fn tc_of_successor_is_strict_order() {
        let via_tc = eval_closed(&strict_order_via_tc_of_successor(univ_expr(6))).unwrap();
        let direct = eval_closed(&strict_order(univ_expr(6))).unwrap();
        assert_eq!(via_tc, direct);
    }

    #[test]
    fn addition_table_is_correct_and_queryable() {
        let p = 8;
        let table = addition_table(p);
        // Every row encodes a correct sum.
        for row in table.as_set().unwrap().iter() {
            let (key, c) = row.as_pair().unwrap();
            let (a, b) = key.as_pair().unwrap();
            assert_eq!(
                a.as_atom().unwrap() + b.as_atom().unwrap(),
                c.as_atom().unwrap()
            );
        }
        let q = add_lookup(Expr::constant(table), Expr::atom(3), Expr::atom(4));
        assert!(typecheck_closed(&q).is_ok());
        assert_eq!(eval_closed(&q).unwrap(), Value::atom_set(vec![7]));
    }

    #[test]
    fn multiplication_and_bit_tables() {
        let mult = multiplication_table(6);
        for row in mult.as_set().unwrap().iter() {
            let (key, c) = row.as_pair().unwrap();
            let (a, b) = key.as_pair().unwrap();
            assert_eq!(
                a.as_atom().unwrap() * b.as_atom().unwrap(),
                c.as_atom().unwrap()
            );
        }
        let bits = Relation::from_value(&bit_table(8)).unwrap();
        assert!(bits.contains(5, 0));
        assert!(!bits.contains(5, 1));
        assert!(bits.contains(5, 2));
        assert!(bits.contains(4, 2));
        assert!(!bits.contains(0, 0));
    }

    #[test]
    fn tables_have_flat_types() {
        use ncql_core::typecheck::value_type;
        assert!(value_type(&addition_table(4)).is_flat());
        assert!(value_type(&bit_table(4)).is_flat());
    }
}
