//! Abstract syntax of the NC query language.
//!
//! The constructs follow §3 (the nested relational calculus NRA), §2 (recursion
//! on sets), and §7.1 (the logarithmic iterators). Constructors that the paper
//! writes applied to an argument — `dcr(e, f, u)(x)`, `log-loop(f)(x, y)` — are
//! represented here together with that argument, which keeps the evaluator and
//! the cost model first-order.
//!
//! # Representation: [`Expr`] wraps [`ExprKind`] plus a source span
//!
//! An [`Expr`] is a struct pairing the structural [`ExprKind`] with an
//! `Option<`[`Span`]`>`: nodes built by the parser carry the byte range of the
//! surface text they came from; nodes built programmatically (the builder API,
//! the derived-form library, the source-to-source translations) carry `None`.
//! The span lives *inline* rather than in a side table keyed by node id
//! because the evaluator captures subtrees inside closures (`Arc<Expr>`
//! bodies) and applies them far from their original tree position — an
//! id-keyed table cannot survive that capture without threading ids through
//! every environment, whereas an inline span simply rides along.
//!
//! Equality ([`PartialEq`]) compares the `kind` only: spans are diagnostics
//! metadata, and `parse ∘ pretty ∘ parse` must remain the identity even though
//! the pretty text lays nodes out at different offsets.

use crate::span::Span;
use ncql_object::{Type, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An expression of the language: its structural [`ExprKind`] plus the source
/// span it was parsed from (`None` for programmatically built nodes).
///
/// Equality and the derived hash of [`ExprKind`] ignore spans — two
/// expressions are equal iff they are structurally equal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Expr {
    /// The structural node.
    pub kind: ExprKind,
    /// The byte range of the surface text this node was parsed from.
    pub span: Option<Span>,
}

impl PartialEq for Expr {
    /// Structural, span-agnostic equality (see the module docs).
    fn eq(&self, other: &Expr) -> bool {
        self.kind == other.kind
    }
}

impl Eq for Expr {}

impl From<ExprKind> for Expr {
    fn from(kind: ExprKind) -> Expr {
        Expr { kind, span: None }
    }
}

/// The structural cases of an expression.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExprKind {
    // ----- variables, functions, let -----
    /// A variable.
    Var(String),
    /// λ-abstraction `λx:s. e` (the paper writes `λxˢ.e`).
    Lam(String, Type, Box<Expr>),
    /// Function application `f(e)`.
    App(Box<Expr>, Box<Expr>),
    /// `let x = e1 in e2` — definable as `(λx. e2)(e1)`, kept primitive for
    /// readability of generated programs.
    Let(String, Box<Expr>, Box<Expr>),

    // ----- tuples -----
    /// The empty tuple `()`.
    Unit,
    /// Pair formation `(e1, e2)`.
    Pair(Box<Expr>, Box<Expr>),
    /// First projection `π₁ e`.
    Proj1(Box<Expr>),
    /// Second projection `π₂ e`.
    Proj2(Box<Expr>),

    // ----- booleans and comparisons -----
    /// A boolean constant.
    Bool(bool),
    /// Conditional `if e then e1 else e2`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Equality `e1 = e2`. The paper states equality at base type and notes that
    /// equality at all (object) types is expressible in NRA; we admit it at all
    /// object types directly.
    Eq(Box<Expr>, Box<Expr>),
    /// The order predicate `e1 ≤ e2` over the ordered base type, lifted to all
    /// object types (§3: "the order relation can be lifted to all types"). This
    /// is the external function that turns the language into `NRA(≤)`.
    Leq(Box<Expr>, Box<Expr>),

    // ----- constants -----
    /// An arbitrary complex-object literal (atoms, naturals, whole relations, …).
    Const(Value),

    // ----- sets -----
    /// The empty set `∅ : {t}` (annotated with its element type).
    Empty(Type),
    /// Singleton `{e}`.
    Singleton(Box<Expr>),
    /// Union `e1 ∪ e2`.
    Union(Box<Expr>, Box<Expr>),
    /// Emptiness test `empty(e)`.
    IsEmpty(Box<Expr>),
    /// `ext(f)(e)`: apply `f : s → {t}` to every element of `e : {s}` and union
    /// the results. Kept primitive (rather than derived from `sru`) because it is
    /// a *single* parallel step (§3).
    Ext(Box<Expr>, Box<Expr>),

    // ----- recursion on sets (§2) -----
    /// Divide-and-conquer recursion `dcr(e, f, u)(arg)`:
    /// `φ(∅)=e`, `φ({y})=f(y)`, `φ(s₁∪s₂)=u(φ(s₁),φ(s₂))`.
    /// Well-defined when `u` is associative and commutative with identity `e` on
    /// a set containing `e` and the range of `f`.
    Dcr {
        e: Box<Expr>,
        f: Box<Expr>,
        u: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Structural recursion on the union presentation `sru(e, f, u)(arg)` — like
    /// `dcr` but `u` must additionally be idempotent.
    Sru {
        e: Box<Expr>,
        f: Box<Expr>,
        u: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Structural recursion on the insert presentation `sri(e, i)(arg)`:
    /// `φ(∅)=e`, `φ(y ⊲ s)=i(y, φ(s))`, with `i` i-commutative and i-idempotent.
    Sri {
        e: Box<Expr>,
        i: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Element-step recursion `esr(e, i)(arg)` — like `sri` but the step is only
    /// taken for elements not already seen (`i` need not be i-idempotent).
    Esr {
        e: Box<Expr>,
        i: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Bounded divide-and-conquer recursion `bdcr(e, f, u, b)(arg)`, defined as
    /// `dcr(e ⊓ b, f ⊓ b, u ⊓ b)(arg)` where `⊓ b` intersects componentwise with
    /// the bound `b` at a PS-type (§2). This is the construct that stays inside
    /// NC over complex objects (Theorem 6.1).
    BDcr {
        e: Box<Expr>,
        f: Box<Expr>,
        u: Box<Expr>,
        bound: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Bounded insert recursion `bsri(e, i, b)(arg) = sri(e ⊓ b, i ⊓ b)(arg)`.
    BSri {
        e: Box<Expr>,
        i: Box<Expr>,
        bound: Box<Expr>,
        arg: Box<Expr>,
    },

    // ----- iterators (§7.1) -----
    /// `log-loop(f)(set, init) = f^(⌈log(|set|+1)⌉)(init)`.
    LogLoop {
        f: Box<Expr>,
        set: Box<Expr>,
        init: Box<Expr>,
    },
    /// `loop(f)(set, init) = f^(|set|)(init)`.
    Loop {
        f: Box<Expr>,
        set: Box<Expr>,
        init: Box<Expr>,
    },
    /// Bounded logarithmic iterator `blog-loop(f, b)(set, init) =
    /// log-loop(f ⊓ b)(set, init ⊓ b)`.
    BLogLoop {
        f: Box<Expr>,
        bound: Box<Expr>,
        set: Box<Expr>,
        init: Box<Expr>,
    },
    /// Bounded iterator `bloop(f, b)(set, init) = loop(f ⊓ b)(set, init ⊓ b)`.
    BLoop {
        f: Box<Expr>,
        bound: Box<Expr>,
        set: Box<Expr>,
        init: Box<Expr>,
    },

    // ----- external functions Σ (Proposition 6.3) -----
    /// Application of a named external function to a list of arguments.
    Extern(String, Vec<Expr>),
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Generate a fresh variable name with the given stem. Used by the derived-form
/// builders and the source-to-source translations so that generated binders never
/// capture user variables (user programs cannot contain `%` in identifiers).
pub fn fresh_var(stem: &str) -> String {
    let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("%{stem}{n}")
}

impl Expr {
    // ----- convenience constructors -----

    /// Attach (or replace) the source span of this node, leaving children
    /// untouched. The parser calls this on every node it builds.
    pub fn at(mut self, span: Span) -> Expr {
        self.span = Some(span);
        self
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        ExprKind::Var(name.into()).into()
    }

    /// λ-abstraction.
    pub fn lam(name: impl Into<String>, ty: Type, body: Expr) -> Expr {
        ExprKind::Lam(name.into(), ty, Box::new(body)).into()
    }

    /// A λ-abstraction over a pair, `λ(x, y). e`, desugared as the paper does:
    /// `λz. e[π₁ z / x, π₂ z / y]` — realised here with a fresh variable and two
    /// `let` bindings, which avoids substitution.
    pub fn lam2(x: impl Into<String>, y: impl Into<String>, ty: Type, body: Expr) -> Expr {
        let z = fresh_var("pair");
        let (tx, ty_snd) = match &ty {
            Type::Prod(a, b) => ((**a).clone(), (**b).clone()),
            _ => (ty.clone(), ty.clone()),
        };
        let _ = (tx, ty_snd);
        Expr::lam(
            z.clone(),
            ty,
            Expr::let_in(
                x,
                Expr::proj1(Expr::var(z.clone())),
                Expr::let_in(y, Expr::proj2(Expr::var(z)), body),
            ),
        )
    }

    /// Function application.
    pub fn app(f: Expr, arg: Expr) -> Expr {
        ExprKind::App(Box::new(f), Box::new(arg)).into()
    }

    /// `let x = e1 in e2`.
    pub fn let_in(name: impl Into<String>, bound: Expr, body: Expr) -> Expr {
        ExprKind::Let(name.into(), Box::new(bound), Box::new(body)).into()
    }

    /// The empty tuple `()`.
    pub fn unit() -> Expr {
        ExprKind::Unit.into()
    }

    /// Pair formation.
    pub fn pair(a: Expr, b: Expr) -> Expr {
        ExprKind::Pair(Box::new(a), Box::new(b)).into()
    }

    /// First projection.
    pub fn proj1(e: Expr) -> Expr {
        ExprKind::Proj1(Box::new(e)).into()
    }

    /// Second projection.
    pub fn proj2(e: Expr) -> Expr {
        ExprKind::Proj2(Box::new(e)).into()
    }

    /// A boolean constant.
    pub fn bool_val(b: bool) -> Expr {
        ExprKind::Bool(b).into()
    }

    /// Conditional.
    pub fn ite(c: Expr, t: Expr, f: Expr) -> Expr {
        ExprKind::If(Box::new(c), Box::new(t), Box::new(f)).into()
    }

    /// Equality.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        ExprKind::Eq(Box::new(a), Box::new(b)).into()
    }

    /// Order predicate.
    pub fn leq(a: Expr, b: Expr) -> Expr {
        ExprKind::Leq(Box::new(a), Box::new(b)).into()
    }

    /// A complex-object literal.
    pub fn constant(v: Value) -> Expr {
        ExprKind::Const(v).into()
    }

    /// The empty set `∅ : {t}` with the given element type.
    pub fn empty(elem_ty: Type) -> Expr {
        ExprKind::Empty(elem_ty).into()
    }

    /// Singleton set.
    pub fn singleton(e: Expr) -> Expr {
        ExprKind::Singleton(Box::new(e)).into()
    }

    /// Union.
    pub fn union(a: Expr, b: Expr) -> Expr {
        ExprKind::Union(Box::new(a), Box::new(b)).into()
    }

    /// N-ary union (empty list gives `∅ : {t}` using the provided element type).
    pub fn union_all(elem_ty: Type, mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::empty(elem_ty),
            1 => parts.pop().expect("len checked"),
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, Expr::union)
            }
        }
    }

    /// Emptiness test.
    pub fn is_empty(e: Expr) -> Expr {
        ExprKind::IsEmpty(Box::new(e)).into()
    }

    /// `ext(f)(e)`.
    pub fn ext(f: Expr, e: Expr) -> Expr {
        ExprKind::Ext(Box::new(f), Box::new(e)).into()
    }

    /// A constant atom.
    pub fn atom(a: u64) -> Expr {
        Expr::constant(Value::Atom(a))
    }

    /// A constant natural number (external base type).
    pub fn nat(n: u64) -> Expr {
        Expr::constant(Value::Nat(n))
    }

    /// `dcr(e, f, u)(arg)`.
    pub fn dcr(e: Expr, f: Expr, u: Expr, arg: Expr) -> Expr {
        ExprKind::Dcr {
            e: Box::new(e),
            f: Box::new(f),
            u: Box::new(u),
            arg: Box::new(arg),
        }
        .into()
    }

    /// `sru(e, f, u)(arg)`.
    pub fn sru(e: Expr, f: Expr, u: Expr, arg: Expr) -> Expr {
        ExprKind::Sru {
            e: Box::new(e),
            f: Box::new(f),
            u: Box::new(u),
            arg: Box::new(arg),
        }
        .into()
    }

    /// `sri(e, i)(arg)`.
    pub fn sri(e: Expr, i: Expr, arg: Expr) -> Expr {
        ExprKind::Sri {
            e: Box::new(e),
            i: Box::new(i),
            arg: Box::new(arg),
        }
        .into()
    }

    /// `esr(e, i)(arg)`.
    pub fn esr(e: Expr, i: Expr, arg: Expr) -> Expr {
        ExprKind::Esr {
            e: Box::new(e),
            i: Box::new(i),
            arg: Box::new(arg),
        }
        .into()
    }

    /// `bdcr(e, f, u, b)(arg)`.
    pub fn bdcr(e: Expr, f: Expr, u: Expr, bound: Expr, arg: Expr) -> Expr {
        ExprKind::BDcr {
            e: Box::new(e),
            f: Box::new(f),
            u: Box::new(u),
            bound: Box::new(bound),
            arg: Box::new(arg),
        }
        .into()
    }

    /// `bsri(e, i, b)(arg)`.
    pub fn bsri(e: Expr, i: Expr, bound: Expr, arg: Expr) -> Expr {
        ExprKind::BSri {
            e: Box::new(e),
            i: Box::new(i),
            bound: Box::new(bound),
            arg: Box::new(arg),
        }
        .into()
    }

    /// `log-loop(f)(set, init)`.
    pub fn log_loop(f: Expr, set: Expr, init: Expr) -> Expr {
        ExprKind::LogLoop {
            f: Box::new(f),
            set: Box::new(set),
            init: Box::new(init),
        }
        .into()
    }

    /// `loop(f)(set, init)`.
    pub fn loop_(f: Expr, set: Expr, init: Expr) -> Expr {
        ExprKind::Loop {
            f: Box::new(f),
            set: Box::new(set),
            init: Box::new(init),
        }
        .into()
    }

    /// `blog-loop(f, b)(set, init)`.
    pub fn blog_loop(f: Expr, bound: Expr, set: Expr, init: Expr) -> Expr {
        ExprKind::BLogLoop {
            f: Box::new(f),
            bound: Box::new(bound),
            set: Box::new(set),
            init: Box::new(init),
        }
        .into()
    }

    /// `bloop(f, b)(set, init)`.
    pub fn bloop(f: Expr, bound: Expr, set: Expr, init: Expr) -> Expr {
        ExprKind::BLoop {
            f: Box::new(f),
            bound: Box::new(bound),
            set: Box::new(set),
            init: Box::new(init),
        }
        .into()
    }

    /// Application of a named external function.
    pub fn extern_call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        ExprKind::Extern(name.into(), args).into()
    }

    /// Rebuild this node with its immediate children replaced, keeping the
    /// node's kind, span, binder names, and type annotations. The replacement
    /// vector must supply exactly one expression per [`Expr::children`] entry,
    /// in the same order — this is the write-side twin of that visitor, and
    /// the rewrite engine's only way to reconstruct an ancestor spine.
    ///
    /// # Panics
    ///
    /// Panics if `new.len()` differs from `self.children().len()`.
    pub fn with_children(&self, new: Vec<Expr>) -> Expr {
        let expected = self.children().len();
        assert_eq!(
            new.len(),
            expected,
            "with_children: node has {expected} children, got {}",
            new.len()
        );
        if let ExprKind::Extern(name, _) = &self.kind {
            return Expr {
                kind: ExprKind::Extern(name.clone(), new),
                span: self.span,
            };
        }
        let mut it = new.into_iter();
        let mut next = || Box::new(it.next().expect("arity checked above"));
        let kind = match &self.kind {
            ExprKind::Var(_)
            | ExprKind::Unit
            | ExprKind::Bool(_)
            | ExprKind::Const(_)
            | ExprKind::Empty(_) => self.kind.clone(),
            ExprKind::Lam(x, ty, _) => ExprKind::Lam(x.clone(), ty.clone(), next()),
            ExprKind::App(..) => ExprKind::App(next(), next()),
            ExprKind::Pair(..) => ExprKind::Pair(next(), next()),
            ExprKind::Eq(..) => ExprKind::Eq(next(), next()),
            ExprKind::Leq(..) => ExprKind::Leq(next(), next()),
            ExprKind::Union(..) => ExprKind::Union(next(), next()),
            ExprKind::Ext(..) => ExprKind::Ext(next(), next()),
            ExprKind::Let(x, ..) => ExprKind::Let(x.clone(), next(), next()),
            ExprKind::Proj1(_) => ExprKind::Proj1(next()),
            ExprKind::Proj2(_) => ExprKind::Proj2(next()),
            ExprKind::Singleton(_) => ExprKind::Singleton(next()),
            ExprKind::IsEmpty(_) => ExprKind::IsEmpty(next()),
            ExprKind::If(..) => ExprKind::If(next(), next(), next()),
            ExprKind::Dcr { .. } => ExprKind::Dcr {
                e: next(),
                f: next(),
                u: next(),
                arg: next(),
            },
            ExprKind::Sru { .. } => ExprKind::Sru {
                e: next(),
                f: next(),
                u: next(),
                arg: next(),
            },
            ExprKind::Sri { .. } => ExprKind::Sri {
                e: next(),
                i: next(),
                arg: next(),
            },
            ExprKind::Esr { .. } => ExprKind::Esr {
                e: next(),
                i: next(),
                arg: next(),
            },
            ExprKind::BDcr { .. } => ExprKind::BDcr {
                e: next(),
                f: next(),
                u: next(),
                bound: next(),
                arg: next(),
            },
            ExprKind::BSri { .. } => ExprKind::BSri {
                e: next(),
                i: next(),
                bound: next(),
                arg: next(),
            },
            ExprKind::LogLoop { .. } => ExprKind::LogLoop {
                f: next(),
                set: next(),
                init: next(),
            },
            ExprKind::Loop { .. } => ExprKind::Loop {
                f: next(),
                set: next(),
                init: next(),
            },
            ExprKind::BLogLoop { .. } => ExprKind::BLogLoop {
                f: next(),
                bound: next(),
                set: next(),
                init: next(),
            },
            ExprKind::BLoop { .. } => ExprKind::BLoop {
                f: next(),
                bound: next(),
                set: next(),
                init: next(),
            },
            ExprKind::Extern(..) => unreachable!("Extern handled above"),
        };
        debug_assert!(it.next().is_none(), "with_children: arity checked above");
        Expr {
            kind,
            span: self.span,
        }
    }

    /// `f(arg)` with the administrative redex removed when `f` is a literal
    /// λ-abstraction: `(λx. b)(arg)` becomes `let x = arg in b`, anything else
    /// stays an [`ExprKind::App`]. The evaluator charges `Let` and
    /// `App`+`Lam` identically (one unit for the binding), but the `let` form
    /// keeps generated plans readable and gives the rewrite rules one shared
    /// way to compose function bodies without substitution.
    pub fn apply_lam(f: Expr, arg: Expr) -> Expr {
        match f.kind {
            ExprKind::Lam(x, _, body) => {
                let span = f.span;
                let mut e = Expr::let_in(x, arg, *body);
                e.span = span;
                e
            }
            kind => Expr::app(Expr { kind, span: f.span }, arg),
        }
    }

    /// Number of AST nodes (used by tests and the translation-overhead reports).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Visit every sub-expression (pre-order). Built on [`Expr::children`] so
    /// every traversal in the workspace walks the AST through one shape-aware
    /// function.
    pub fn visit<F: FnMut(&Expr)>(&self, f: &mut F) {
        f(self);
        for child in self.children() {
            child.expr.visit(f);
        }
    }

    /// The immediate sub-expressions of this node, in evaluation/pre-order,
    /// each annotated with the binding structure the analyses need: which
    /// variable (if any) comes into scope for that child, and whether the
    /// child is the *iterated* operand of a recursor or iterator (the operand
    /// whose nesting stratifies the AC level per Theorems 6.1/6.2).
    ///
    /// This is the single shared visitor: `visit`, `analysis::free_vars`,
    /// `analysis::free_var_span`, `analysis::recursion_depth` and the
    /// `analyze` lint pass all walk the tree through it, so a new `ExprKind`
    /// variant only has to teach *this* function its shape.
    pub fn children(&self) -> Vec<Child<'_>> {
        fn plain(expr: &Expr) -> Child<'_> {
            Child {
                expr,
                binds: None,
                iterated: false,
            }
        }
        fn bound<'a>(expr: &'a Expr, name: &'a str) -> Child<'a> {
            Child {
                expr,
                binds: Some(name),
                iterated: false,
            }
        }
        fn iterated(expr: &Expr) -> Child<'_> {
            Child {
                expr,
                binds: None,
                iterated: true,
            }
        }
        match &self.kind {
            ExprKind::Var(_)
            | ExprKind::Unit
            | ExprKind::Bool(_)
            | ExprKind::Const(_)
            | ExprKind::Empty(_) => Vec::new(),
            ExprKind::Lam(x, _, b) => vec![bound(b, x)],
            ExprKind::App(a, b)
            | ExprKind::Pair(a, b)
            | ExprKind::Eq(a, b)
            | ExprKind::Leq(a, b)
            | ExprKind::Union(a, b)
            | ExprKind::Ext(a, b) => vec![plain(a), plain(b)],
            ExprKind::Let(x, a, b) => vec![plain(a), bound(b, x)],
            ExprKind::Proj1(a)
            | ExprKind::Proj2(a)
            | ExprKind::Singleton(a)
            | ExprKind::IsEmpty(a) => vec![plain(a)],
            ExprKind::If(c, t, e) => vec![plain(c), plain(t), plain(e)],
            ExprKind::Dcr { e, f, u, arg } | ExprKind::Sru { e, f, u, arg } => {
                vec![plain(e), plain(f), iterated(u), plain(arg)]
            }
            ExprKind::Sri { e, i, arg } | ExprKind::Esr { e, i, arg } => {
                vec![plain(e), iterated(i), plain(arg)]
            }
            ExprKind::BDcr {
                e,
                f,
                u,
                bound: b,
                arg,
            } => vec![plain(e), plain(f), iterated(u), plain(b), plain(arg)],
            ExprKind::BSri {
                e,
                i,
                bound: b,
                arg,
            } => vec![plain(e), iterated(i), plain(b), plain(arg)],
            ExprKind::LogLoop { f, set, init } | ExprKind::Loop { f, set, init } => {
                vec![iterated(f), plain(set), plain(init)]
            }
            ExprKind::BLogLoop {
                f,
                bound: b,
                set,
                init,
            }
            | ExprKind::BLoop {
                f,
                bound: b,
                set,
                init,
            } => vec![iterated(f), plain(b), plain(set), plain(init)],
            ExprKind::Extern(_, args) => args.iter().map(plain).collect(),
        }
    }
}

/// One immediate sub-expression of an [`Expr`], as yielded by
/// [`Expr::children`], annotated with the enclosing node's binding structure.
#[derive(Debug, Clone, Copy)]
pub struct Child<'a> {
    /// The sub-expression itself.
    pub expr: &'a Expr,
    /// The variable the enclosing node brings into scope *for this child*
    /// (`Lam` bodies and `Let` bodies; `None` everywhere else, including a
    /// `Let`'s right-hand side).
    pub binds: Option<&'a str>,
    /// Whether this child is the iterated operand — the combiner of a
    /// `dcr`/`sru`/`bdcr`, the insert step of an `sri`/`esr`/`bsri`, or the
    /// iterated function of a `loop`/`log-loop` — whose own recursion depth
    /// is incremented when stratifying `dcr^(k)` nesting.
    pub iterated: bool,
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ExprKind::Var(x) => write!(f, "{x}"),
            ExprKind::Lam(x, ty, b) => write!(f, "(\\{x}: {ty}. {b})"),
            ExprKind::App(a, b) => write!(f, "{a}({b})"),
            ExprKind::Let(x, a, b) => write!(f, "(let {x} = {a} in {b})"),
            ExprKind::Unit => write!(f, "()"),
            ExprKind::Pair(a, b) => write!(f, "({a}, {b})"),
            ExprKind::Proj1(a) => write!(f, "pi1 {a}"),
            ExprKind::Proj2(a) => write!(f, "pi2 {a}"),
            ExprKind::Bool(b) => write!(f, "{b}"),
            ExprKind::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            ExprKind::Eq(a, b) => write!(f, "({a} = {b})"),
            ExprKind::Leq(a, b) => write!(f, "({a} <= {b})"),
            ExprKind::Const(v) => write!(f, "{v}"),
            ExprKind::Empty(ty) => write!(f, "(empty : {{{ty}}})"),
            ExprKind::Singleton(a) => write!(f, "{{{a}}}"),
            ExprKind::Union(a, b) => write!(f, "({a} union {b})"),
            ExprKind::IsEmpty(a) => write!(f, "isempty({a})"),
            ExprKind::Ext(g, e) => write!(f, "ext({g})({e})"),
            ExprKind::Dcr { e, f: g, u, arg } => write!(f, "dcr({e}, {g}, {u})({arg})"),
            ExprKind::Sru { e, f: g, u, arg } => write!(f, "sru({e}, {g}, {u})({arg})"),
            ExprKind::Sri { e, i, arg } => write!(f, "sri({e}, {i})({arg})"),
            ExprKind::Esr { e, i, arg } => write!(f, "esr({e}, {i})({arg})"),
            ExprKind::BDcr {
                e,
                f: g,
                u,
                bound,
                arg,
            } => {
                write!(f, "bdcr({e}, {g}, {u}, {bound})({arg})")
            }
            ExprKind::BSri { e, i, bound, arg } => write!(f, "bsri({e}, {i}, {bound})({arg})"),
            ExprKind::LogLoop { f: g, set, init } => write!(f, "logloop({g})({set}, {init})"),
            ExprKind::Loop { f: g, set, init } => write!(f, "loop({g})({set}, {init})"),
            ExprKind::BLogLoop {
                f: g,
                bound,
                set,
                init,
            } => {
                write!(f, "bloglook({g}, {bound})({set}, {init})")
            }
            ExprKind::BLoop {
                f: g,
                bound,
                set,
                init,
            } => {
                write!(f, "bloop({g}, {bound})({set}, {init})")
            }
            ExprKind::Extern(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_distinct() {
        let a = fresh_var("x");
        let b = fresh_var("x");
        assert_ne!(a, b);
        assert!(a.starts_with('%'));
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::union(Expr::singleton(Expr::atom(1)), Expr::empty(Type::Base));
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn display_is_reasonable() {
        let e = Expr::ite(
            Expr::eq(Expr::var("x"), Expr::atom(1)),
            Expr::bool_val(true),
            Expr::bool_val(false),
        );
        assert_eq!(e.to_string(), "(if (x = a1) then true else false)");
    }

    #[test]
    fn lam2_projects_components() {
        let e = Expr::lam2("a", "b", Type::prod(Type::Base, Type::Base), Expr::var("a"));
        // Structure: Lam(z, _, Let(a, pi1 z, Let(b, pi2 z, a)))
        match e.kind {
            ExprKind::Lam(_, _, body) => match body.kind {
                ExprKind::Let(ref a, _, _) => assert_eq!(a, "a"),
                _ => panic!("expected let"),
            },
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn union_all_handles_empty_and_singleton() {
        assert_eq!(Expr::union_all(Type::Base, vec![]), Expr::empty(Type::Base));
        assert_eq!(
            Expr::union_all(Type::Base, vec![Expr::atom(1)]),
            Expr::atom(1)
        );
        let e = Expr::union_all(
            Type::Base,
            vec![Expr::atom(1), Expr::atom(2), Expr::atom(3)],
        );
        assert_eq!(e.size(), 5);
    }

    #[test]
    fn equality_ignores_spans() {
        let bare = Expr::atom(1);
        let placed = Expr::atom(1).at(Span::new(3, 5));
        assert_eq!(bare, placed);
        assert_eq!(placed.span, Some(Span::new(3, 5)));
        // ...including spans buried in children.
        let u1 = Expr::union(Expr::atom(1).at(Span::new(0, 2)), Expr::atom(2));
        let u2 = Expr::union(Expr::atom(1), Expr::atom(2).at(Span::new(9, 11)));
        assert_eq!(u1, u2);
    }
}
