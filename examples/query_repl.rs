//! A tiny query runner for the surface syntax: pass a query as the first
//! argument (or pipe it on stdin) and it is prepared (parsed, type-checked,
//! analysed for recursion depth and static cost bounds) and executed through
//! the engine's `Session`, with the cost model reported.
//!
//! Backend selection: `--parallel N` (or the `NCQL_PARALLELISM` environment
//! variable, with `NCQL_PARALLEL_CUTOFF` tuning the fork threshold) evaluates
//! on the parallel backend with `N` worker threads; otherwise the sequential
//! reference evaluator runs. Values and cost statistics are identical either
//! way — only wall-clock changes.
//!
//! Static analysis: every prepared query reports its lint findings as caret
//! diagnostics. `--lint` (or `NCQL_LINT=deny`) upgrades the session to the
//! deny policy, rejecting queries with deny-level findings before they run.
//! Prefixing the query with `:analyze` prints the symbolic work/span bounds
//! and the findings without executing anything.
//!
//! Optimizer: `prepare` runs the cost-gated algebraic rewriter by default;
//! `NCQL_OPT=0` disables it. Prefixing the query with `:optimize` prints the
//! raw and rewritten ASTs, the fired rules, and the before/after symbolic
//! bounds without executing anything.
//!
//! Diagnostics: `--json` prints every diagnostic (errors and lint findings)
//! as one structured JSON object per line — the same
//! `Diagnostic::to_json()` payload the `ncql-served` wire protocol carries —
//! instead of rendered caret art. Prefixing the query with `:stats` prints
//! the session observability counters (plan-cache metrics, live pool
//! workers, prepared-plan count — the numbers a server's `stats` request
//! reports) after the run; `:stats` alone prints them for an idle session.
//!
//! Examples:
//!
//! ```text
//! cargo run --example query_repl -- "nat_add(20, 22)"
//! cargo run --example query_repl -- ":analyze ext(\x: atom. {x}, {@1} union {@2})"
//! cargo run --example query_repl -- ":optimize {@1} union {@2} union {@1}"
//! cargo run --example query_repl -- ":stats {@1} union {@2}"
//! cargo run --example query_repl -- --json "pi1 true"
//! cargo run --example query_repl -- --parallel 4 \
//!   "dcr(empty[(atom * atom)], \y: atom. {(@1,@2)} union {(@2,@3)}, \
//!        \p: ({(atom*atom)} * {(atom*atom)}). pi1 p union pi2 p, {@1} union {@2})"
//! echo "{@1} union {@2} union {@1}" | NCQL_PARALLELISM=4 cargo run --example query_repl
//! ```

use ncql::{Error, LintPolicy, PreparedQuery, Session, SessionBuilder};
use std::io::Read;

/// Print every lint finding, as caret diagnostics or (under `--json`) as
/// structured JSON lines. Warnings go to stdout so the report reads
/// top-to-bottom; the query still runs under the warn policy.
fn report_findings(prepared: &PreparedQuery, json: bool) {
    for diagnostic in prepared.lint_diagnostics() {
        if json {
            println!("{}", diagnostic.to_json());
        } else {
            println!("{diagnostic}");
        }
    }
}

/// Print an error and exit: structured JSON under `--json`, a rendered caret
/// diagnostic otherwise.
fn fail(err: &Error, text: &str, json: bool) -> ! {
    if json {
        eprintln!("{}", err.diagnostic(text).to_json());
    } else {
        eprintln!("{}", err.render(text));
    }
    std::process::exit(1);
}

/// The `:stats` report: the same counters the serve protocol's `stats`
/// request returns — plan-cache behaviour, live pool workers, prepared-plan
/// count, backend.
fn report_stats(session: &Session) {
    let metrics = session.cache_metrics();
    println!(
        "cache       : {} hits / {} misses / {} evictions ({} of {} plans)",
        metrics.hits, metrics.misses, metrics.evictions, metrics.len, metrics.capacity
    );
    println!("plans       : {}", metrics.len);
    println!("pool workers: {}", ncql::pram::live_pool_workers());
    println!("backend     : {}", session.backend());
    let columnar = ncql::engine::columnar_stats();
    println!(
        "columnar    : {} promotions / {} demotions",
        columnar.promotions, columnar.demotions
    );
    let kernels = ncql::engine::kernel_stats();
    println!(
        "kernels     : {} compiled / {} fallbacks, {} ext hits over {} rows",
        kernels.compiles, kernels.fallbacks, kernels.ext_hits, kernels.rows
    );
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // The environment (NCQL_PARALLELISM / NCQL_PARALLEL_CUTOFF / NCQL_LINT)
    // configures the session; explicit flags override it.
    let mut builder = SessionBuilder::from_env();
    if let Some(pos) = args.iter().position(|a| a == "--parallel") {
        if pos + 1 >= args.len() {
            eprintln!("--parallel requires a thread count");
            std::process::exit(2);
        }
        match args[pos + 1].parse::<usize>() {
            Ok(n) => builder = builder.parallelism(Some(n)),
            Err(_) => {
                eprintln!("--parallel requires a numeric thread count");
                std::process::exit(2);
            }
        }
        args.drain(pos..=pos + 1);
    }
    if let Some(pos) = args.iter().position(|a| a == "--lint") {
        builder = builder.lint_policy(LintPolicy::Deny);
        args.remove(pos);
    }
    let json = match args.iter().position(|a| a == "--json") {
        Some(pos) => {
            args.remove(pos);
            true
        }
        None => false,
    };
    let session = builder.build();

    let text = match args.into_iter().next() {
        Some(arg) => arg,
        None => {
            let mut buf = String::new();
            std::io::stdin()
                .read_to_string(&mut buf)
                .expect("reading the query from stdin");
            buf
        }
    };
    let text = text.trim();
    if text.is_empty() {
        eprintln!(
            "usage: query_repl [--parallel N] [--lint] [--json] \
             \"[:analyze|:optimize|:stats] <query>\"   (or pipe a query on stdin)"
        );
        std::process::exit(2);
    }

    // `:analyze <query>` prints the static analysis and skips execution;
    // `:optimize <query>` prints the before/after plan and bounds instead;
    // `:stats [query]` appends the session observability counters.
    let (analyze_only, text) = match text.strip_prefix(":analyze") {
        Some(rest) => (true, rest.trim()),
        None => (false, text),
    };
    let (optimize_only, text) = match text.strip_prefix(":optimize") {
        Some(rest) => (true, rest.trim()),
        None => (false, text),
    };
    let (stats_wanted, text) = match text.strip_prefix(":stats") {
        Some(rest) => (true, rest.trim()),
        None => (false, text),
    };
    if stats_wanted && text.is_empty() {
        report_stats(&session);
        return;
    }

    let prepared = match session.prepare(text) {
        Ok(p) => p,
        Err(err) => fail(&err, text, json),
    };
    if optimize_only {
        // Before/after view of what the session's optimizer did to the plan.
        println!("raw plan    : {}", prepared.normal_form());
        if let Some(raw_cost) = prepared.raw_cost() {
            println!("raw cost    : {raw_cost}");
        }
        for fired in prepared.rewrites() {
            println!("fired       : [{}] {}", fired.rule, fired.description);
        }
        if prepared.rewrites().is_empty() {
            println!(
                "fired       : nothing (opt level {}; the plan is already normal)",
                prepared.opt_level()
            );
        }
        println!("plan        : {}", prepared.optimized_form());
        println!("static cost : {}", prepared.analysis().cost);
        return;
    }
    println!("parsed      : {}", prepared.normal_form());
    println!("type        : {}", prepared.ty());
    println!(
        "depth       : {} (AC^{} by Theorem 6.1/6.2)",
        prepared.recursion_depth(),
        prepared.ac_level()
    );
    let cost = &prepared.analysis().cost;
    println!("static cost : {cost}");

    if analyze_only {
        report_findings(&prepared, json);
        if prepared.analysis().findings.is_empty() {
            println!("lints       : clean");
        }
        return;
    }
    report_findings(&prepared, json);
    println!("backend     : {}", session.backend());

    match session.execute(&prepared) {
        Ok(outcome) => {
            println!("result      : {}", outcome.value);
            println!(
                "work / span : {} / {}",
                outcome.stats.work, outcome.stats.span
            );
        }
        Err(err) => fail(&err, text, json),
    }
    if stats_wanted {
        report_stats(&session);
    }
}
