//! E12 — bounded algebraic-law checking of dcr combiners (§2).
use criterion::{criterion_group, criterion_main, Criterion};
use ncql_core::derived;
use ncql_core::expr::Expr;
use ncql_core::wellformed::{CheckOptions, LawChecker};
use ncql_object::{Type, Value};
use ncql_translate::orderly;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e12_wellformedness");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let input = Value::atom_set(0..8);
    let f = Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y")));
    let union = derived::union_combiner(Type::Base);
    group.bench_function("bounded_law_check_union", |b| {
        b.iter(|| {
            let mut checker = LawChecker::default();
            checker
                .check_dcr_instance(
                    &Expr::empty(Type::Base),
                    &f,
                    &union,
                    &input,
                    &CheckOptions::default(),
                )
                .unwrap()
        })
    });
    group.bench_function("syntactic_orderly_check", |b| {
        b.iter(|| orderly::recognize_combiner(&Expr::empty(Type::Base), &union))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
