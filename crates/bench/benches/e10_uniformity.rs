//! E10 — DLOGSPACE-DCL uniformity of the transitive-closure circuit family.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_circuit::dcl::direct_connection_language;
use ncql_circuit::logspace::{LogSpaceMeter, UniformTcFamily};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_uniformity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [3usize, 5, 8] {
        group.bench_with_input(BenchmarkId::new("generate_family_member", n), &n, |b, _| {
            b.iter(|| UniformTcFamily::generate(n))
        });
        let circuit = UniformTcFamily::generate(n);
        let dcl: Vec<_> = direct_connection_language(n, &circuit)
            .into_iter()
            .collect();
        group.bench_with_input(
            BenchmarkId::new("arithmetic_dcl_decisions", n),
            &n,
            |b, _| {
                b.iter(|| {
                    dcl.iter()
                        .take(500)
                        .filter(|t| {
                            let mut meter = LogSpaceMeter::new();
                            UniformTcFamily::dcl_member(n, t, &mut meter)
                        })
                        .count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
