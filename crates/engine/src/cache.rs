//! The prepared-plan cache: a small LRU map, sharded for concurrent sessions.
//!
//! The engine's working set is "the distinct query texts a service replays",
//! which is small (hundreds, not millions), so the per-shard map favours
//! simplicity over asymptotics: entries carry a monotone use stamp and
//! eviction scans for the minimum. That is O(shard capacity) per
//! insert-at-capacity, which is negligible next to the parse + typecheck work
//! a hit saves.
//!
//! Sharding removes the last global lock on the hot `prepare` path: keys are
//! distributed over [`SHARD_COUNT`] independently locked shards by hash, so
//! concurrent `prepare` traffic for *different* texts contends only when two
//! texts land in one shard. Hit/miss counters are lock-free atomics beside
//! the shards. Caches below [`SHARD_THRESHOLD`] entries keep a single shard:
//! tiny caches are configured for tests and benchmarks that pin exact global
//! LRU ordering, and sharding a 3-entry cache would change which key gets
//! evicted (per-shard LRU is exact only within a shard).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Shards used for caches of at least [`SHARD_THRESHOLD`] entries.
pub(crate) const SHARD_COUNT: usize = 8;

/// Minimum total capacity at which the cache is sharded at all.
pub(crate) const SHARD_THRESHOLD: usize = 64;

/// An LRU map with a fixed capacity. A capacity of `0` disables storage
/// entirely (every lookup misses, every insert is dropped) — the engine uses
/// that to offer an uncached "cold" mode for benchmarking.
#[derive(Debug)]
pub(crate) struct LruCache<K, V> {
    capacity: usize,
    stamp: u64,
    map: HashMap<K, (u64, V)>,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    pub(crate) fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            stamp: 0,
            map: HashMap::new(),
            evictions: 0,
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|slot| {
            slot.0 = stamp;
            slot.1.clone()
        })
    }

    /// Insert a key, evicting the least recently used entry at capacity.
    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (self.stamp, value));
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }
}

/// A sharded, internally locked LRU map with hit/miss accounting — the
/// engine's prepared-plan cache.
///
/// `capacity` is the total budget, split evenly across shards (rounded up, so
/// an 8-shard cache of capacity 256 holds exactly 32 plans per shard).
/// Eviction is LRU *per shard*: recency is exact within a shard, and keys
/// only compete for slots with the other keys hashed to their shard.
#[derive(Debug)]
pub(crate) struct ShardedLru<K, V> {
    shards: Vec<Mutex<LruCache<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> ShardedLru<K, V> {
    pub(crate) fn new(capacity: usize) -> ShardedLru<K, V> {
        let shard_count = if capacity < SHARD_THRESHOLD {
            1
        } else {
            SHARD_COUNT
        };
        let per_shard = capacity.div_ceil(shard_count.max(1)).min(capacity);
        ShardedLru {
            shards: (0..shard_count)
                .map(|_| Mutex::new(LruCache::new(per_shard)))
                .collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity,
        }
    }

    fn shard(&self, key: &K) -> &Mutex<LruCache<K, V>> {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % self.shards.len()]
    }

    /// Look up a key, counting a hit or miss. Only the key's own shard is
    /// locked, and only for the duration of the LRU stamp refresh — the fast
    /// read path concurrent `prepare` hits take.
    pub(crate) fn get(&self, key: &K) -> Option<V> {
        let found = self.shard(key).lock().unwrap().get(key);
        if found.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        found
    }

    /// Double-checked insert: if `key` was inserted by a racing thread since
    /// the caller's miss, adopt and return the existing value (preserving the
    /// same-`Arc` contract for plan handles); otherwise insert `value` and
    /// return it. Does not touch the hit/miss counters — the race's losers
    /// already counted their misses.
    pub(crate) fn insert_if_absent(&self, key: K, value: V) -> V {
        let mut shard = self.shard(&key).lock().unwrap();
        if let Some(existing) = shard.get(&key) {
            return existing;
        }
        shard.insert(key, value.clone());
        value
    }

    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub(crate) fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    pub(crate) fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().evictions())
            .sum()
    }

    /// Number of shards (observability for tests).
    #[cfg(test)]
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut c: LruCache<&str, u32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh a; b is now the LRU entry
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b was evicted");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut c: LruCache<&str, u32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c: LruCache<&str, u32> = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn small_caches_stay_single_sharded_and_exactly_lru() {
        let c: ShardedLru<&str, u32> = ShardedLru::new(2);
        assert_eq!(c.shard_count(), 1);
        assert_eq!(c.insert_if_absent("a", 1), 1);
        assert_eq!(c.insert_if_absent("b", 2), 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh a; b is the LRU entry
        c.insert_if_absent("c", 3);
        assert_eq!(c.get(&"b"), None, "b was evicted across the whole cache");
        assert_eq!((c.hits(), c.misses(), c.evictions()), (1, 1, 1));
    }

    #[test]
    fn large_caches_shard_and_split_the_budget() {
        let c: ShardedLru<u32, u32> = ShardedLru::new(256);
        assert_eq!(c.shard_count(), SHARD_COUNT);
        assert_eq!(c.capacity(), 256);
        for k in 0..256u32 {
            c.insert_if_absent(k, k);
        }
        // All keys fit: 8 shards × 32 slots. (Hashing is not perfectly even,
        // so allow the handful of evictions an unlucky shard may take.)
        assert!(c.len() >= 200, "len {}", c.len());
    }

    #[test]
    fn insert_if_absent_returns_the_winner() {
        let c: ShardedLru<&str, u32> = ShardedLru::new(4);
        assert_eq!(c.insert_if_absent("k", 1), 1);
        assert_eq!(c.insert_if_absent("k", 2), 1, "first insert wins");
        assert_eq!(c.get(&"k"), Some(1));
    }

    #[test]
    fn zero_capacity_sharded_cache_stores_nothing() {
        let c: ShardedLru<&str, u32> = ShardedLru::new(0);
        c.insert_if_absent("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.misses(), 1);
    }
}
