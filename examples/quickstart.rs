//! Quickstart: build a small ordered database, write queries in both the Rust
//! builder API and the surface syntax, run them through the engine's
//! `Session`, and look at the work/span cost model that makes the NC claims of
//! the paper measurable.
//!
//! Run with: `cargo run --example quickstart`

use ncql::core::expr::Expr;
use ncql::queries::{graph, parity, Relation};
use ncql::surface;
use ncql::{object::Value, Session};

fn main() {
    // One session serves every query in this example: it owns the registry Σ,
    // the resource limits, the backend choice, and the prepared-plan cache.
    let session = Session::new();

    // An ordered database: a binary relation (a small directed graph).
    let edges = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 4), (4, 2), (7, 8)]);
    let r = Expr::constant(edges.to_value());

    // --- Transitive closure via divide-and-conquer recursion (the §1 example),
    // phrased in the Rust builder API and prepared (typechecked + analysed).
    let tc_query = session
        .prepare_expr(graph::tc_dcr(r.clone()))
        .expect("the query typechecks");
    println!(
        "transitive closure query : dcr(∅, λy.r, λ(r1,r2). r1 ∪ r2 ∪ r1∘r2)(Π1 r ∪ Π2 r) (type {})",
        tc_query.ty()
    );
    println!(
        "recursion nesting depth  : {} (so the query is in AC^{})",
        tc_query.recursion_depth(),
        tc_query.ac_level()
    );

    let outcome = session.execute(&tc_query).expect("evaluation succeeds");
    println!("result                   : {}", outcome.value);
    println!(
        "work / span              : {} / {}",
        outcome.stats.work, outcome.stats.span
    );
    println!(
        "combiner applications    : {}",
        outcome.stats.combiner_calls
    );

    // Cross-check against the native baseline.
    assert_eq!(outcome.value, edges.transitive_closure().to_value());
    println!("matches the native semi-naive baseline ✓");

    // --- Parity, straight from the paper's introduction.
    let numbers = Expr::constant(Value::atom_set(0..13));
    let parity_out = session
        .evaluate(&parity::parity_dcr(numbers))
        .expect("parity evaluates");
    println!(
        "\nparity of a 13-element set: {} (span {}, work {})",
        parity_out.value, parity_out.stats.span, parity_out.stats.work
    );

    // --- The same queries can be written in the surface syntax; `prepare`
    // parses, typechecks and caches the plan, `execute` evaluates it.
    let text = "dcr(false, \\y: atom. true, \
                \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, \
                {@1} union {@2} union {@3} union {@4} union {@5})";
    let prepared = session.prepare(text).expect("the surface query prepares");
    let value = session
        .execute(&prepared)
        .expect("the parsed query evaluates")
        .value;
    println!("\nsurface-syntax parity of {{1..5}}: {value}");
    println!("pretty-printed back        : {}", prepared.normal_form());

    // Preparing the same text again is a cache hit: the same plan comes back.
    let again = session.prepare(text).expect("hit");
    assert!(again.ptr_eq(&prepared));
    let metrics = session.cache_metrics();
    println!(
        "plan cache                 : {} hit(s), {} miss(es)",
        metrics.hits, metrics.misses
    );
    // The surface round trip (pretty ∘ parse) is the identity on this query.
    assert_eq!(
        surface::print_expr(&surface::parse(text).unwrap()),
        prepared.normal_form()
    );
}
