//! Property tests for the prepare-time cost bounds of `ncql_core::analyze`:
//! for randomly generated queries from the differential template family, the
//! measured `CostStats` must sit between the analyser's guaranteed floor and
//! its upper bound — on the sequential backend and on the work-stealing pool
//! (random thread count, pool size and steal seed), whose stats are
//! bit-identical by the parallel backend's contract.
//!
//! A second property analyses the *open* form of each template once (the set
//! argument is a free schema relation `r`) and checks the one symbolic bound
//! against many concrete cardinalities — the "analyse once, execute many"
//! contract the engine relies on.

use ncql_core::analyze::{analyze_query, Poly, QueryAnalysis};
use ncql_core::eval::{eval_with_stats, CostStats, EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_core::externs::ExternRegistry;
use ncql_core::parallel::ParallelEvaluator;
use ncql_object::{Type, Value};
use proptest::prelude::*;

fn xor_combiner() -> Expr {
    Expr::lam2(
        "a",
        "b",
        Type::prod(Type::Bool, Type::Bool),
        Expr::ite(
            Expr::var("a"),
            Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
            Expr::var("b"),
        ),
    )
}

/// The template family of the parallel property suite, parameterized by the
/// set argument so the same shapes serve the closed and the open property.
fn query_over(shape: u64, arg: Expr, shift: u64) -> Expr {
    match shape % 4 {
        0 => Expr::dcr(
            Expr::bool_val(false),
            Expr::lam("y", Type::Base, Expr::bool_val(true)),
            xor_combiner(),
            arg,
        ),
        1 => Expr::dcr(
            Expr::nat(0),
            Expr::lam(
                "x",
                Type::Base,
                Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
            ),
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::Nat, Type::Nat),
                Expr::extern_call("nat_add", vec![Expr::var("a"), Expr::var("b")]),
            ),
            arg,
        ),
        2 => Expr::ext(
            Expr::lam(
                "x",
                Type::Base,
                Expr::union(
                    Expr::singleton(Expr::var("x")),
                    Expr::singleton(Expr::extern_call(
                        "nat_to_atom",
                        vec![Expr::extern_call(
                            "nat_add",
                            vec![
                                Expr::extern_call("atom_to_nat", vec![Expr::var("x")]),
                                Expr::nat(shift),
                            ],
                        )],
                    )),
                ),
            ),
            arg,
        ),
        _ => Expr::esr(
            Expr::bool_val(false),
            Expr::lam2(
                "y",
                "acc",
                Type::prod(Type::Base, Type::Bool),
                Expr::ite(
                    Expr::var("acc"),
                    Expr::bool_val(false),
                    Expr::bool_val(true),
                ),
            ),
            arg,
        ),
    }
}

/// Assert floor ≤ measured ≤ bound with the given cardinality lookup; the
/// template family must always get finite bounds.
fn assert_covers(
    analysis: &QueryAnalysis,
    stats: &CostStats,
    lookup: &dyn Fn(&str) -> Option<u64>,
    context: &str,
) {
    let cost = &analysis.cost;
    let work_hi = cost
        .work
        .eval(lookup)
        .unwrap_or_else(|| panic!("{context}: work bound not finite"));
    let span_hi = cost
        .span
        .eval(lookup)
        .unwrap_or_else(|| panic!("{context}: span bound not finite"));
    let floor = cost.work_floor.eval(lookup).unwrap_or(0);
    assert!(
        floor <= stats.work,
        "{context}: floor {floor} exceeds measured work {}",
        stats.work
    );
    assert!(
        stats.work <= work_hi,
        "{context}: measured work {} exceeds bound {work_hi}",
        stats.work
    );
    assert!(
        stats.span <= span_hi,
        "{context}: measured span {} exceeds bound {span_hi}",
        stats.span
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn closed_bounds_cover_both_backends(
        shape in 0u64..4,
        atoms in proptest::collection::vec(0u64..500, 0..50),
        shift in 1u64..40,
        threads in 2usize..9,
        pool_threads in 2usize..10,
        steal_seed in proptest::prelude::any::<u64>(),
    ) {
        let q = query_over(shape, Expr::constant(Value::atom_set(atoms)), shift);
        let analysis = analyze_query(&q, &[], &ExternRegistry::standard());
        let (_, seq) = eval_with_stats(&q).expect("sequential eval");
        assert_covers(&analysis, &seq, &|_| None, &format!("shape {shape} (sequential)"));
        let mut par_ev = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(threads),
            parallel_cutoff: 1,
            pool_threads: Some(pool_threads),
            pool_steal_seed: steal_seed,
            ..EvalConfig::default()
        });
        par_ev.eval_closed(&q).expect("parallel eval");
        assert_covers(&analysis, &par_ev.stats(), &|_| None, &format!("shape {shape} (parallel)"));
    }

    #[test]
    fn compaction_sandwiches_the_exact_polynomial(
        coeffs in proptest::collection::vec(1u64..6, 36..48),
        vals in proptest::collection::vec(0u64..30, 12..13),
    ) {
        // Build a polynomial with more distinct monomials than `MAX_TERMS`
        // (32), mixing linear, quadratic, mixed and log-carrying terms, so
        // both compaction directions actually coarsen. The audit contract:
        // `compact_lower` may only shrink and `compact_upper` may only grow —
        // the exact polynomial is sandwiched at every evaluation point.
        let mut exact = Poly::zero();
        for (i, c) in coeffs.iter().enumerate() {
            let v = Poly::var(&format!("x{}", i % 12));
            let term = match i % 4 {
                0 => v,
                1 => v.mul(&v),
                2 => v.mul(&Poly::log_var(&format!("x{}", i % 12))),
                _ => v.mul(&Poly::var(&format!("x{}", (i + 1) % 12))),
            };
            exact = exact.add(&term.scale(*c));
        }
        let upper = exact.clone().compact_upper();
        let lower = exact.clone().compact_lower();
        let lookup = |name: &str| {
            name.strip_prefix('x')
                .and_then(|i| i.parse::<usize>().ok())
                .map(|i| vals[i % vals.len()])
        };
        let at = exact.eval(&lookup).expect("exact is finite");
        let hi = upper.eval(&lookup).expect("upper stays finite");
        let lo = lower.eval(&lookup).expect("lower stays finite");
        prop_assert!(lo <= at, "compact_lower grew the polynomial: {lo} > {at}");
        prop_assert!(at <= hi, "compact_upper shrank the polynomial: {at} > {hi}");
    }

    #[test]
    fn pointwise_le_is_sound(
        base in proptest::collection::vec((0u64..8, 1u64..5), 1..10),
        extra in proptest::collection::vec((0u64..8, 1u64..5), 0..6),
        vals in proptest::collection::vec(0u64..40, 8..9),
    ) {
        // `le_pointwise` drives the optimizer's cost gate; it may refuse a
        // true inequality (incomplete) but must never affirm a false one.
        let build = |terms: &[(u64, u64)]| {
            let mut p = Poly::zero();
            for (var, coeff) in terms {
                let v = Poly::var(&format!("x{}", var % 8));
                let term = if var % 2 == 0 { v.clone() } else { v.mul(&v) };
                p = p.add(&term.scale(*coeff));
            }
            p
        };
        let a = build(&base);
        let b = a.add(&build(&extra));
        // Adding terms can only grow the polynomial, and every monomial of
        // `a` survives in `b` with an equal-or-larger coefficient, so the
        // greedy matcher must find the witness.
        prop_assert!(a.le_pointwise(&b), "le_pointwise missed {a} <= {b}");
        // Soundness on arbitrary pairs: whenever the comparison affirms,
        // numeric evaluation agrees at every sampled point.
        let c = build(&extra);
        for (p, q) in [(&a, &b), (&a, &c), (&c, &a), (&b, &c)] {
            if p.le_pointwise(q) {
                let lookup = |name: &str| {
                    name.strip_prefix('x')
                        .and_then(|i| i.parse::<usize>().ok())
                        .map(|i| vals[i % vals.len()])
                };
                let pv = p.eval(&lookup).expect("finite");
                let qv = q.eval(&lookup).expect("finite");
                prop_assert!(pv <= qv, "le_pointwise affirmed {p} <= {q} but {pv} > {qv}");
            }
        }
    }

    #[test]
    fn floors_stay_sound_at_max_terms_pressure(
        card_seed in proptest::collection::vec(0u64..6, 40..41),
    ) {
        // A query over 40 distinct schema relations gives the analyser more
        // monomials than `MAX_TERMS` can hold, forcing both coarsening
        // directions; the floor ≤ measured ≤ bound sandwich must survive.
        let mut arg = Expr::var("r0");
        for i in 1..40 {
            arg = Expr::union(arg, Expr::var(format!("r{i}")));
        }
        let q = Expr::ext(
            Expr::lam("x", Type::Base, Expr::singleton(Expr::var("x"))),
            arg,
        );
        let schema: Vec<(String, Type)> = (0..40)
            .map(|i| (format!("r{i}"), Type::set(Type::Base)))
            .collect();
        let analysis = analyze_query(&q, &schema, &ExternRegistry::standard());
        let bindings: Vec<(String, Value)> = card_seed
            .iter()
            .enumerate()
            .map(|(i, n)| (format!("r{i}"), Value::atom_set(i as u64 * 10..i as u64 * 10 + n)))
            .collect();
        let mut ev = Evaluator::new(EvalConfig::default());
        ev.eval_with_bindings(&q, &bindings).expect("open eval");
        let lookup = |name: &str| {
            name.strip_prefix('r')
                .and_then(|i| i.parse::<usize>().ok())
                .map(|i| card_seed[i])
        };
        assert_covers(&analysis, &ev.stats(), &lookup, "40-relation union");
    }

    #[test]
    fn one_symbolic_bound_covers_many_cardinalities(
        shape in 0u64..4,
        sets in proptest::collection::vec(proptest::collection::vec(0u64..300, 0..40), 1..6),
        shift in 1u64..40,
    ) {
        // Analyse once, symbolically in |r| ...
        let q = query_over(shape, Expr::var("r"), shift);
        let schema = vec![("r".to_string(), Type::set(Type::Base))];
        let analysis = analyze_query(&q, &schema, &ExternRegistry::standard());
        // ... then check that one bound against every concrete input.
        for atoms in sets {
            let value = Value::atom_set(atoms);
            let m = value.cardinality().unwrap_or(0) as u64;
            let mut ev = Evaluator::new(EvalConfig::default());
            ev.eval_with_bindings(&q, &[("r".to_string(), value)])
                .expect("open eval");
            let lookup = |name: &str| (name == "r").then_some(m);
            assert_covers(&analysis, &ev.stats(), &lookup, &format!("shape {shape} at |r|={m}"));
        }
    }
}
