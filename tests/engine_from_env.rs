//! `SessionBuilder::from_env` coverage: `NCQL_PARALLELISM` selects the
//! backend, `NCQL_PARALLEL_CUTOFF` tunes the fork threshold,
//! `NCQL_POOL_THREADS` sizes the session's persistent work-stealing pool, and
//! `NCQL_OPT` selects the optimizer level.
//!
//! This is deliberately the **only** test in this integration-test binary.
//! `std::env::set_var` racing any concurrent `std::env::var` read is
//! undefined behaviour on POSIX (the `environ` block can be reallocated
//! mid-read — the reason `set_var` is `unsafe` in edition 2024), and the Rust
//! test harness runs a binary's tests on parallel threads. One test per
//! binary means one thread per process touches the environment, and other
//! test binaries are separate processes with their own `environ`. Keep any
//! future env-mutating scenario inside this one function.

use ncql::object::Value;
use ncql::{Backend, OptLevel, SessionBuilder};

#[test]
fn builder_from_env_reads_the_knobs() {
    let clear = || {
        std::env::remove_var("NCQL_PARALLELISM");
        std::env::remove_var("NCQL_PARALLEL_CUTOFF");
        std::env::remove_var("NCQL_POOL_THREADS");
        std::env::remove_var("NCQL_OPT");
    };

    clear();
    let default_session = SessionBuilder::from_env().build();
    assert_eq!(default_session.backend(), Backend::Sequential);
    assert_eq!(default_session.config().pool_threads, None);
    let default_cutoff = default_session.config().parallel_cutoff;

    std::env::set_var("NCQL_PARALLELISM", "4");
    std::env::set_var("NCQL_PARALLEL_CUTOFF", "128");
    std::env::set_var("NCQL_POOL_THREADS", "8");
    let configured = SessionBuilder::from_env().build();
    assert_eq!(configured.backend(), Backend::Parallel { threads: 4 });
    assert_eq!(configured.config().parallel_cutoff, 128);
    // The pool may be sized independently of the parallelism knob — the CI
    // matrix uses this to oversubscribe stealing on a small runner.
    assert_eq!(configured.config().pool_threads, Some(8));
    assert_eq!(configured.config().effective_pool_threads(), 8);

    // Degenerate pool sizes normalize exactly like degenerate parallelism:
    // the pool knob falls back to "size by parallelism".
    std::env::set_var("NCQL_POOL_THREADS", "1");
    let degenerate_pool = SessionBuilder::from_env().build();
    assert_eq!(degenerate_pool.config().pool_threads, None);
    assert_eq!(degenerate_pool.config().effective_pool_threads(), 4);
    std::env::remove_var("NCQL_POOL_THREADS");

    // Degenerate parallelism from the environment is normalized like any other.
    std::env::set_var("NCQL_PARALLELISM", "1");
    std::env::remove_var("NCQL_PARALLEL_CUTOFF");
    let sequentialized = SessionBuilder::from_env().build();
    assert_eq!(sequentialized.backend(), Backend::Sequential);
    assert_eq!(sequentialized.config().parallelism, None);
    assert_eq!(sequentialized.config().parallel_cutoff, default_cutoff);

    // Garbage is ignored, not an error.
    std::env::set_var("NCQL_PARALLELISM", "not-a-number");
    std::env::set_var("NCQL_PARALLEL_CUTOFF", "-3");
    let ignored = SessionBuilder::from_env().build();
    assert_eq!(ignored.backend(), Backend::Sequential);
    assert_eq!(ignored.config().parallel_cutoff, default_cutoff);

    // An explicit builder call still overrides whatever the environment said.
    std::env::set_var("NCQL_PARALLELISM", "2");
    let overridden = SessionBuilder::from_env().parallelism(Some(8)).build();
    assert_eq!(overridden.backend(), Backend::Parallel { threads: 8 });

    // The env-configured session actually evaluates on its backend.
    let via_env = SessionBuilder::from_env().parallel_cutoff(1).build();
    let out = via_env.run("card({@1} union {@2} union {@3})").unwrap();
    assert_eq!(out.value, Value::Nat(3));
    assert_eq!(out.backend, Backend::Parallel { threads: 2 });
    clear();

    // `NCQL_OPT` selects the optimizer level; every spelling is accepted and
    // garbage leaves the default untouched.
    assert_eq!(
        SessionBuilder::from_env().build().opt_level(),
        OptLevel::Default
    );
    for (raw, expected) in [
        ("0", OptLevel::None),
        ("none", OptLevel::None),
        ("off", OptLevel::None),
        ("1", OptLevel::Default),
        ("default", OptLevel::Default),
        ("on", OptLevel::Default),
        ("garbage", OptLevel::Default),
    ] {
        std::env::set_var("NCQL_OPT", raw);
        assert_eq!(
            SessionBuilder::from_env().build().opt_level(),
            expected,
            "NCQL_OPT={raw}"
        );
    }

    // Flipping `NCQL_OPT` between sessions never serves a stale plan: the
    // optimizer level is part of the plan-cache key, so the `NCQL_OPT=0`
    // session's plan is the raw AST even though an optimizing session already
    // prepared (and rewrote) the same text.
    let foldable = "{@1} union {@2} union {@1}";
    std::env::set_var("NCQL_OPT", "1");
    let optimizing = SessionBuilder::from_env().build();
    let rewritten = optimizing.prepare(foldable).unwrap();
    assert!(
        !rewritten.rewrites().is_empty(),
        "the closed union folds under the default level"
    );
    std::env::set_var("NCQL_OPT", "0");
    let raw_session = SessionBuilder::from_env().build();
    let raw_plan = raw_session.prepare(foldable).unwrap();
    assert!(
        raw_plan.rewrites().is_empty(),
        "NCQL_OPT=0 must not rewrite"
    );
    assert_eq!(raw_plan.optimized_form(), raw_plan.normal_form());
    assert_ne!(raw_plan.optimized_form(), rewritten.optimized_form());
    // Both plans still agree on the value.
    assert_eq!(
        raw_session.execute(&raw_plan).unwrap().value,
        optimizing.execute(&rewritten).unwrap().value
    );
    clear();
}
