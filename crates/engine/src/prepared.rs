//! Prepared queries and execution outcomes.

use crate::diagnostics::Diagnostic;
use ncql_core::eval::CostStats;
use ncql_core::expr::Expr;
use ncql_core::rewrite::{FiredRewrite, OptLevel};
use ncql_core::{CostBound, KernelSite, QueryAnalysis};
use ncql_object::{Type, Value};
use std::fmt;
use std::sync::Arc;

/// Everything the front end (parse → typecheck → analysis) computes for one
/// query, shared behind an `Arc` by every [`PreparedQuery`] handle the cache
/// vends for it.
#[derive(Debug)]
pub(crate) struct PreparedPlan {
    /// The original surface text, when the query was prepared from text.
    pub(crate) source: Option<String>,
    /// The parsed (or caller-supplied) abstract syntax.
    pub(crate) expr: Expr,
    /// The inferred type under the session's registry Σ.
    pub(crate) ty: Type,
    /// The free-variable schema the query was checked against (empty for a
    /// closed query); bindings supplied at execution time must cover it.
    pub(crate) schema: Vec<(String, Type)>,
    /// Depth of recursion nesting (§3): the ACᵏ stratification level.
    pub(crate) depth: usize,
    /// The ACᵏ level predicted by Theorems 6.1/6.2 (`max(1, depth)`).
    pub(crate) ac_level: usize,
    /// The pretty-printed normal form of the query (the parser/printer
    /// fixpoint the round-trip suite pins down). Always printed from the
    /// *raw* typed AST, so it re-parses to the plan the user wrote even when
    /// the optimizer rewrote what executes.
    pub(crate) normal_form: String,
    /// The pretty-printed form of the plan that actually executes (equal to
    /// `normal_form` when no rewrite fired). May contain optimizer-generated
    /// `%`-prefixed binders and constant literals the surface grammar cannot
    /// re-parse — this is a display form, not a round-trip form.
    pub(crate) optimized_form: String,
    /// The prepare-time static analysis: symbolic work/span bounds of the
    /// *executing* (possibly rewritten) plan and lint findings of the *raw*
    /// expression. Computed once per plan, shared by every handle.
    pub(crate) analysis: QueryAnalysis,
    /// The optimizer level the plan was prepared under.
    pub(crate) opt_level: OptLevel,
    /// Every cost-gate-accepted rewrite, in firing order (empty at
    /// [`OptLevel::None`] or when nothing fired).
    pub(crate) rewrites: Vec<FiredRewrite>,
    /// The raw expression's cost bounds, kept only when at least one rewrite
    /// fired (`None` means the executing plan *is* the raw plan, so
    /// [`PreparedQuery::analysis`] already bounds it).
    pub(crate) cost_before: Option<CostBound>,
    /// What the row-kernel compiler decided about every `ext` site of the
    /// *executing* plan (see [`ncql_core::kernel::analyze_sites`]): which
    /// sites will run through a compiled kernel over columnar input, and why
    /// the others fall back to the interpreter.
    pub(crate) kernel_sites: Vec<KernelSite>,
}

/// A query that has been parsed, type-checked and analysed once, ready to be
/// executed any number of times by the [`Session`](crate::Session) that
/// prepared it. Cloning is O(1): handles share the underlying plan.
#[derive(Debug, Clone)]
pub struct PreparedQuery {
    pub(crate) plan: Arc<PreparedPlan>,
}

impl PreparedQuery {
    /// The inferred type of the query under the session's registry Σ.
    pub fn ty(&self) -> &Type {
        &self.plan.ty
    }

    /// The depth of recursion/iteration nesting (§3). Depth `k ≥ 1` places a
    /// flat query in ACᵏ by Theorem 6.2.
    pub fn recursion_depth(&self) -> usize {
        self.plan.depth
    }

    /// The ACᵏ level predicted by Theorems 6.1/6.2: `max(1, depth)`.
    pub fn ac_level(&self) -> usize {
        self.plan.ac_level
    }

    /// The pretty-printed normal form of the query, printed from the raw
    /// typed AST: it re-parses to an equivalent plan regardless of what the
    /// optimizer did. See [`PreparedQuery::optimized_form`] for the plan that
    /// actually executes.
    pub fn normal_form(&self) -> &str {
        &self.plan.normal_form
    }

    /// The pretty-printed form of the plan the session will execute. Equal to
    /// [`PreparedQuery::normal_form`] when no rewrite fired; a rewritten plan
    /// may mention optimizer-generated `%`-prefixed binders and folded
    /// constants, so this is a display form — it is not guaranteed to
    /// re-parse.
    pub fn optimized_form(&self) -> &str {
        &self.plan.optimized_form
    }

    /// The optimizer level the plan was prepared under.
    pub fn opt_level(&self) -> OptLevel {
        self.plan.opt_level
    }

    /// Every rewrite the cost gate accepted while preparing this plan, in
    /// firing order. Empty at [`OptLevel::None`] or when nothing fired.
    pub fn rewrites(&self) -> &[FiredRewrite] {
        &self.plan.rewrites
    }

    /// The *raw* expression's symbolic cost bounds, when at least one rewrite
    /// fired — compare against [`PreparedQuery::analysis`]'s cost (which
    /// describes the executing plan) to see what the optimizer bought.
    /// `None` means the executing plan is the raw plan.
    pub fn raw_cost(&self) -> Option<&CostBound> {
        self.plan.cost_before.as_ref()
    }

    /// The abstract syntax the session will evaluate.
    pub fn expr(&self) -> &Expr {
        &self.plan.expr
    }

    /// The original surface text, when the query was prepared from text
    /// (`None` when it was prepared from a pre-built [`Expr`]).
    pub fn source(&self) -> Option<&str> {
        self.plan.source.as_deref()
    }

    /// The free-variable schema declared at preparation time (empty for a
    /// closed query).
    pub fn schema(&self) -> &[(String, Type)] {
        &self.plan.schema
    }

    /// The prepare-time static analysis: symbolic work/span bounds in the
    /// schema-relation cardinalities plus the lint findings. Computed exactly
    /// once per plan (cache hits share it).
    pub fn analysis(&self) -> &QueryAnalysis {
        &self.plan.analysis
    }

    /// The lint findings rendered as caret diagnostics against the prepared
    /// source text (warnings labelled `warning:`, deny findings `error:`).
    /// Findings of a builder-API plan (no source text) render without carets.
    pub fn lint_diagnostics(&self) -> Vec<Diagnostic> {
        let source = self.source().unwrap_or("");
        self.plan
            .analysis
            .findings
            .iter()
            .map(|finding| Diagnostic::from_finding(finding, source))
            .collect()
    }

    /// The row-kernel compiler's prepare-time decision for every `ext` site
    /// of the executing plan, in plan order: a site with `compiled == true`
    /// runs through a compiled row kernel whenever its argument set is
    /// columnar and kernels are enabled (the compiler is deterministic in the
    /// body, the input shape and the registry, so the prepare-time decision
    /// *is* the runtime decision); the `detail` of a fallback site is the
    /// compiler's rejection reason.
    pub fn kernel_sites(&self) -> &[KernelSite] {
        &self.plan.kernel_sites
    }

    /// Do two handles share one underlying plan? A cache hit in
    /// [`Session::prepare`](crate::Session::prepare) returns a handle for
    /// which this is `true` relative to the first preparation — that pointer
    /// identity is the observable proof that the front end ran only once.
    pub fn ptr_eq(&self, other: &PreparedQuery) -> bool {
        Arc::ptr_eq(&self.plan, &other.plan)
    }
}

/// Which evaluation backend a session dispatches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The sequential reference evaluator.
    Sequential,
    /// The parallel backend, forking `ext`/`dcr` regions across this many
    /// worker threads.
    Parallel {
        /// Worker thread count (always ≥ 2; degenerate requests are
        /// normalized to [`Backend::Sequential`] at session build time).
        threads: usize,
    },
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Sequential => write!(f, "sequential"),
            Backend::Parallel { threads } => write!(f, "parallel ({threads} threads)"),
        }
    }
}

/// The result of executing a query: the value, the work/span cost statistics
/// (bit-identical across backends — the differential suite's contract), and
/// which backend ran it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The query's value.
    pub value: Value,
    /// Work/span cost statistics of the evaluation.
    pub stats: CostStats,
    /// The backend that produced the value.
    pub backend: Backend,
}
