//! The parallel evaluation backend: a thin, explicit front door over the
//! parallel dispatch built into [`crate::eval::Evaluator`].
//!
//! The paper's Theorem 6.2 places the `bdcr` language in NC because `ext`
//! applies its function to all elements *independently* and the `dcr`
//! combining tree has depth `⌈log₂ m⌉`. The evaluator's cost model has always
//! scored queries that way; with `EvalConfig::parallelism` set, the same two
//! constructs are actually forked across worker threads — since this
//! revision onto a *persistent work-stealing pool*
//! ([`ncql_pram::WorkStealingPool`]): one lazily-spawned worker set per
//! `ParallelEvaluator` (or per engine `Session`), a chunk deque per worker
//! with stealing at region boundaries, so a region costs a queue push rather
//! than a thread spawn and uneven leaf costs rebalance. The NC bound is a
//! span claim, and span only survives into wall-clock when regions don't pay
//! thread start-up latency per combining round. The backends remain
//! *observationally identical*: values, work, span and every per-construct
//! counter agree bit-for-bit under every pool size and steal schedule, and a
//! resource-limit error (`SetTooLarge` / `WorkLimitExceeded`) fires in a
//! parallel run exactly when one fires sequentially — though when both
//! limits are crossed by the same evaluation, which of the two is reported
//! may differ, since shards discover their budget overruns concurrently. The
//! differential suite and `tests/pool_scheduling_stress.rs` pin all of this
//! down.
//!
//! Cutover: forking a region only pays when there is enough work to amortize
//! region dispatch, so a region (leaf map, `ext` map, or one combining round)
//! is forked only when `applications × per-application cost` (the closure
//! body's static work bound from [`crate::analyze`] when finite, else
//! `1 + body size`) reaches
//! `EvalConfig::parallel_cutoff`; smaller regions — and the top of every
//! combining tree — run sequentially on the calling thread. Forked regions
//! additionally borrow workers from the pool's thread-budget semaphore, which
//! is what lets a *nested* `dcr` (one inside another's leaf map) borrow
//! whatever workers the outer region left idle instead of being forced
//! sequential; an inner region that gets no permit stays inline.

use crate::eval::{CostStats, EvalConfig, Evaluator};
use crate::expr::Expr;
use crate::EvalResult;
use ncql_object::Value;

/// An evaluator that forks `ext` element maps and `dcr`/`sru`/`bdcr` leaf maps
/// and combining-tree rounds across worker threads. Produces bit-identical
/// values and cost statistics to the sequential [`Evaluator`].
#[derive(Debug)]
pub struct ParallelEvaluator {
    inner: Evaluator,
}

impl ParallelEvaluator {
    /// Create a parallel evaluator with the default configuration and the
    /// given number of worker threads (values `0` and `1` degrade to the
    /// sequential backend).
    pub fn new(threads: usize) -> ParallelEvaluator {
        ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(threads),
            ..EvalConfig::default()
        })
    }

    /// Create a parallel evaluator from a full configuration. A `parallelism`
    /// of `None` is upgraded to the number of available cores — constructing a
    /// `ParallelEvaluator` is an explicit request for the parallel backend.
    pub fn with_config(config: EvalConfig) -> ParallelEvaluator {
        let threads = config
            .parallelism
            .unwrap_or_else(ncql_pram::available_threads);
        ParallelEvaluator {
            inner: Evaluator::new(EvalConfig {
                parallelism: Some(threads),
                ..config
            }),
        }
    }

    /// The number of worker threads this evaluator forks onto.
    pub fn threads(&self) -> usize {
        self.inner.config().parallelism.unwrap_or(1)
    }

    /// Attach a persistent work-stealing pool, replacing the one the
    /// evaluator would otherwise create lazily on its first evaluation. The
    /// engine's `Session` shares one pool across every execution this way.
    pub fn attach_pool(&mut self, pool: std::sync::Arc<ncql_pram::WorkStealingPool>) {
        self.inner.attach_pool(pool);
    }

    /// The pool parallel regions fork onto, once one has been created or
    /// attached (lazily: `None` before the first evaluation).
    pub fn pool(&self) -> Option<&std::sync::Arc<ncql_pram::WorkStealingPool>> {
        self.inner.pool()
    }

    /// Attach a cooperative cancellation token (see
    /// [`Evaluator::attach_cancel`]); every worker thread of the evaluation
    /// inherits it, so one `cancel` stops them all.
    pub fn attach_cancel(&mut self, token: crate::eval::CancelToken) {
        self.inner.attach_cancel(token);
    }

    /// The configuration in use.
    pub fn config(&self) -> &EvalConfig {
        self.inner.config()
    }

    /// Cost statistics of the most recent evaluation (identical to what the
    /// sequential backend reports for the same query).
    pub fn stats(&self) -> CostStats {
        self.inner.stats()
    }

    /// Evaluate a closed expression of object type. Resets the statistics.
    pub fn eval_closed(&mut self, expr: &Expr) -> EvalResult<Value> {
        self.inner.eval_closed(expr)
    }

    /// Evaluate an expression whose free variables are bound to the given
    /// complex-object values. Resets the statistics.
    pub fn eval_with_bindings(
        &mut self,
        expr: &Expr,
        bindings: &[(String, Value)],
    ) -> EvalResult<Value> {
        self.inner.eval_with_bindings(expr, bindings)
    }
}

/// Evaluate a closed expression on the parallel backend with the given number
/// of worker threads, returning the value and the cost statistics.
pub fn eval_parallel(expr: &Expr, threads: usize) -> EvalResult<(Value, CostStats)> {
    let mut ev = ParallelEvaluator::new(threads);
    let v = ev.eval_closed(expr)?;
    Ok((v, ev.stats()))
}

/// Normalize a requested parallelism knob to its canonical form: `Some(0)` and
/// `Some(1)` mean "no parallelism", exactly like `None`, and are mapped to
/// `None` here — in one place — so a configuration never records a degenerate
/// thread count. Every front door that accepts a parallelism override
/// (`ncql_queries::eval_query_with`, the engine's `SessionBuilder`) routes the
/// request through this function before storing it in an
/// [`crate::eval::EvalConfig`]; without the normalization a caller
/// passing `Some(1)` would silently overwrite a base configuration's knob with
/// a value that *looks* parallel but evaluates sequentially.
pub fn normalize_parallelism(requested: Option<usize>) -> Option<usize> {
    match requested {
        Some(n) if n >= 2 => Some(n),
        _ => None,
    }
}

/// The parallelism requested through the *test* environment knob
/// `NCQL_TEST_PARALLELISM`: `None` when unset, empty, or unparseable. The CI
/// matrix sets it so the differential suite and the bench parallel variants
/// exercise both backends on every push. User-facing surfaces (the REPL
/// example) read their own `NCQL_PARALLELISM` knob instead, so the test
/// variable never silently overrides an explicit user request.
pub fn parallelism_from_env() -> Option<usize> {
    let raw = std::env::var("NCQL_TEST_PARALLELISM").ok()?;
    raw.trim().parse::<usize>().ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::EvalError;
    use crate::eval::eval_with_stats;
    use crate::externs::ExternRegistry;
    use ncql_object::Type;

    fn parity(n: u64) -> Expr {
        let xor = Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            Expr::ite(
                Expr::var("a"),
                Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
                Expr::var("b"),
            ),
        );
        Expr::dcr(
            Expr::bool_val(false),
            Expr::lam("y", Type::Base, Expr::bool_val(true)),
            xor,
            Expr::constant(Value::atom_set(0..n)),
        )
    }

    #[test]
    fn parallel_backend_matches_sequential_values_and_stats() {
        for n in [0u64, 1, 2, 63, 64, 257] {
            let e = parity(n);
            let (seq_v, seq_stats) = eval_with_stats(&e).unwrap();
            for threads in [1usize, 2, 4, 8] {
                let mut ev = ParallelEvaluator::with_config(EvalConfig {
                    parallelism: Some(threads),
                    parallel_cutoff: 1,
                    ..EvalConfig::default()
                });
                let par_v = ev.eval_closed(&e).unwrap();
                assert_eq!(par_v, seq_v, "value n={n} threads={threads}");
                assert_eq!(ev.stats(), seq_stats, "stats n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn ext_forks_and_matches() {
        let f = Expr::lam(
            "x",
            Type::Base,
            Expr::union(
                Expr::singleton(Expr::var("x")),
                Expr::singleton(Expr::atom(100_000)),
            ),
        );
        let e = Expr::ext(f, Expr::constant(Value::atom_set(0..500)));
        let (seq_v, seq_stats) = eval_with_stats(&e).unwrap();
        let mut ev = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(4),
            parallel_cutoff: 1,
            ..EvalConfig::default()
        });
        assert_eq!(ev.eval_closed(&e).unwrap(), seq_v);
        assert_eq!(ev.stats(), seq_stats);
    }

    #[test]
    fn work_limit_fires_identically_across_backends() {
        let e = parity(128);
        let (_, full) = eval_with_stats(&e).unwrap();
        for limit in [full.work, full.work - 1, full.work / 2, 10] {
            let mut seq = Evaluator::new(EvalConfig {
                max_work: limit,
                ..EvalConfig::default()
            });
            let mut par = ParallelEvaluator::with_config(EvalConfig {
                max_work: limit,
                parallelism: Some(4),
                parallel_cutoff: 1,
                ..EvalConfig::default()
            });
            let seq_out = seq.eval_closed(&e);
            let par_out = par.eval_closed(&e);
            match (seq_out, par_out) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "limit={limit}"),
                (
                    Err(EvalError::WorkLimitExceeded { limit: a, .. }),
                    Err(EvalError::WorkLimitExceeded { limit: b, .. }),
                ) => assert_eq!(a, b, "limit={limit}"),
                (s, p) => panic!("backends disagree at limit {limit}: seq={s:?} par={p:?}"),
            }
        }
    }

    /// Regression test for the panic-propagation contract at the language
    /// level: an extern that panics inside one shard must surface as
    /// `EvalError::WorkerPanicked` — not abort the process — and the payload
    /// message must survive.
    #[test]
    fn panicking_extern_surfaces_as_eval_error() {
        let mut registry = ExternRegistry::standard();
        registry.register("explode", vec![Type::Base], Type::Base, |args| {
            if args.first().and_then(Value::as_atom) == Some(13) {
                panic!("extern exploded on atom 13");
            }
            Ok(args[0].clone())
        });
        let f = Expr::lam(
            "x",
            Type::Base,
            Expr::singleton(Expr::extern_call("explode", vec![Expr::var("x")])),
        );
        let e = Expr::ext(f, Expr::constant(Value::atom_set(0..64)));
        let mut ev = ParallelEvaluator::with_config(EvalConfig {
            registry,
            parallelism: Some(4),
            parallel_cutoff: 1,
            ..EvalConfig::default()
        });
        match ev.eval_closed(&e) {
            Err(EvalError::WorkerPanicked { message: msg, .. }) => {
                assert!(msg.contains("extern exploded on atom 13"), "got: {msg}")
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
        // The evaluator is still usable after the caught panic.
        assert_eq!(ev.eval_closed(&parity(8)).unwrap(), Value::Bool(false));
    }

    #[test]
    fn cutover_keeps_small_regions_sequential_with_identical_results() {
        // A cutoff so high nothing forks: the parallel evaluator must still be
        // correct (it *is* the sequential path then).
        let e = parity(100);
        let mut ev = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(8),
            parallel_cutoff: u64::MAX,
            ..EvalConfig::default()
        });
        let (seq_v, seq_stats) = eval_with_stats(&e).unwrap();
        assert_eq!(ev.eval_closed(&e).unwrap(), seq_v);
        assert_eq!(ev.stats(), seq_stats);
    }

    #[test]
    fn one_pool_persists_across_evaluations() {
        let mut ev = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(4),
            parallel_cutoff: 1,
            ..EvalConfig::default()
        });
        assert!(
            ev.pool().is_none(),
            "the pool is created lazily, not at construction"
        );
        ev.eval_closed(&parity(64)).unwrap();
        let first = ev
            .pool()
            .cloned()
            .expect("first evaluation creates the pool");
        assert_eq!(first.threads(), 4);
        ev.eval_closed(&parity(130)).unwrap();
        let second = ev.pool().cloned().expect("pool survives");
        assert!(
            std::sync::Arc::ptr_eq(&first, &second),
            "evaluations share one persistent pool instead of re-creating it"
        );
    }

    #[test]
    fn pool_threads_knob_oversubscribes_the_worker_set() {
        // The pool may be wider than the parallelism knob; results and stats
        // must not notice.
        let e = parity(130);
        let (seq_v, seq_stats) = eval_with_stats(&e).unwrap();
        let mut ev = ParallelEvaluator::with_config(EvalConfig {
            parallelism: Some(2),
            pool_threads: Some(8),
            parallel_cutoff: 1,
            ..EvalConfig::default()
        });
        assert_eq!(ev.eval_closed(&e).unwrap(), seq_v);
        assert_eq!(ev.stats(), seq_stats);
        assert_eq!(ev.pool().unwrap().threads(), 8);
    }

    #[test]
    fn degenerate_parallelism_normalizes_to_none() {
        assert_eq!(normalize_parallelism(None), None);
        assert_eq!(normalize_parallelism(Some(0)), None);
        assert_eq!(normalize_parallelism(Some(1)), None);
        assert_eq!(normalize_parallelism(Some(2)), Some(2));
        assert_eq!(normalize_parallelism(Some(64)), Some(64));
    }

    #[test]
    fn env_knob_parses() {
        // Not set in the test environment by default; just exercise the parser
        // logic via the public API shape.
        let _ = parallelism_from_env();
    }
}
