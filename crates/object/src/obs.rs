//! Process-wide observability counters for the columnar set representation.
//!
//! The representation choice (`Boxed` vs `Columnar`) is semantically
//! invisible, which makes it hard to tell from the outside whether a workload
//! is actually hitting the columnar fast paths. These counters make the
//! policy observable without touching `CostStats` (which is part of the
//! bit-compared cost model of the differential suites): they are process-wide
//! relaxed atomics, monotonically increasing, and surfaced through the engine
//! session stats, the REPL `:stats` command, and the `ncql-serve` `stats`
//! wire reply.

use std::sync::atomic::{AtomicU64, Ordering};

static PROMOTIONS: AtomicU64 = AtomicU64::new(0);
static DEMOTIONS: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the columnar representation counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnarStats {
    /// Sets built in the columnar representation (bulk constructors, set
    /// algebra results, and row-kernel outputs that met the policy).
    pub promotions: u64,
    /// Columnar candidates that ended up boxed again: row-form results below
    /// the columnar threshold decoded back to boxed values, and columnar sets
    /// demoted by a shape-mismatched `insert`.
    pub demotions: u64,
}

#[inline]
pub(crate) fn note_promotion() {
    PROMOTIONS.fetch_add(1, Ordering::Relaxed);
}

#[inline]
pub(crate) fn note_demotion() {
    DEMOTIONS.fetch_add(1, Ordering::Relaxed);
}

/// Snapshot the process-wide columnar counters.
pub fn columnar_stats() -> ColumnarStats {
    ColumnarStats {
        promotions: PROMOTIONS.load(Ordering::Relaxed),
        demotions: DEMOTIONS.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{VSet, Value};

    #[test]
    fn promotions_and_demotions_are_counted() {
        let before = columnar_stats();
        let mut s = VSet::from_iter((0..32).map(Value::Atom));
        assert!(s.is_columnar());
        // A shape-mismatched insert demotes the set to boxed.
        assert!(s.insert(Value::Nat(1)));
        assert!(!s.is_columnar());
        let after = columnar_stats();
        assert!(after.promotions > before.promotions);
        assert!(after.demotions > before.demotions);
    }
}
