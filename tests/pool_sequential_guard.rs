//! Regression guard for the normalize/pool agreement: a session whose
//! parallelism normalizes to sequential (`None`, `Some(0)`, `Some(1)`) must
//! never create a pool worker thread, no matter what the pool-size knob says —
//! and a parallel session must create exactly *one* worker set, shared across
//! executions, torn down when the session drops.
//!
//! This is deliberately the **only** test in this integration-test binary: it
//! asserts on the process-global [`ncql::pram::live_pool_workers`] counter,
//! and any concurrently running test that builds a parallel session would
//! race it. Cargo runs integration-test binaries one at a time, so a
//! single-test binary owns the counter for its whole run. Keep future
//! worker-counting scenarios inside this one function.

use ncql::pram::live_pool_workers;
use ncql::queries::differential_corpus;
use ncql::{Backend, SessionBuilder};

#[test]
fn sequential_sessions_never_spawn_pool_workers() {
    let baseline = live_pool_workers();
    let corpus = differential_corpus();
    let sample: Vec<_> = corpus.iter().take(12).collect();

    // Every degenerate parallelism request — even combined with an explicit
    // pool-size knob — normalizes to the sequential backend and must stay
    // thread-free through real evaluations.
    for parallelism in [None, Some(0), Some(1)] {
        let session = SessionBuilder::new()
            .parallelism(parallelism)
            .pool_threads(Some(8))
            .parallel_cutoff(1)
            .build();
        assert_eq!(
            session.backend(),
            Backend::Sequential,
            "requested {parallelism:?}"
        );
        for entry in &sample {
            session
                .evaluate(&entry.expr)
                .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
        }
        assert_eq!(
            live_pool_workers(),
            baseline,
            "a sequential session (parallelism {parallelism:?}) spawned pool workers"
        );
    }

    // The same holds for pool_threads' own degenerate values on a *parallel*
    // session: `Some(0 | 1)` normalizes to `None` (= size by parallelism),
    // never to a 0- or 1-thread pool.
    let normalized = SessionBuilder::new()
        .parallelism(Some(4))
        .pool_threads(Some(1))
        .build();
    assert_eq!(normalized.config().pool_threads, None);
    assert_eq!(normalized.config().effective_pool_threads(), 4);

    // A parallel session spawns exactly one worker set, lazily (on the first
    // forked region, not at build time), shares it across executions, and
    // joins it on drop.
    let parallel = SessionBuilder::new()
        .parallelism(Some(4))
        .parallel_cutoff(1)
        .build();
    assert_eq!(
        live_pool_workers(),
        baseline,
        "pool workers must spawn lazily"
    );
    for entry in &sample {
        parallel
            .evaluate(&entry.expr)
            .unwrap_or_else(|e| panic!("{}: {e}", entry.name));
    }
    assert_eq!(
        live_pool_workers(),
        baseline + 4,
        "one shared worker set across all executions of one session"
    );
    drop(parallel);
    assert_eq!(
        live_pool_workers(),
        baseline,
        "dropping the session joins its pool workers"
    );
}
