//! Classical relational-algebra queries phrased in NRA, over named input
//! relations supplied as free variables.
//!
//! These are the "ambient language" queries of §3: the paper's theorems add
//! recursion on sets *to* the relational algebra, so the experiment harness needs
//! a stock of plain (depth-0) relational queries as the base case of the ACᵏ
//! hierarchy and as building blocks for the circuit compiler.

use ncql_core::derived;
use ncql_core::expr::{fresh_var, Expr};
use ncql_object::Type;

/// Natural join of two binary relations on the shared middle column:
/// `r ⋈ s = {(a, b, c) | (a, b) ∈ r, (b, c) ∈ s}` — returned as nested pairs
/// `((a, b), c)`.
pub fn join(r: Expr, s: Expr) -> Expr {
    let rv = fresh_var("jr");
    let sv = fresh_var("js");
    let p = fresh_var("p");
    let q = fresh_var("q");
    let edge = Type::prod(Type::Base, Type::Base);
    let out_elem = Type::prod(edge.clone(), Type::Base);
    Expr::let_in(
        rv.clone(),
        r,
        Expr::let_in(
            sv.clone(),
            s,
            Expr::ext(
                Expr::lam(
                    p.clone(),
                    edge.clone(),
                    Expr::ext(
                        Expr::lam(
                            q.clone(),
                            edge.clone(),
                            Expr::ite(
                                Expr::eq(
                                    Expr::proj2(Expr::var(p.clone())),
                                    Expr::proj1(Expr::var(q.clone())),
                                ),
                                Expr::singleton(Expr::pair(
                                    Expr::var(p.clone()),
                                    Expr::proj2(Expr::var(q)),
                                )),
                                Expr::empty(out_elem.clone()),
                            ),
                        ),
                        Expr::var(sv.clone()),
                    ),
                ),
                Expr::var(rv),
            ),
        ),
    )
}

/// Semi-join `r ⋉ s`: the tuples of `r` whose second component appears as a
/// first component of `s`.
pub fn semijoin(r: Expr, s: Expr) -> Expr {
    let sv = fresh_var("sjs");
    let edge = Type::prod(Type::Base, Type::Base);
    Expr::let_in(
        sv.clone(),
        s,
        derived::select(edge, r, move |p| {
            derived::member(
                Type::Base,
                Expr::proj2(p),
                derived::project1(Type::Base, Type::Base, Expr::var(sv)),
            )
        }),
    )
}

/// Anti-join `r ▷ s`: the tuples of `r` whose second component does *not* appear
/// as a first component of `s`.
pub fn antijoin(r: Expr, s: Expr) -> Expr {
    let sv = fresh_var("ajs");
    let edge = Type::prod(Type::Base, Type::Base);
    Expr::let_in(
        sv.clone(),
        s,
        derived::select(edge, r, move |p| {
            derived::not(derived::member(
                Type::Base,
                Expr::proj2(p),
                derived::project1(Type::Base, Type::Base, Expr::var(sv)),
            ))
        }),
    )
}

/// Selection of the tuples `(a, b)` with `a ≤ b` — a purely order-based
/// selection, only expressible because the language has `≤` (the paper's
/// ordered-database assumption).
pub fn select_leq(r: Expr) -> Expr {
    derived::select(Type::prod(Type::Base, Type::Base), r, |p| {
        Expr::leq(Expr::proj1(p.clone()), Expr::proj2(p))
    })
}

/// Division `r ÷ s` for `r : {D × D}`, `s : {D}`: the atoms `a` such that
/// `(a, b) ∈ r` for *every* `b ∈ s`.
pub fn division(r: Expr, s: Expr) -> Expr {
    let rv = fresh_var("divr");
    let sv = fresh_var("divs");
    let a = fresh_var("a");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::let_in(
            sv.clone(),
            s,
            derived::select(
                Type::Base,
                derived::project1(Type::Base, Type::Base, Expr::var(rv.clone())),
                move |cand| {
                    // s ⊆ { b | (cand, b) ∈ r }
                    Expr::let_in(
                        a.clone(),
                        cand,
                        derived::subset(
                            Type::Base,
                            Expr::var(sv),
                            derived::project2(
                                Type::Base,
                                Type::Base,
                                derived::select(
                                    Type::prod(Type::Base, Type::Base),
                                    Expr::var(rv),
                                    move |p| Expr::eq(Expr::proj1(p), Expr::var(a)),
                                ),
                            ),
                        ),
                    )
                },
            ),
        ),
    )
}

/// The diagonal `{(v, v) | v ∈ s}` of a unary relation.
pub fn diagonal(s: Expr) -> Expr {
    derived::map_set(Type::Base, s, |v| Expr::pair(v.clone(), v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::eval::eval_closed;
    use ncql_core::typecheck::typecheck_closed;
    use ncql_object::Value;

    fn rel(pairs: Vec<(u64, u64)>) -> Expr {
        Expr::constant(Value::relation_from_pairs(pairs))
    }

    #[test]
    fn join_produces_triples() {
        let e = join(rel(vec![(1, 2), (4, 5)]), rel(vec![(2, 3), (2, 7)]));
        assert!(typecheck_closed(&e).is_ok());
        let v = eval_closed(&e).unwrap();
        let expected = Value::set_from(vec![
            Value::pair(Value::pair(Value::Atom(1), Value::Atom(2)), Value::Atom(3)),
            Value::pair(Value::pair(Value::Atom(1), Value::Atom(2)), Value::Atom(7)),
        ]);
        assert_eq!(v, expected);
    }

    #[test]
    fn semijoin_and_antijoin_partition_r() {
        let r = vec![(1, 2), (3, 4), (5, 6)];
        let s = vec![(2, 0), (6, 0)];
        let sj = eval_closed(&semijoin(rel(r.clone()), rel(s.clone()))).unwrap();
        let aj = eval_closed(&antijoin(rel(r), rel(s))).unwrap();
        assert_eq!(sj, Value::relation_from_pairs(vec![(1, 2), (5, 6)]));
        assert_eq!(aj, Value::relation_from_pairs(vec![(3, 4)]));
    }

    #[test]
    fn select_leq_uses_the_order() {
        let out = eval_closed(&select_leq(rel(vec![(1, 2), (5, 3), (4, 4)]))).unwrap();
        assert_eq!(out, Value::relation_from_pairs(vec![(1, 2), (4, 4)]));
    }

    #[test]
    fn division_requires_all_pairs() {
        // r = a×{1,2} ∪ b×{1}; r ÷ {1,2} = {a}.
        let r = rel(vec![(10, 1), (10, 2), (20, 1)]);
        let s = Expr::constant(Value::atom_set(vec![1, 2]));
        let out = eval_closed(&division(r, s)).unwrap();
        assert_eq!(out, Value::atom_set(vec![10]));
    }

    #[test]
    fn diagonal_of_a_set() {
        let out = eval_closed(&diagonal(Expr::constant(Value::atom_set(vec![1, 2])))).unwrap();
        assert_eq!(out, Value::relation_from_pairs(vec![(1, 1), (2, 2)]));
    }

    #[test]
    fn all_queries_typecheck() {
        let r = rel(vec![(1, 2)]);
        let s = rel(vec![(2, 3)]);
        let u = Expr::constant(Value::atom_set(vec![1]));
        for q in [
            join(r.clone(), s.clone()),
            semijoin(r.clone(), s.clone()),
            antijoin(r.clone(), s.clone()),
            select_leq(r.clone()),
            division(r, u.clone()),
            diagonal(u),
        ] {
            typecheck_closed(&q).unwrap_or_else(|e| panic!("{e}"));
        }
    }
}
