//! Golden-snapshot suite for rendered caret diagnostics.
//!
//! One snapshot per error category — lexical, parse, type, evaluation
//! (resource limits and extern failures), and execution-time binding
//! validation — pinning the *exact* rendered output of `Error::render`,
//! caret column included. The evaluation-error cases run on whichever backend
//! `NCQL_TEST_PARALLELISM` selects (the CI matrix runs 1 and 4, plus the
//! oversubscribed-pool leg), with the fork cutover dropped to 1 so the
//! parallel legs really fork: the snapshots therefore also pin that
//! evaluation-error *spans* are backend-invariant — the failing
//! subexpression, not the schedule, decides the caret.

use ncql::core::externs::ExternRegistry;
use ncql::core::parallelism_from_env;
use ncql::core::EvalError;
use ncql::object::Type;
use ncql::{Error, SessionBuilder};

/// The suite's session builder: backend from `NCQL_TEST_PARALLELISM` (like
/// the differential suites), cutover 1 so parallel legs fork.
fn builder() -> SessionBuilder {
    SessionBuilder::new()
        .parallelism(parallelism_from_env())
        .parallel_cutoff(1)
}

fn assert_snapshot(rendered: String, expected: &[&str]) {
    assert_eq!(
        rendered,
        expected.join("\n"),
        "\n--- got ---\n{rendered}\n-----------"
    );
}

#[test]
fn lex_error_snapshot() {
    let text = "{@1} union $";
    let err = builder().build().prepare(text).unwrap_err();
    assert_snapshot(
        err.render(text),
        &[
            "error: lex error at byte 11: unexpected character '$'",
            " --> line 1, column 12",
            "  |",
            "1 | {@1} union $",
            "  |            ^",
        ],
    );
}

#[test]
fn parse_error_snapshot() {
    // The offending token `@2` sits at bytes 3..5 — reported in the same
    // unit (byte offsets) as lexical errors, not as a token index.
    let text = "@1 @2";
    let err = builder().build().prepare(text).unwrap_err();
    assert_snapshot(
        err.render(text),
        &[
            "error: parse error at byte 3: expected end of input, found `@2`",
            " --> line 1, column 4",
            "  |",
            "1 | @1 @2",
            "  |    ^^",
        ],
    );
}

#[test]
fn parse_error_at_end_of_input_snapshot() {
    let text = "(@1, @2";
    let err = builder().build().prepare(text).unwrap_err();
    assert_snapshot(
        err.render(text),
        &[
            "error: parse error at byte 7: expected `)`, found end of input",
            " --> line 1, column 8",
            "  |",
            "1 | (@1, @2",
            "  |        ^",
        ],
    );
}

#[test]
fn type_error_snapshot() {
    let text = "{@1} union {true}";
    let err = builder().build().prepare(text).unwrap_err();
    assert!(matches!(err, Error::Type(_)));
    assert_snapshot(
        err.render(text),
        &[
            "error: type error: union operands: expected type {atom}, found {bool}",
            " --> line 1, column 12",
            "  |",
            "1 | {@1} union {true}",
            "  |            ^^^^^^",
        ],
    );
}

#[test]
fn type_error_in_multi_line_query_snapshot() {
    let text = "let r = {@1}\nin if r then @1 else @2";
    let err = builder().build().prepare(text).unwrap_err();
    assert_snapshot(
        err.render(text),
        &[
            "error: type error: if condition: expected bool, found {atom}",
            " --> line 2, column 7",
            "  |",
            "2 | in if r then @1 else @2",
            "  |       ^",
        ],
    );
}

#[test]
fn set_too_large_snapshot() {
    // The third union crosses the 2-element cap while the recursor argument
    // is still being evaluated (on the caller, before any region forks), so
    // the caret lands on the same union node on every backend.
    let text = "ext(\\x: atom. {x}, {@1} union {@2} union {@3})";
    let session = builder().max_set_size(2).build();
    let err = session.run(text).unwrap_err();
    assert!(matches!(
        err,
        Error::Eval(EvalError::SetTooLarge {
            limit: 2,
            attempted: 3,
            ..
        })
    ));
    assert_snapshot(
        err.render(text),
        &[
            "error: evaluation error: intermediate set of 3 elements exceeds the configured limit of 2",
            " --> line 1, column 20",
            "  |",
            "1 | ext(\\x: atom. {x}, {@1} union {@2} union {@3})",
            "  |                    ^^^^^^^^^^^^^^^^^^^^^^^^^^",
        ],
    );
}

#[test]
fn work_limit_snapshot() {
    // A 3-op budget is exhausted while the caller is still descending into
    // the query prefix — long before any parallel region can open — so the
    // caret is identical on the sequential and pooled backends. The optimizer
    // is pinned off: this snapshot pins the *raw* plan's failure site (the
    // optimizer would fold the closed union and move the caret — see
    // `work_limit_inside_folded_region_snapshot` for the optimized shape).
    let text = "{@1} union {@2}";
    let session = builder()
        .max_work(3)
        .opt_level(ncql::OptLevel::None)
        .build();
    let err = session.run(text).unwrap_err();
    assert!(matches!(
        err,
        Error::Eval(EvalError::WorkLimitExceeded { limit: 3, .. })
    ));
    assert_snapshot(
        err.render(text),
        &[
            "error: evaluation error: total work exceeded the configured limit of 3",
            " --> line 1, column 12",
            "  |",
            "1 | {@1} union {@2}",
            "  |            ^^^^",
        ],
    );
}

#[test]
fn set_too_large_inside_fused_region_snapshot() {
    // The optimizer fuses the nested maps (`ext f (ext g s)` → one pass); the
    // fused `ext` inherits the *outer* ext's span, so the limit error raised
    // while assembling its result still points at source text the user wrote
    // — on every backend, since the result set is assembled on the caller.
    let text = "ext(\\y: {atom}. y, ext(\\x: atom. {{x}}, s))";
    let schema = vec![("s".to_string(), Type::set(Type::Base))];
    let session = builder().max_set_size(2).build();
    let q = session.prepare_with_schema(text, &schema).unwrap();
    assert!(
        q.rewrites().iter().any(|f| f.rule == "ext-fusion"),
        "the nested maps fuse: {:?}",
        q.rewrites()
    );
    let err = session
        .execute_with_bindings(
            &q,
            &[("s".to_string(), ncql::object::Value::atom_set(0..3))],
        )
        .unwrap_err();
    assert_snapshot(
        err.render(text),
        &[
            "error: evaluation error: intermediate set of 3 elements exceeds the configured limit of 2",
            " --> line 1, column 1",
            "  |",
            "1 | ext(\\y: {atom}. y, ext(\\x: atom. {{x}}, s))",
            "  | ^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^^",
        ],
    );
}

#[test]
fn work_limit_inside_folded_region_snapshot() {
    // The closed `card({@1} union {@2})` folds to a constant that inherits
    // the folded subtree's span; the work budget is sized so evaluation dies
    // entering that constant, and the caret still covers the folded source
    // region. Fork-free by construction (pure extern arithmetic), so the
    // death site is backend-invariant.
    let text = "nat_add(card(s), card({@1} union {@2}))";
    let schema = vec![("s".to_string(), Type::set(Type::Base))];
    let session = builder().max_work(4).build();
    let q = session.prepare_with_schema(text, &schema).unwrap();
    assert!(
        q.rewrites().iter().any(|f| f.rule == "const-fold"),
        "the closed cardinality folds: {:?}",
        q.rewrites()
    );
    let err = session
        .execute_with_bindings(
            &q,
            &[("s".to_string(), ncql::object::Value::atom_set(0..4))],
        )
        .unwrap_err();
    assert_snapshot(
        err.render(text),
        &[
            "error: evaluation error: total work exceeded the configured limit of 4",
            " --> line 1, column 18",
            "  |",
            "1 | nat_add(card(s), card({@1} union {@2}))",
            "  |                  ^^^^^^^^^^^^^^^^^^^^^",
        ],
    );
}

#[test]
fn extern_failure_snapshot() {
    // A user-registered extern that always fails: the caret points at the
    // extern call site. The element map runs on the pool under the parallel
    // legs, and the lowest-element error wins deterministically.
    let mut registry = ExternRegistry::standard();
    registry.register("always_fails", vec![Type::Nat], Type::Nat, |_args| {
        Err(EvalError::extern_failure("this extern always fails"))
    });
    let text = "ext(\\x: atom. {always_fails(1)}, {@1} union {@2} union {@3})";
    let session = builder().registry(registry).build();
    let err = session.run(text).unwrap_err();
    assert_snapshot(
        err.render(text),
        &[
            "error: evaluation error: external function error: this extern always fails",
            " --> line 1, column 16",
            "  |",
            "1 | ext(\\x: atom. {always_fails(1)}, {@1} union {@2} union {@3})",
            "  |                ^^^^^^^^^^^^^^^",
        ],
    );
}

#[test]
fn binding_validation_snapshot() {
    // Execution-time binding validation points at the schema variable's use
    // site in the prepared source.
    let session = builder().build();
    let schema = vec![("s".to_string(), Type::set(Type::Base))];
    let text = "card(s)";
    let q = session.prepare_with_schema(text, &schema).unwrap();
    let err = session.execute(&q).unwrap_err();
    assert!(matches!(err, Error::Object { .. }));
    assert_snapshot(
        err.render(text),
        &[
            "error: object error: type mismatch: expected a binding for schema variable `s` \
             of type {atom}, found no binding with that name",
            " --> line 1, column 6",
            "  |",
            "1 | card(s)",
            "  |      ^",
        ],
    );
}

#[test]
fn lint_warning_snapshot() {
    // Warnings never reject: the query prepares, and the finding renders
    // with the `warning:` label and a caret over the offending binding.
    let text = "let x = {@1} in {@2}";
    let q = builder().build().prepare(text).unwrap();
    let diagnostics = q.lint_diagnostics();
    assert_eq!(diagnostics.len(), 1, "{diagnostics:?}");
    assert_snapshot(
        diagnostics[0].to_string(),
        &[
            "warning: unused-binding: binding `x` is never used",
            " --> line 1, column 1",
            "  |",
            "1 | let x = {@1} in {@2}",
            "  | ^^^^^^^^^^^^^^^^^^^^",
        ],
    );
}

#[test]
fn lint_empty_set_operand_warning_snapshot() {
    // The caret points at the statically-empty operand, not the whole union.
    let text = "{@1} union empty[atom]";
    let q = builder().build().prepare(text).unwrap();
    let diagnostics = q.lint_diagnostics();
    assert_eq!(diagnostics.len(), 1, "{diagnostics:?}");
    assert_snapshot(
        diagnostics[0].to_string(),
        &[
            "warning: empty-set-operand: operand of `union` is statically empty — \
             the union is just the other operand",
            " --> line 1, column 12",
            "  |",
            "1 | {@1} union empty[atom]",
            "  |            ^^^^^^^^^^^",
        ],
    );
}

#[test]
fn lint_deny_rejection_snapshot() {
    // Under the deny policy a doomed query is rejected *at prepare*: the
    // static work floor (6) exceeds the session limit (3), so evaluation
    // could only ever abort. The caret covers the whole query.
    // The optimizer is pinned off so the floor message pins the raw plan's
    // arithmetic (folding the closed union would lower the floor to 5).
    use ncql::LintPolicy;
    let text = "{@1} union {@2}";
    let session = builder()
        .max_work(3)
        .lint_policy(LintPolicy::Deny)
        .opt_level(ncql::OptLevel::None)
        .build();
    let err = session.prepare(text).unwrap_err();
    assert!(matches!(err, Error::Lint { .. }));
    assert_snapshot(
        err.render(text),
        &[
            "error: lint error: doomed-work-bound: query needs at least 6 work but \
             the session limit is 3; evaluation is guaranteed to exceed the work limit",
            " --> line 1, column 1",
            "  |",
            "1 | {@1} union {@2}",
            "  | ^^^^^^^^^^^^^^^",
        ],
    );
}

#[test]
fn builder_api_errors_render_without_carets() {
    // Programmatically built expressions carry no spans: the diagnostic
    // degrades to the bare message instead of pointing anywhere.
    use ncql::core::Expr;
    let session = builder().max_work(1).build();
    let expr = Expr::union(
        Expr::singleton(Expr::atom(1)),
        Expr::singleton(Expr::atom(2)),
    );
    let err = Error::from(session.evaluate(&expr).unwrap_err());
    assert_eq!(err.span(), None);
    assert_eq!(
        err.render("irrelevant"),
        "error: evaluation error: total work exceeded the configured limit of 1"
    );
}

#[test]
fn every_error_category_is_spanned_from_surface_text() {
    // Acceptance sweep: each `ncql::Error` variant raised from surface text
    // answers `span()` with `Some`.
    let session = builder().max_set_size(2).build();
    let cases: Vec<Error> = vec![
        session.prepare("{@1} union $").unwrap_err(),
        session.prepare("@1 @2").unwrap_err(),
        session.prepare("{@1} union {true}").unwrap_err(),
        session
            .run("ext(\\x: atom. {x}, {@1} union {@2} union {@3})")
            .unwrap_err(),
        {
            let schema = vec![("s".to_string(), Type::set(Type::Base))];
            let q = session.prepare_with_schema("card(s)", &schema).unwrap();
            session.execute(&q).unwrap_err()
        },
    ];
    for err in cases {
        let span = err
            .span()
            .unwrap_or_else(|| panic!("unspanned error: {err}"));
        assert!(span.start <= span.end);
    }
}
