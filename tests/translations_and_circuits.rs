//! Integration tests for the simulation translations (Propositions 2.1, 2.2,
//! 7.3) and the circuit compiler (Proposition 7.7 / Theorem 6.2), cross-checked
//! against the reference evaluator on shared workloads.

use ncql::circuit::compile::{compile, run_compiled};
use ncql::circuit::relquery::{eval_reference, BitRelation, RelQuery};
use ncql::core::derived;
use ncql::core::eval::eval_closed;
use ncql::core::expr::Expr;
use ncql::object::{Type, Value};
use ncql::queries::{datagen, graph, Relation};
use ncql::translate::{orderly, prop21, prop22, prop73};

fn xor_u() -> Expr {
    Expr::lam2(
        "a",
        "b",
        Type::prod(Type::Bool, Type::Bool),
        derived::xor(Expr::var("a"), Expr::var("b")),
    )
}

#[test]
fn prop21_translation_preserves_semantics_on_parity() {
    let x = Expr::constant(Value::atom_set(0..9));
    let f = Expr::lam("y", Type::Base, Expr::bool_val(true));
    let direct = Expr::dcr(Expr::bool_val(false), f.clone(), xor_u(), x.clone());
    let translated =
        prop21::dcr_via_esr(Expr::bool_val(false), f, xor_u(), x, Type::Base, Type::Bool);
    assert_eq!(
        eval_closed(&direct).unwrap(),
        eval_closed(&translated).unwrap()
    );
    assert_eq!(eval_closed(&direct).unwrap(), Value::Bool(true));
}

#[test]
fn prop21_translations_preserve_semantics_on_graph_queries() {
    // dcr → esr on the union-of-relations recursion used by TC.
    let rel = datagen::cycle_graph(5);
    let r = Expr::constant(rel.to_value());
    let rel_ty = Type::binary_relation();
    let f = Expr::lam("y", Type::Base, r.clone());
    let u = graph::tc_combiner();
    let vertices = graph::vertices(r);
    let direct = Expr::dcr(
        Expr::empty(Type::prod(Type::Base, Type::Base)),
        f.clone(),
        u.clone(),
        vertices.clone(),
    );
    let translated = prop21::dcr_via_esr(
        Expr::empty(Type::prod(Type::Base, Type::Base)),
        f,
        u,
        vertices,
        Type::Base,
        rel_ty,
    );
    assert_eq!(
        eval_closed(&direct).unwrap(),
        eval_closed(&translated).unwrap()
    );
    assert_eq!(
        eval_closed(&direct).unwrap(),
        rel.transitive_closure().to_value()
    );
}

#[test]
fn prop22_bounded_recursion_is_exact_on_random_graphs() {
    for seed in 0..4 {
        let rel = datagen::random_graph(8, 0.25, seed);
        if rel.is_empty() {
            continue;
        }
        let r = Expr::constant(rel.to_value());
        let f = Expr::lam("y", Type::Base, r.clone());
        let u = graph::tc_combiner();
        let vertices = graph::vertices(r);
        let direct = Expr::dcr(
            Expr::empty(Type::prod(Type::Base, Type::Base)),
            f.clone(),
            u.clone(),
            vertices.clone(),
        );
        let bounded = prop22::dcr_via_bdcr_binary(
            Expr::empty(Type::prod(Type::Base, Type::Base)),
            f,
            u,
            vertices.clone(),
            vertices,
        );
        assert_eq!(
            eval_closed(&direct).unwrap(),
            eval_closed(&bounded).unwrap(),
            "seed {seed}"
        );
    }
}

#[test]
fn prop73_halving_rounds_track_the_logarithm_on_graph_workloads() {
    for n in [3u64, 6, 12, 24] {
        let rel = datagen::path_graph(n);
        let r_val = rel.to_value();
        let f = Expr::lam("y", Type::Base, Expr::constant(r_val.clone()));
        let u = graph::tc_combiner();
        let vertices = Value::atom_set(0..=n);
        let mut sim = prop73::HalvingSimulator::default();
        let outcome = sim
            .dcr_by_halving(
                &Expr::empty(Type::prod(Type::Base, Type::Base)),
                &f,
                &u,
                &vertices,
            )
            .unwrap();
        assert_eq!(
            Relation::from_value(&outcome.value).unwrap(),
            rel.transitive_closure(),
            "n = {n}"
        );
        let m = (n + 1) as f64;
        assert_eq!(outcome.rounds, m.log2().ceil() as u64, "n = {n}");
    }
}

#[test]
fn prop73_both_directions_agree_with_direct_semantics() {
    // log-loop driven by dcr: counting body over naturals.
    let body = Expr::lam(
        "c",
        Type::Nat,
        Expr::extern_call("nat_add", vec![Expr::var("c"), Expr::nat(3)]),
    );
    for n in [0usize, 1, 7, 20, 100] {
        let counting = Value::atom_set(0..n as u64);
        let direct = eval_closed(&Expr::log_loop(
            body.clone(),
            Expr::constant(counting.clone()),
            Expr::nat(0),
        ))
        .unwrap();
        let mut sim = prop73::HalvingSimulator::default();
        let outcome = sim
            .log_loop_by_dcr(&body, &counting, &Value::Nat(0))
            .unwrap();
        assert_eq!(direct, outcome.value, "n = {n}");
    }
}

#[test]
fn library_tc_query_is_in_the_orderly_sublanguage() {
    let r = Expr::constant(datagen::path_graph(4).to_value());
    let q = graph::tc_dcr(r);
    assert!(
        orderly::is_orderly(&q),
        "the library transitive closure should use a whitelisted combiner"
    );
    // The parity query is orderly too.
    let p = ncql::queries::parity::parity_dcr(Expr::constant(Value::atom_set(0..4)));
    assert!(orderly::is_orderly(&p));
}

#[test]
fn compiled_circuits_agree_with_the_language_semantics_on_shared_graphs() {
    // The same graph evaluated (a) by the core evaluator on the NRA(dcr) TC
    // query and (b) by the compiled positional circuit must coincide.
    for n in [4usize, 6, 9] {
        let pairs: Vec<(usize, usize)> =
            (0..n - 1).map(|i| (i, i + 1)).chain([(n - 1, 0)]).collect();
        let rel = Relation::from_pairs(pairs.iter().map(|&(a, b)| (a as u64, b as u64)));
        let semantic = eval_closed(&graph::tc_dcr(Expr::constant(rel.to_value()))).unwrap();
        let semantic_rel = Relation::from_value(&semantic).unwrap();

        let bitrel = BitRelation::from_pairs(n, &pairs);
        let q = RelQuery::transitive_closure(RelQuery::Input(0));
        let compiled = run_compiled(&q, n, std::slice::from_ref(&bitrel));
        let compiled_rel: Relation = compiled
            .pairs()
            .into_iter()
            .map(|(a, b)| (a as u64, b as u64))
            .collect();
        assert_eq!(semantic_rel, compiled_rel, "n = {n}");
        // And both agree with the pure reference evaluator of the IR.
        assert_eq!(compiled, eval_reference(&q, &[bitrel], n));
    }
}

#[test]
fn circuit_depth_hierarchy_is_monotone_in_k() {
    let n = 12;
    let mut last = 0;
    for k in 1..=3 {
        let depth = compile(&RelQuery::nested_depth_k(k), n).depth();
        assert!(depth > last, "depth at k={k} is {depth}, not above {last}");
        last = depth;
    }
}
