//! Compile flat relational queries to unbounded fan-in circuit families and
//! inspect their size and depth — the constructive side of Theorem 6.2
//! (`NRA¹(dcr^(k), ≤) = FLAT-ACᵏ`), plus the DLOGSPACE-DCL uniformity witness.
//!
//! Run with: `cargo run --example circuit_compilation --release`

use ncql::circuit::compile::{compile, compile_stats, run_compiled};
use ncql::circuit::dcl::direct_connection_language;
use ncql::circuit::logspace::{LogSpaceMeter, UniformTcFamily};
use ncql::circuit::relquery::{eval_reference, BitRelation, RelQuery};

fn main() {
    // Depth/size of the compiled ACᵏ families: each nesting level multiplies the
    // depth by ≈ log n, the size stays polynomial.
    println!("k   n    circuit depth   circuit size");
    for k in [1usize, 2, 3] {
        for n in [4usize, 8, 16, 32] {
            let stats = compile_stats(&RelQuery::nested_depth_k(k), n);
            println!("{k}   {n:<4} {:<15} {}", stats.depth, stats.size);
        }
    }

    // The compiled transitive closure agrees with the reference semantics.
    let n = 10;
    let q = RelQuery::transitive_closure(RelQuery::Input(0));
    let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
    let r = BitRelation::from_pairs(n, &pairs);
    let compiled = run_compiled(&q, n, std::slice::from_ref(&r));
    let reference = eval_reference(&q, &[r], n);
    assert_eq!(compiled, reference);
    println!(
        "\ncompiled TC on a {n}-node path: {} closure edges (matches the reference)",
        compiled.pairs().len()
    );

    // Constant-depth relational operators.
    let union = compile(&RelQuery::union(RelQuery::Input(0), RelQuery::Input(1)), 16);
    let compose = compile(
        &RelQuery::compose(RelQuery::Input(0), RelQuery::Input(1)),
        16,
    );
    println!(
        "\nunion   over n=16: depth {}, size {}",
        union.depth(),
        union.size()
    );
    println!(
        "compose over n=16: depth {}, size {}",
        compose.depth(),
        compose.size()
    );

    // Uniformity: the hand-written TC family's DCL is decided by index arithmetic
    // with O(log n) bits of working storage.
    println!("\nn   gates     DCL tuples   max work bits");
    for n in [3usize, 5, 8, 12] {
        let circuit = UniformTcFamily::generate(n);
        let dcl = direct_connection_language(n, &circuit);
        let mut max_bits = 0;
        for tuple in dcl.iter().take(1000) {
            let mut meter = LogSpaceMeter::new();
            assert!(UniformTcFamily::dcl_member(n, tuple, &mut meter));
            max_bits = max_bits.max(meter.bits_used());
        }
        println!("{n:<3} {:<9} {:<12} {max_bits}", circuit.size(), dcl.len());
    }
}
