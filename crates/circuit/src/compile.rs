//! The compiler from the relational IR to circuit families — the constructive
//! content of Proposition 7.7 / Theorem 6.2 for the flat-relational fragment.
//!
//! For a fixed universe size `n`, a query over binary relations compiles to a
//! circuit whose inputs are the concatenated `n²`-bit positional encodings of the
//! input relations and whose outputs are the `n²` bits of the result:
//!
//! * boolean operators (`∪`, `∩`, `\`, complement) — one gate per output bit,
//!   depth 1–2;
//! * transpose — pure rewiring, depth 0;
//! * composition — for each output bit an OR over `n` AND pairs, depth 2
//!   (unbounded fan-in is what makes this constant depth, per the ACᵏ gate basis);
//! * `IterateLogN` — the body circuit is unrolled `⌈log₂ n⌉` times, so each
//!   nesting level multiplies the depth by `Θ(log n)`.
//!
//! The compiled family is uniform by construction (the generator below is the
//! same for every `n`); the explicit DLOGSPACE witness for the flagship family is
//! in [`crate::logspace`].

use crate::gate::{Circuit, CircuitBuilder, GateId};
use crate::relquery::{BitRelation, RelQuery, RelWires};

/// Compile a query over binary relations into a circuit for universe size `n`.
/// The circuit has `num_inputs() · n²` input bits (relation 0 first, row-major)
/// and `n²` output bits.
pub fn compile(query: &RelQuery, n: usize) -> Circuit {
    let num_rels = query.num_inputs();
    let mut builder = CircuitBuilder::new(num_rels * n * n);
    let inputs: Vec<RelWires> = (0..num_rels)
        .map(|r| RelWires {
            n,
            wires: (0..n * n).map(|k| builder.input(r * n * n + k)).collect(),
        })
        .collect();
    let result = compile_inner(query, n, &inputs, None, &mut builder);
    builder.finish(result.wires)
}

fn compile_inner(
    query: &RelQuery,
    n: usize,
    inputs: &[RelWires],
    current: Option<&RelWires>,
    b: &mut CircuitBuilder,
) -> RelWires {
    match query {
        RelQuery::Input(i) => inputs[*i].clone(),
        RelQuery::Current => current
            .expect("Current used outside an IterateLogN body")
            .clone(),
        RelQuery::Empty => {
            let zero = b.constant(false);
            RelWires {
                n,
                wires: vec![zero; n * n],
            }
        }
        RelQuery::Full => {
            let one = b.constant(true);
            RelWires {
                n,
                wires: vec![one; n * n],
            }
        }
        RelQuery::Identity => {
            let zero = b.constant(false);
            let one = b.constant(true);
            let wires = (0..n * n)
                .map(|k| if k / n == k % n { one } else { zero })
                .collect();
            RelWires { n, wires }
        }
        RelQuery::Union(x, y) => {
            let rx = compile_inner(x, n, inputs, current, b);
            let ry = compile_inner(y, n, inputs, current, b);
            let wires = rx
                .wires
                .iter()
                .zip(&ry.wires)
                .map(|(&a, &c)| b.or2(a, c))
                .collect();
            RelWires { n, wires }
        }
        RelQuery::Intersect(x, y) => {
            let rx = compile_inner(x, n, inputs, current, b);
            let ry = compile_inner(y, n, inputs, current, b);
            let wires = rx
                .wires
                .iter()
                .zip(&ry.wires)
                .map(|(&a, &c)| b.and2(a, c))
                .collect();
            RelWires { n, wires }
        }
        RelQuery::Difference(x, y) => {
            let rx = compile_inner(x, n, inputs, current, b);
            let ry = compile_inner(y, n, inputs, current, b);
            let wires = rx
                .wires
                .iter()
                .zip(&ry.wires)
                .map(|(&a, &c)| {
                    let nc = b.not(c);
                    b.and2(a, nc)
                })
                .collect();
            RelWires { n, wires }
        }
        RelQuery::Complement(x) => {
            let rx = compile_inner(x, n, inputs, current, b);
            let wires = rx.wires.iter().map(|&a| b.not(a)).collect();
            RelWires { n, wires }
        }
        RelQuery::Transpose(x) => {
            let rx = compile_inner(x, n, inputs, current, b);
            let mut wires = vec![0 as GateId; n * n];
            for i in 0..n {
                for j in 0..n {
                    wires[i * n + j] = rx.wires[j * n + i];
                }
            }
            RelWires { n, wires }
        }
        RelQuery::Compose(x, y) => {
            let rx = compile_inner(x, n, inputs, current, b);
            let ry = compile_inner(y, n, inputs, current, b);
            let mut wires = Vec::with_capacity(n * n);
            for i in 0..n {
                for j in 0..n {
                    let pairs: Vec<GateId> = (0..n)
                        .map(|k| b.and2(rx.wires[i * n + k], ry.wires[k * n + j]))
                        .collect();
                    wires.push(b.or_many(pairs));
                }
            }
            RelWires { n, wires }
        }
        RelQuery::IterateLogN { init, body } => {
            let mut acc = compile_inner(init, n, inputs, current, b);
            let rounds = usize::BITS - n.leading_zeros();
            for _ in 0..rounds {
                acc = compile_inner(body, n, inputs, Some(&acc), b);
            }
            acc
        }
    }
}

/// Summary of a compiled circuit, reported by experiment E6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompiledStats {
    /// Universe size.
    pub n: usize,
    /// Iteration-nesting depth of the source query (the `k` of ACᵏ).
    pub nesting_depth: usize,
    /// Circuit size (number of gates).
    pub size: usize,
    /// Circuit depth.
    pub depth: usize,
}

/// Compile a query and report size/depth.
pub fn compile_stats(query: &RelQuery, n: usize) -> CompiledStats {
    let circuit = compile(query, n);
    CompiledStats {
        n,
        nesting_depth: query.nesting_depth(),
        size: circuit.size(),
        depth: circuit.depth(),
    }
}

/// Run a compiled circuit on concrete input relations and decode the result.
pub fn run_compiled(query: &RelQuery, n: usize, inputs: &[BitRelation]) -> BitRelation {
    let circuit = compile(query, n);
    let mut bits = Vec::with_capacity(query.num_inputs() * n * n);
    for r in inputs.iter().take(query.num_inputs()) {
        assert_eq!(r.n, n, "input relation universe mismatch");
        bits.extend_from_slice(&r.bits);
    }
    let out = circuit.eval(&bits);
    BitRelation { n, bits: out }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relquery::eval_reference;

    fn path(n: usize) -> BitRelation {
        BitRelation::from_pairs(n, &(0..n - 1).map(|i| (i, i + 1)).collect::<Vec<_>>())
    }

    fn cycle(n: usize) -> BitRelation {
        BitRelation::from_pairs(n, &(0..n).map(|i| (i, (i + 1) % n)).collect::<Vec<_>>())
    }

    #[test]
    fn compiled_boolean_operators_match_reference() {
        let n = 5;
        let r = path(n);
        let s = cycle(n);
        let queries = vec![
            RelQuery::union(RelQuery::Input(0), RelQuery::Input(1)),
            RelQuery::intersect(RelQuery::Input(0), RelQuery::Input(1)),
            RelQuery::difference(RelQuery::Input(1), RelQuery::Input(0)),
            RelQuery::Complement(Box::new(RelQuery::Input(0))),
            RelQuery::transpose(RelQuery::Input(1)),
            RelQuery::compose(RelQuery::Input(0), RelQuery::Input(1)),
            RelQuery::union(
                RelQuery::Identity,
                RelQuery::compose(RelQuery::Input(0), RelQuery::transpose(RelQuery::Input(1))),
            ),
        ];
        for q in queries {
            let compiled = run_compiled(&q, n, &[r.clone(), s.clone()]);
            let reference = eval_reference(&q, &[r.clone(), s.clone()], n);
            assert_eq!(compiled, reference, "query {q:?}");
        }
    }

    #[test]
    fn compiled_transitive_closure_matches_reference() {
        for n in [2usize, 3, 5, 8] {
            let q = RelQuery::transitive_closure(RelQuery::Input(0));
            for r in [path(n), cycle(n)] {
                let compiled = run_compiled(&q, n, std::slice::from_ref(&r));
                let reference = eval_reference(&q, std::slice::from_ref(&r), n);
                assert_eq!(compiled, reference, "n = {n}");
            }
        }
    }

    #[test]
    fn composition_is_constant_depth_and_union_is_depth_one() {
        let n = 16;
        let union = compile(&RelQuery::union(RelQuery::Input(0), RelQuery::Input(1)), n);
        assert_eq!(union.depth(), 1);
        let compose = compile(
            &RelQuery::compose(RelQuery::Input(0), RelQuery::Input(1)),
            n,
        );
        assert_eq!(compose.depth(), 2);
        // Size of composition is Θ(n³): n² outputs × (n ANDs + 1 OR).
        assert!(compose.size() >= n * n * n);
    }

    #[test]
    fn tc_depth_grows_logarithmically_with_n() {
        let q = RelQuery::transitive_closure(RelQuery::Input(0));
        let d8 = compile(&q, 8).depth();
        let d64 = compile(&q, 64).depth();
        // 8 → 4 rounds, 64 → 7 rounds; each round has constant depth, so the
        // ratio stays well below the 8× growth of n.
        assert!(d64 > d8);
        assert!(d64 <= d8 * 3, "depth should grow like log n: {d8} -> {d64}");
    }

    #[test]
    fn nesting_depth_multiplies_circuit_depth_by_log_factors() {
        let n = 16;
        let d1 = compile(&RelQuery::nested_depth_k(1), n).depth();
        let d2 = compile(&RelQuery::nested_depth_k(2), n).depth();
        let d3 = compile(&RelQuery::nested_depth_k(3), n).depth();
        // Each extra nesting level multiplies depth by ≈ ⌈log n⌉ = 5.
        assert!(d2 >= d1 * 3, "d1={d1} d2={d2}");
        assert!(d3 >= d2 * 3, "d2={d2} d3={d3}");
    }

    #[test]
    fn nested_queries_still_compute_correctly() {
        let n = 6;
        let q = RelQuery::nested_depth_k(2);
        let r = path(n);
        let compiled = run_compiled(&q, n, std::slice::from_ref(&r));
        let reference = eval_reference(&q, &[r], n);
        assert_eq!(compiled, reference);
    }

    #[test]
    fn compiled_circuits_validate() {
        let q = RelQuery::transitive_closure(RelQuery::Input(0));
        for n in [2usize, 4, 9] {
            assert_eq!(compile(&q, n).validate(), Ok(()));
        }
    }

    #[test]
    fn compile_stats_reports_the_query_shape() {
        let stats = compile_stats(&RelQuery::nested_depth_k(2), 8);
        assert_eq!(stats.nesting_depth, 2);
        assert_eq!(stats.n, 8);
        assert!(stats.size > 0 && stats.depth > 0);
    }
}
