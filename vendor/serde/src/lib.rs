//! Offline stand-in for `serde`.
//!
//! The workspace marks its data types `#[derive(Serialize, Deserialize)]` so a
//! future wire format can serialize them, but no code path serializes today.
//! This stub provides the two traits (blanket-implemented, so bounds written
//! against them hold) and re-exports the no-op derive macros under the same
//! names, exactly like `serde` with the `derive` feature. Swap for the registry
//! crate when network access is available; no call sites change.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}
