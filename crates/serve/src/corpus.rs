//! A mixed surface-text query corpus for load generation and stress tests.
//!
//! Every query is closed (no schema needed), valid under the standard extern
//! registry, and deterministic — the same text always evaluates to the same
//! canonical value, which is what lets the stress tests assert bit-identical
//! results between the wire path and direct [`Session`](ncql_engine::Session)
//! execution.

/// A named corpus query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusQuery {
    /// Stable name (used in load-generator reporting).
    pub name: &'static str,
    /// The surface text.
    pub text: &'static str,
}

/// The mixed corpus: arithmetic, set algebra, `ext` comprehension, `if` and
/// `let` forms, and divide-and-conquer recursion (`dcr`) — a spread of cheap
/// and moderately expensive shapes so concurrent runs overlap in the engine.
pub const CORPUS: &[CorpusQuery] = &[
    CorpusQuery {
        name: "arith/add",
        text: "nat_add(20, 22)",
    },
    CorpusQuery {
        name: "arith/mul",
        text: "nat_mul(6, 7)",
    },
    CorpusQuery {
        name: "arith/leq",
        text: "nat_leq(3, 8)",
    },
    CorpusQuery {
        name: "sets/union_dedup",
        text: "{@1} union {@2} union {@1}",
    },
    CorpusQuery {
        name: "sets/card",
        text: "card({@1} union {@2} union {@3} union {@4})",
    },
    CorpusQuery {
        name: "sets/isempty",
        text: "if isempty(empty[atom]) then {@7} else empty[atom]",
    },
    CorpusQuery {
        name: "sets/let_pair",
        text: "let s = {@1} union {@2} in (s, card(s))",
    },
    CorpusQuery {
        name: "pairs/pi1",
        text: "pi1 (nat_add(1, 2), @5)",
    },
    CorpusQuery {
        name: "ext/diagonal",
        text: "ext(\\x: atom. {(x, x)}, {@1} union {@2} union {@3})",
    },
    CorpusQuery {
        name: "ext/product",
        text: "ext(\\x: atom. ext(\\y: atom. {(x, y)}, {@1} union {@2} union {@3}), \
               {@4} union {@5} union {@6})",
    },
    CorpusQuery {
        name: "dcr/parity",
        text: "dcr(false, \\y: atom. true, \
               \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, \
               {@1} union {@2} union {@3})",
    },
    CorpusQuery {
        name: "dcr/tc_edges",
        text: "dcr(empty[(atom * atom)], \\y: atom. {(@1,@2)} union {(@2,@3)}, \
               \\p: ({(atom*atom)} * {(atom*atom)}). pi1 p union pi2 p, {@1} union {@2})",
    },
    CorpusQuery {
        name: "dcr/sum_card",
        text: "dcr(0, \\y: atom. 1, \\p: (nat * nat). nat_add(pi1 p, pi2 p), \
               {@1} union {@2} union {@3} union {@4} union {@5})",
    },
    CorpusQuery {
        name: "mixed/card_of_product",
        text: "card(ext(\\x: atom. ext(\\y: atom. {(x, y)}, {@1} union {@2}), \
               {@3} union {@4} union {@5}))",
    },
];

/// A closed query whose evaluation cost grows cubically with `n`: the set of
/// ordered triples over `n` atoms, reduced to its cardinality. Used by the
/// deadline and work-budget tests, which need something provably expensive
/// yet type-correct.
pub fn expensive_query(n: usize) -> String {
    let atoms: Vec<String> = (1..=n.max(1)).map(|i| format!("{{@{i}}}")).collect();
    let base = atoms.join(" union ");
    format!(
        "card(ext(\\x: atom. ext(\\y: atom. ext(\\z: atom. {{((x, y), z)}}, {base}), {base}), {base}))"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_engine::Session;

    #[test]
    fn every_corpus_query_prepares_and_evaluates() {
        let session = Session::new();
        for q in CORPUS {
            let plan = session
                .prepare(q.text)
                .unwrap_or_else(|e| panic!("{} fails to prepare: {e}", q.name));
            session
                .execute(&plan)
                .unwrap_or_else(|e| panic!("{} fails to evaluate: {e}", q.name));
        }
        let names: std::collections::HashSet<&str> = CORPUS.iter().map(|q| q.name).collect();
        assert_eq!(names.len(), CORPUS.len(), "duplicate corpus names");
    }

    #[test]
    fn expensive_query_counts_triples() {
        let session = Session::new();
        let out = session.run(&expensive_query(5)).unwrap();
        assert_eq!(out.value.to_string(), "125");
    }
}
