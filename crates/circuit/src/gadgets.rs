//! Circuit gadgets over the §5 string encoding — Lemmas 7.4, 7.5 and 7.6 for
//! flat encodings.
//!
//! All three gadgets work on the 3-bits-per-symbol binary view of a symbol
//! string of a *fixed length* `L` (circuit families are per input length):
//!
//! * [`matched_parentheses`] (Lemma 7.4): for every pair of positions `(i, j)`
//!   output whether they hold a matching `(` `)` pair. For flat encodings the
//!   parentheses do not nest (pairs of atoms inside one level of braces), so a
//!   pair matches iff `i < j`, `sym(i) = '('`, `sym(j) = ')'` and no parenthesis
//!   symbol occurs strictly between them — an OR/AND expression of constant
//!   depth and polynomial size, which is the bounded-depth argument of the lemma.
//! * [`element_starts`] (Lemma 7.5): for a set encoding `{X₁,…,X_m}`, output a 1
//!   exactly on the positions where some `Xᵢ` begins — i.e. positions preceded
//!   by the opening brace or by an *outermost* comma (one not enclosed in
//!   parentheses).
//! * [`encoding_equality`] (Lemma 7.6): equality of two encodings of the same
//!   length. (We compare canonical minimal encodings symbol-wise; the full lemma
//!   also normalises duplicates and blanks, which our canonical encoder already
//!   guarantees are absent.)

use crate::gate::{Circuit, CircuitBuilder, GateId};
use ncql_object::encoding::Symbol;

/// Build, for position `pos` of a symbol string input starting at input bit
/// `3·pos`, a wire that is 1 iff the symbol at that position is `sym`.
fn symbol_is(b: &mut CircuitBuilder, pos: usize, sym: Symbol) -> GateId {
    let bits = sym.to_bits();
    let mut conjuncts = Vec::with_capacity(3);
    for (k, &bit) in bits.iter().enumerate() {
        let wire = b.input(pos * 3 + k);
        let lit = if bit { wire } else { b.not(wire) };
        conjuncts.push(lit);
    }
    b.and_many(conjuncts)
}

/// Lemma 7.4 gadget: a circuit with `3·len` inputs and `len·len` outputs
/// (row-major over `(i, j)`), where output `(i, j)` is 1 iff positions `i < j`
/// hold a matching parenthesis pair with no parenthesis strictly between them.
#[allow(clippy::needless_range_loop)] // (i, j) index the output grid, not just the vecs
pub fn matched_parentheses(len: usize) -> Circuit {
    let mut b = CircuitBuilder::new(3 * len);
    let open: Vec<GateId> = (0..len)
        .map(|p| symbol_is(&mut b, p, Symbol::LParen))
        .collect();
    let close: Vec<GateId> = (0..len)
        .map(|p| symbol_is(&mut b, p, Symbol::RParen))
        .collect();
    let is_paren: Vec<GateId> = (0..len).map(|p| b.or2(open[p], close[p])).collect();
    let not_paren: Vec<GateId> = (0..len).map(|p| b.not(is_paren[p])).collect();
    let zero = b.constant(false);
    let mut outputs = Vec::with_capacity(len * len);
    for i in 0..len {
        for j in 0..len {
            if i >= j {
                outputs.push(zero);
                continue;
            }
            let mut conjuncts = vec![open[i], close[j]];
            conjuncts.extend((i + 1..j).map(|p| not_paren[p]));
            outputs.push(b.and_many(conjuncts));
        }
    }
    b.finish(outputs)
}

/// Lemma 7.5 gadget: a circuit with `3·len` inputs and `len` outputs where
/// output `p` is 1 iff an element of the outermost set starts at position `p`.
#[allow(clippy::needless_range_loop)] // positions q, j index several parallel vecs at once
pub fn element_starts(len: usize) -> Circuit {
    let mut b = CircuitBuilder::new(3 * len);
    let lbrace: Vec<GateId> = (0..len)
        .map(|p| symbol_is(&mut b, p, Symbol::LBrace))
        .collect();
    let rbrace: Vec<GateId> = (0..len)
        .map(|p| symbol_is(&mut b, p, Symbol::RBrace))
        .collect();
    let comma: Vec<GateId> = (0..len)
        .map(|p| symbol_is(&mut b, p, Symbol::Comma))
        .collect();
    let lparen: Vec<GateId> = (0..len)
        .map(|p| symbol_is(&mut b, p, Symbol::LParen))
        .collect();
    let rparen: Vec<GateId> = (0..len)
        .map(|p| symbol_is(&mut b, p, Symbol::RParen))
        .collect();

    // A comma at position q is *inside parentheses* iff there is an unclosed '('
    // before it: ∃ j < q. sym(j) = '(' ∧ no ')' in (j, q). Constant depth with
    // unbounded fan-in.
    let mut inside_parens = vec![0 as GateId; len];
    for q in 0..len {
        let mut witnesses = Vec::new();
        for j in 0..q {
            let mut conj = vec![lparen[j]];
            conj.extend((j + 1..q).map(|m| {
                // not a ')'
                rparen[m]
            }));
            // Build ¬rparen for the in-between positions.
            let mut full = vec![conj[0]];
            for &r in &conj[1..] {
                let nr = b.not(r);
                full.push(nr);
            }
            witnesses.push(b.and_many(full));
        }
        inside_parens[q] = b.or_many(witnesses);
    }

    let zero = b.constant(false);
    let mut outputs = Vec::with_capacity(len);
    for p in 0..len {
        if p == 0 {
            outputs.push(zero);
            continue;
        }
        // Element start: previous symbol is '{' (and this is not already '}',
        // which would mean the empty set), or previous symbol is an outermost
        // comma.
        let not_rbrace_here = b.not(rbrace[p]);
        let after_open = b.and2(lbrace[p - 1], not_rbrace_here);
        let outer_comma = {
            let not_inside = b.not(inside_parens[p - 1]);
            b.and2(comma[p - 1], not_inside)
        };
        outputs.push(b.or2(after_open, outer_comma));
    }
    b.finish(outputs)
}

/// Lemma 7.6 gadget: equality of two encodings of the same symbol length. The
/// circuit has `6·len` inputs (first string, then second) and one output.
pub fn encoding_equality(len: usize) -> Circuit {
    let mut b = CircuitBuilder::new(6 * len);
    let first: Vec<GateId> = (0..3 * len).map(|k| b.input(k)).collect();
    let second: Vec<GateId> = (0..3 * len).map(|k| b.input(3 * len + k)).collect();
    let out = b.eq_bits(&first, &second);
    b.finish(vec![out])
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_object::encoding::{encode, SymbolString};
    use ncql_object::Value;

    fn bits_of(s: &SymbolString) -> Vec<bool> {
        s.to_bits()
    }

    #[test]
    fn matched_parentheses_on_a_relation_encoding() {
        // {(1,10),(10,11)} — the encoding of {(1,2),(2,3)}.
        let v = Value::relation_from_pairs(vec![(1, 2), (2, 3)]);
        let s = encode(&v);
        let text: Vec<char> = s.to_string().chars().collect();
        let len = text.len();
        let circuit = matched_parentheses(len);
        let out = circuit.eval(&bits_of(&s));
        // Reference: matching pairs computed directly.
        for i in 0..len {
            for j in 0..len {
                let expected = i < j
                    && text[i] == '('
                    && text[j] == ')'
                    && text[i + 1..j].iter().all(|&c| c != '(' && c != ')');
                assert_eq!(out[i * len + j], expected, "pair ({i},{j}) in {}", s);
            }
        }
        // Depth is constant (independent of the string length).
        assert!(circuit.depth() <= 6);
    }

    #[test]
    fn matched_parentheses_depth_is_independent_of_length() {
        let d_small = matched_parentheses(8).depth();
        let d_large = matched_parentheses(64).depth();
        assert_eq!(d_small, d_large);
    }

    #[test]
    fn element_starts_on_set_encodings() {
        for v in [
            Value::atom_set(vec![1, 2, 3]),
            Value::relation_from_pairs(vec![(0, 1), (1, 2), (2, 3)]),
            Value::atom_set(Vec::<u64>::new()),
        ] {
            let s = encode(&v);
            let text: Vec<char> = s.to_string().chars().collect();
            let len = text.len();
            let circuit = element_starts(len);
            let out = circuit.eval(&bits_of(&s));
            // Reference computation: element starts follow '{' (unless the set is
            // empty) or an outermost comma.
            let mut expected = vec![false; len];
            let mut depth_paren = 0i32;
            for p in 1..len {
                let prev = text[p - 1];
                match prev {
                    '(' => depth_paren += 1,
                    ')' => depth_paren -= 1,
                    _ => {}
                }
                if prev == '{' && text[p] != '}' {
                    expected[p] = true;
                }
                if prev == ',' && depth_paren == 0 {
                    expected[p] = true;
                }
                // Maintain paren depth for the prev symbol *before* judging the
                // next position: recompute properly below instead.
            }
            // Recompute expected with a clean scan (paren depth *at* the comma).
            let mut expected2 = vec![false; len];
            let mut depth = 0i32;
            for p in 0..len {
                if p > 0 {
                    let prev = text[p - 1];
                    let depth_at_prev = depth;
                    if prev == '{' && text[p] != '}' {
                        expected2[p] = true;
                    }
                    if prev == ',' && depth_at_prev == 0 {
                        expected2[p] = true;
                    }
                }
                match text[p] {
                    '(' => depth += 1,
                    ')' => depth -= 1,
                    _ => {}
                }
            }
            let _ = expected;
            assert_eq!(out, expected2, "encoding {}", s);
            // The number of detected starts equals the set cardinality.
            let count = out.iter().filter(|b| **b).count();
            assert_eq!(count, v.cardinality().unwrap(), "encoding {}", s);
        }
    }

    #[test]
    fn encoding_equality_matches_value_equality() {
        let a = Value::relation_from_pairs(vec![(1, 2), (3, 4)]);
        let b_same = Value::relation_from_pairs(vec![(3, 4), (1, 2)]);
        let c_diff = Value::relation_from_pairs(vec![(1, 2), (3, 5)]);
        let ea = encode(&a);
        let eb = encode(&b_same);
        let ec = encode(&c_diff);
        assert_eq!(ea.len(), eb.len());
        assert_eq!(ea.len(), ec.len());
        let circuit = encoding_equality(ea.len());
        let mut input_same = ea.to_bits();
        input_same.extend(eb.to_bits());
        assert_eq!(circuit.eval(&input_same), vec![true]);
        let mut input_diff = ea.to_bits();
        input_diff.extend(ec.to_bits());
        assert_eq!(circuit.eval(&input_diff), vec![false]);
        // Constant depth.
        assert!(circuit.depth() <= 6);
    }

    #[test]
    fn gadget_sizes_are_polynomial() {
        // Size grows polynomially (roughly cubically for element_starts due to
        // the outermost-comma witnesses), not exponentially.
        let s16 = element_starts(16).size();
        let s32 = element_starts(32).size();
        assert!(s32 < s16 * 16, "s16={s16} s32={s32}");
        let m16 = matched_parentheses(16).size();
        let m32 = matched_parentheses(32).size();
        assert!(m32 < m16 * 8, "m16={m16} m32={m32}");
    }
}
