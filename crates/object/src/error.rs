//! Error type shared by the object-model operations.

use std::fmt;

/// Errors raised by value construction, typing of values, and encoding/decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjectError {
    /// A value does not have the type it was claimed to have.
    TypeMismatch {
        /// Human-readable description of the expected type.
        expected: String,
        /// Human-readable description of the value that was found.
        found: String,
    },
    /// A decoder ran out of input or met an unexpected symbol.
    Decode {
        /// Byte/symbol position at which decoding failed.
        position: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A positional (characteristic-vector) encoding was asked for a value that is
    /// not a flat relation over the declared universe.
    NotFlat(String),
    /// An operation needed an ordered base universe of at least a given size.
    UniverseTooSmall {
        /// The size that was required.
        required: usize,
        /// The size that was available.
        available: usize,
    },
}

impl fmt::Display for ObjectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ObjectError::Decode { position, message } => {
                write!(f, "decode error at position {position}: {message}")
            }
            ObjectError::NotFlat(msg) => write!(f, "not a flat relation: {msg}"),
            ObjectError::UniverseTooSmall {
                required,
                available,
            } => write!(
                f,
                "universe too small: required {required}, available {available}"
            ),
        }
    }
}

impl std::error::Error for ObjectError {}
