//! Abstract syntax of the NC query language.
//!
//! The constructs follow §3 (the nested relational calculus NRA), §2 (recursion
//! on sets), and §7.1 (the logarithmic iterators). Constructors that the paper
//! writes applied to an argument — `dcr(e, f, u)(x)`, `log-loop(f)(x, y)` — are
//! represented here together with that argument, which keeps the evaluator and
//! the cost model first-order.

use ncql_object::{Type, Value};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

/// An expression of the language.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Expr {
    // ----- variables, functions, let -----
    /// A variable.
    Var(String),
    /// λ-abstraction `λx:s. e` (the paper writes `λxˢ.e`).
    Lam(String, Type, Box<Expr>),
    /// Function application `f(e)`.
    App(Box<Expr>, Box<Expr>),
    /// `let x = e1 in e2` — definable as `(λx. e2)(e1)`, kept primitive for
    /// readability of generated programs.
    Let(String, Box<Expr>, Box<Expr>),

    // ----- tuples -----
    /// The empty tuple `()`.
    Unit,
    /// Pair formation `(e1, e2)`.
    Pair(Box<Expr>, Box<Expr>),
    /// First projection `π₁ e`.
    Proj1(Box<Expr>),
    /// Second projection `π₂ e`.
    Proj2(Box<Expr>),

    // ----- booleans and comparisons -----
    /// A boolean constant.
    Bool(bool),
    /// Conditional `if e then e1 else e2`.
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Equality `e1 = e2`. The paper states equality at base type and notes that
    /// equality at all (object) types is expressible in NRA; we admit it at all
    /// object types directly.
    Eq(Box<Expr>, Box<Expr>),
    /// The order predicate `e1 ≤ e2` over the ordered base type, lifted to all
    /// object types (§3: "the order relation can be lifted to all types"). This
    /// is the external function that turns the language into `NRA(≤)`.
    Leq(Box<Expr>, Box<Expr>),

    // ----- constants -----
    /// An arbitrary complex-object literal (atoms, naturals, whole relations, …).
    Const(Value),

    // ----- sets -----
    /// The empty set `∅ : {t}` (annotated with its element type).
    Empty(Type),
    /// Singleton `{e}`.
    Singleton(Box<Expr>),
    /// Union `e1 ∪ e2`.
    Union(Box<Expr>, Box<Expr>),
    /// Emptiness test `empty(e)`.
    IsEmpty(Box<Expr>),
    /// `ext(f)(e)`: apply `f : s → {t}` to every element of `e : {s}` and union
    /// the results. Kept primitive (rather than derived from `sru`) because it is
    /// a *single* parallel step (§3).
    Ext(Box<Expr>, Box<Expr>),

    // ----- recursion on sets (§2) -----
    /// Divide-and-conquer recursion `dcr(e, f, u)(arg)`:
    /// `φ(∅)=e`, `φ({y})=f(y)`, `φ(s₁∪s₂)=u(φ(s₁),φ(s₂))`.
    /// Well-defined when `u` is associative and commutative with identity `e` on
    /// a set containing `e` and the range of `f`.
    Dcr {
        e: Box<Expr>,
        f: Box<Expr>,
        u: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Structural recursion on the union presentation `sru(e, f, u)(arg)` — like
    /// `dcr` but `u` must additionally be idempotent.
    Sru {
        e: Box<Expr>,
        f: Box<Expr>,
        u: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Structural recursion on the insert presentation `sri(e, i)(arg)`:
    /// `φ(∅)=e`, `φ(y ⊲ s)=i(y, φ(s))`, with `i` i-commutative and i-idempotent.
    Sri {
        e: Box<Expr>,
        i: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Element-step recursion `esr(e, i)(arg)` — like `sri` but the step is only
    /// taken for elements not already seen (`i` need not be i-idempotent).
    Esr {
        e: Box<Expr>,
        i: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Bounded divide-and-conquer recursion `bdcr(e, f, u, b)(arg)`, defined as
    /// `dcr(e ⊓ b, f ⊓ b, u ⊓ b)(arg)` where `⊓ b` intersects componentwise with
    /// the bound `b` at a PS-type (§2). This is the construct that stays inside
    /// NC over complex objects (Theorem 6.1).
    BDcr {
        e: Box<Expr>,
        f: Box<Expr>,
        u: Box<Expr>,
        bound: Box<Expr>,
        arg: Box<Expr>,
    },
    /// Bounded insert recursion `bsri(e, i, b)(arg) = sri(e ⊓ b, i ⊓ b)(arg)`.
    BSri {
        e: Box<Expr>,
        i: Box<Expr>,
        bound: Box<Expr>,
        arg: Box<Expr>,
    },

    // ----- iterators (§7.1) -----
    /// `log-loop(f)(set, init) = f^(⌈log(|set|+1)⌉)(init)`.
    LogLoop {
        f: Box<Expr>,
        set: Box<Expr>,
        init: Box<Expr>,
    },
    /// `loop(f)(set, init) = f^(|set|)(init)`.
    Loop {
        f: Box<Expr>,
        set: Box<Expr>,
        init: Box<Expr>,
    },
    /// Bounded logarithmic iterator `blog-loop(f, b)(set, init) =
    /// log-loop(f ⊓ b)(set, init ⊓ b)`.
    BLogLoop {
        f: Box<Expr>,
        bound: Box<Expr>,
        set: Box<Expr>,
        init: Box<Expr>,
    },
    /// Bounded iterator `bloop(f, b)(set, init) = loop(f ⊓ b)(set, init ⊓ b)`.
    BLoop {
        f: Box<Expr>,
        bound: Box<Expr>,
        set: Box<Expr>,
        init: Box<Expr>,
    },

    // ----- external functions Σ (Proposition 6.3) -----
    /// Application of a named external function to a list of arguments.
    Extern(String, Vec<Expr>),
}

static FRESH_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Generate a fresh variable name with the given stem. Used by the derived-form
/// builders and the source-to-source translations so that generated binders never
/// capture user variables (user programs cannot contain `%` in identifiers).
pub fn fresh_var(stem: &str) -> String {
    let n = FRESH_COUNTER.fetch_add(1, Ordering::Relaxed);
    format!("%{stem}{n}")
}

impl Expr {
    // ----- convenience constructors -----

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// λ-abstraction.
    pub fn lam(name: impl Into<String>, ty: Type, body: Expr) -> Expr {
        Expr::Lam(name.into(), ty, Box::new(body))
    }

    /// A λ-abstraction over a pair, `λ(x, y). e`, desugared as the paper does:
    /// `λz. e[π₁ z / x, π₂ z / y]` — realised here with a fresh variable and two
    /// `let` bindings, which avoids substitution.
    pub fn lam2(x: impl Into<String>, y: impl Into<String>, ty: Type, body: Expr) -> Expr {
        let z = fresh_var("pair");
        let (tx, ty_snd) = match &ty {
            Type::Prod(a, b) => ((**a).clone(), (**b).clone()),
            _ => (ty.clone(), ty.clone()),
        };
        let _ = (tx, ty_snd);
        Expr::lam(
            z.clone(),
            ty,
            Expr::let_in(
                x,
                Expr::proj1(Expr::var(z.clone())),
                Expr::let_in(y, Expr::proj2(Expr::var(z)), body),
            ),
        )
    }

    /// Function application.
    pub fn app(f: Expr, arg: Expr) -> Expr {
        Expr::App(Box::new(f), Box::new(arg))
    }

    /// `let x = e1 in e2`.
    pub fn let_in(name: impl Into<String>, bound: Expr, body: Expr) -> Expr {
        Expr::Let(name.into(), Box::new(bound), Box::new(body))
    }

    /// Pair formation.
    pub fn pair(a: Expr, b: Expr) -> Expr {
        Expr::Pair(Box::new(a), Box::new(b))
    }

    /// First projection.
    pub fn proj1(e: Expr) -> Expr {
        Expr::Proj1(Box::new(e))
    }

    /// Second projection.
    pub fn proj2(e: Expr) -> Expr {
        Expr::Proj2(Box::new(e))
    }

    /// Conditional.
    pub fn ite(c: Expr, t: Expr, f: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(f))
    }

    /// Equality.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::Eq(Box::new(a), Box::new(b))
    }

    /// Order predicate.
    pub fn leq(a: Expr, b: Expr) -> Expr {
        Expr::Leq(Box::new(a), Box::new(b))
    }

    /// Singleton set.
    pub fn singleton(e: Expr) -> Expr {
        Expr::Singleton(Box::new(e))
    }

    /// Union.
    pub fn union(a: Expr, b: Expr) -> Expr {
        Expr::Union(Box::new(a), Box::new(b))
    }

    /// N-ary union (empty list gives `∅ : {t}` using the provided element type).
    pub fn union_all(elem_ty: Type, mut parts: Vec<Expr>) -> Expr {
        match parts.len() {
            0 => Expr::Empty(elem_ty),
            1 => parts.pop().expect("len checked"),
            _ => {
                let mut it = parts.into_iter();
                let first = it.next().expect("len checked");
                it.fold(first, Expr::union)
            }
        }
    }

    /// Emptiness test.
    pub fn is_empty(e: Expr) -> Expr {
        Expr::IsEmpty(Box::new(e))
    }

    /// `ext(f)(e)`.
    pub fn ext(f: Expr, e: Expr) -> Expr {
        Expr::Ext(Box::new(f), Box::new(e))
    }

    /// A constant atom.
    pub fn atom(a: u64) -> Expr {
        Expr::Const(Value::Atom(a))
    }

    /// A constant natural number (external base type).
    pub fn nat(n: u64) -> Expr {
        Expr::Const(Value::Nat(n))
    }

    /// `dcr(e, f, u)(arg)`.
    pub fn dcr(e: Expr, f: Expr, u: Expr, arg: Expr) -> Expr {
        Expr::Dcr {
            e: Box::new(e),
            f: Box::new(f),
            u: Box::new(u),
            arg: Box::new(arg),
        }
    }

    /// `sru(e, f, u)(arg)`.
    pub fn sru(e: Expr, f: Expr, u: Expr, arg: Expr) -> Expr {
        Expr::Sru {
            e: Box::new(e),
            f: Box::new(f),
            u: Box::new(u),
            arg: Box::new(arg),
        }
    }

    /// `sri(e, i)(arg)`.
    pub fn sri(e: Expr, i: Expr, arg: Expr) -> Expr {
        Expr::Sri {
            e: Box::new(e),
            i: Box::new(i),
            arg: Box::new(arg),
        }
    }

    /// `esr(e, i)(arg)`.
    pub fn esr(e: Expr, i: Expr, arg: Expr) -> Expr {
        Expr::Esr {
            e: Box::new(e),
            i: Box::new(i),
            arg: Box::new(arg),
        }
    }

    /// `bdcr(e, f, u, b)(arg)`.
    pub fn bdcr(e: Expr, f: Expr, u: Expr, bound: Expr, arg: Expr) -> Expr {
        Expr::BDcr {
            e: Box::new(e),
            f: Box::new(f),
            u: Box::new(u),
            bound: Box::new(bound),
            arg: Box::new(arg),
        }
    }

    /// `bsri(e, i, b)(arg)`.
    pub fn bsri(e: Expr, i: Expr, bound: Expr, arg: Expr) -> Expr {
        Expr::BSri {
            e: Box::new(e),
            i: Box::new(i),
            bound: Box::new(bound),
            arg: Box::new(arg),
        }
    }

    /// `log-loop(f)(set, init)`.
    pub fn log_loop(f: Expr, set: Expr, init: Expr) -> Expr {
        Expr::LogLoop {
            f: Box::new(f),
            set: Box::new(set),
            init: Box::new(init),
        }
    }

    /// `loop(f)(set, init)`.
    pub fn loop_(f: Expr, set: Expr, init: Expr) -> Expr {
        Expr::Loop {
            f: Box::new(f),
            set: Box::new(set),
            init: Box::new(init),
        }
    }

    /// `blog-loop(f, b)(set, init)`.
    pub fn blog_loop(f: Expr, bound: Expr, set: Expr, init: Expr) -> Expr {
        Expr::BLogLoop {
            f: Box::new(f),
            bound: Box::new(bound),
            set: Box::new(set),
            init: Box::new(init),
        }
    }

    /// `bloop(f, b)(set, init)`.
    pub fn bloop(f: Expr, bound: Expr, set: Expr, init: Expr) -> Expr {
        Expr::BLoop {
            f: Box::new(f),
            bound: Box::new(bound),
            set: Box::new(set),
            init: Box::new(init),
        }
    }

    /// Application of a named external function.
    pub fn extern_call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Extern(name.into(), args)
    }

    /// Number of AST nodes (used by tests and the translation-overhead reports).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Visit every sub-expression (pre-order).
    pub fn visit<F: FnMut(&Expr)>(&self, f: &mut F) {
        f(self);
        match self {
            Expr::Var(_) | Expr::Unit | Expr::Bool(_) | Expr::Const(_) | Expr::Empty(_) => {}
            Expr::Lam(_, _, b) => b.visit(f),
            Expr::App(a, b)
            | Expr::Pair(a, b)
            | Expr::Eq(a, b)
            | Expr::Leq(a, b)
            | Expr::Union(a, b)
            | Expr::Ext(a, b)
            | Expr::Let(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Proj1(a) | Expr::Proj2(a) | Expr::Singleton(a) | Expr::IsEmpty(a) => a.visit(f),
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Dcr { e, f: f2, u, arg } | Expr::Sru { e, f: f2, u, arg } => {
                e.visit(f);
                f2.visit(f);
                u.visit(f);
                arg.visit(f);
            }
            Expr::Sri { e, i, arg } | Expr::Esr { e, i, arg } => {
                e.visit(f);
                i.visit(f);
                arg.visit(f);
            }
            Expr::BDcr { e, f: f2, u, bound, arg } => {
                e.visit(f);
                f2.visit(f);
                u.visit(f);
                bound.visit(f);
                arg.visit(f);
            }
            Expr::BSri { e, i, bound, arg } => {
                e.visit(f);
                i.visit(f);
                bound.visit(f);
                arg.visit(f);
            }
            Expr::LogLoop { f: f2, set, init } | Expr::Loop { f: f2, set, init } => {
                f2.visit(f);
                set.visit(f);
                init.visit(f);
            }
            Expr::BLogLoop { f: f2, bound, set, init } | Expr::BLoop { f: f2, bound, set, init } => {
                f2.visit(f);
                bound.visit(f);
                set.visit(f);
                init.visit(f);
            }
            Expr::Extern(_, args) => {
                for a in args {
                    a.visit(f);
                }
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Lam(x, ty, b) => write!(f, "(\\{x}: {ty}. {b})"),
            Expr::App(a, b) => write!(f, "{a}({b})"),
            Expr::Let(x, a, b) => write!(f, "(let {x} = {a} in {b})"),
            Expr::Unit => write!(f, "()"),
            Expr::Pair(a, b) => write!(f, "({a}, {b})"),
            Expr::Proj1(a) => write!(f, "pi1 {a}"),
            Expr::Proj2(a) => write!(f, "pi2 {a}"),
            Expr::Bool(b) => write!(f, "{b}"),
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
            Expr::Eq(a, b) => write!(f, "({a} = {b})"),
            Expr::Leq(a, b) => write!(f, "({a} <= {b})"),
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Empty(ty) => write!(f, "(empty : {{{ty}}})"),
            Expr::Singleton(a) => write!(f, "{{{a}}}"),
            Expr::Union(a, b) => write!(f, "({a} union {b})"),
            Expr::IsEmpty(a) => write!(f, "isempty({a})"),
            Expr::Ext(g, e) => write!(f, "ext({g})({e})"),
            Expr::Dcr { e, f: g, u, arg } => write!(f, "dcr({e}, {g}, {u})({arg})"),
            Expr::Sru { e, f: g, u, arg } => write!(f, "sru({e}, {g}, {u})({arg})"),
            Expr::Sri { e, i, arg } => write!(f, "sri({e}, {i})({arg})"),
            Expr::Esr { e, i, arg } => write!(f, "esr({e}, {i})({arg})"),
            Expr::BDcr { e, f: g, u, bound, arg } => {
                write!(f, "bdcr({e}, {g}, {u}, {bound})({arg})")
            }
            Expr::BSri { e, i, bound, arg } => write!(f, "bsri({e}, {i}, {bound})({arg})"),
            Expr::LogLoop { f: g, set, init } => write!(f, "logloop({g})({set}, {init})"),
            Expr::Loop { f: g, set, init } => write!(f, "loop({g})({set}, {init})"),
            Expr::BLogLoop { f: g, bound, set, init } => {
                write!(f, "bloglook({g}, {bound})({set}, {init})")
            }
            Expr::BLoop { f: g, bound, set, init } => {
                write!(f, "bloop({g}, {bound})({set}, {init})")
            }
            Expr::Extern(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_vars_are_distinct() {
        let a = fresh_var("x");
        let b = fresh_var("x");
        assert_ne!(a, b);
        assert!(a.starts_with('%'));
    }

    #[test]
    fn size_counts_nodes() {
        let e = Expr::union(Expr::singleton(Expr::atom(1)), Expr::Empty(Type::Base));
        assert_eq!(e.size(), 4);
    }

    #[test]
    fn display_is_reasonable() {
        let e = Expr::ite(
            Expr::eq(Expr::var("x"), Expr::atom(1)),
            Expr::Bool(true),
            Expr::Bool(false),
        );
        assert_eq!(e.to_string(), "(if (x = a1) then true else false)");
    }

    #[test]
    fn lam2_projects_components() {
        let e = Expr::lam2("a", "b", Type::prod(Type::Base, Type::Base), Expr::var("a"));
        // Structure: Lam(z, _, Let(a, pi1 z, Let(b, pi2 z, a)))
        match e {
            Expr::Lam(_, _, body) => match *body {
                Expr::Let(ref a, _, _) => assert_eq!(a, "a"),
                _ => panic!("expected let"),
            },
            _ => panic!("expected lambda"),
        }
    }

    #[test]
    fn union_all_handles_empty_and_singleton() {
        assert_eq!(
            Expr::union_all(Type::Base, vec![]),
            Expr::Empty(Type::Base)
        );
        assert_eq!(
            Expr::union_all(Type::Base, vec![Expr::atom(1)]),
            Expr::atom(1)
        );
        let e = Expr::union_all(Type::Base, vec![Expr::atom(1), Expr::atom(2), Expr::atom(3)]);
        assert_eq!(e.size(), 5);
    }
}
