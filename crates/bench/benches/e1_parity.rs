//! E1 — §1 parity example: evaluation time of the dcr, esr and loop variants,
//! with the dcr variant additionally timed on the parallel backend (threads
//! from `NCQL_TEST_PARALLELISM`, default 4) and through the engine's prepared
//! path: `cold` re-runs the full front end (parse + typecheck + analysis) on
//! every execution, `prepared` amortizes it through `Session::prepare`, so the
//! gap between the two columns is exactly the front-end cost the
//! prepared-statement cache saves.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::eval_closed;
use ncql_core::expr::Expr;
use ncql_core::parallelism_from_env;
use ncql_engine::SessionBuilder;
use ncql_object::Value;
use ncql_queries::{eval_query, parity};
use std::time::Duration;

/// The §1 parity query over `{@0 .. @(n-1)}` as surface text: the input set is
/// spelled out as a union chain, so the front end's cost grows with `n` like a
/// real query text's would.
fn parity_text(n: u64) -> String {
    let set = if n == 0 {
        "empty[atom]".to_string()
    } else {
        (0..n)
            .map(|i| format!("{{@{i}}}"))
            .collect::<Vec<_>>()
            .join(" union ")
    };
    format!(
        "dcr(false, \\y: atom. true, \
         \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, {set})"
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_parity");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [64u64, 256, 1024] {
        let input = Expr::constant(Value::atom_set(0..n));
        group.bench_with_input(BenchmarkId::new("dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&parity::parity_dcr(input.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("esr", n), &n, |b, _| {
            b.iter(|| eval_closed(&parity::parity_esr(input.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("loop", n), &n, |b, _| {
            b.iter(|| eval_closed(&parity::parity_loop(input.clone())).unwrap())
        });
        let threads = parallelism_from_env().unwrap_or(4);
        group.bench_with_input(
            BenchmarkId::new(format!("dcr_par{threads}"), n),
            &n,
            |b, _| {
                b.iter(|| eval_query(&parity::parity_dcr(input.clone()), Some(threads)).unwrap())
            },
        );
        // The persistent-pool variant: one session — one lazily-spawned
        // work-stealing worker set — reused across every iteration, so the
        // gap between `dcr_pool*` and `dcr_par*` (which builds a session and
        // therefore a fresh pool per call) is the pool set-up cost, and the
        // gap to sequential `dcr` is pure region-dispatch overhead.
        let pool_session = SessionBuilder::new().parallelism(Some(threads)).build();
        group.bench_with_input(
            BenchmarkId::new(format!("dcr_pool{threads}"), n),
            &n,
            |b, _| {
                b.iter(|| {
                    pool_session
                        .evaluate(&parity::parity_dcr(input.clone()))
                        .unwrap()
                })
            },
        );

        // Cold vs prepared through the engine: same text, same session config;
        // only the front-end amortization differs.
        let text = parity_text(n);
        let cold_session = SessionBuilder::new().cache_capacity(0).build();
        group.bench_with_input(BenchmarkId::new("dcr_cold", n), &n, |b, _| {
            b.iter(|| cold_session.run(&text).unwrap())
        });
        let session = SessionBuilder::new().build();
        let prepared = session.prepare(&text).unwrap();
        group.bench_with_input(BenchmarkId::new("dcr_prepared", n), &n, |b, _| {
            b.iter(|| session.execute(&prepared).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
