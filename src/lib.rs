#![doc = include_str!("../README.md")]

pub use ncql_circuit as circuit;
pub use ncql_core as core;
pub use ncql_engine as engine;
pub use ncql_object as object;
pub use ncql_pram as pram;
pub use ncql_queries as queries;
pub use ncql_serve as serve;
pub use ncql_surface as surface;
pub use ncql_translate as translate;

pub use ncql_core::Span;
pub use ncql_engine::{
    Backend, Bound, CacheMetrics, CancelToken, CostBound, Diagnostic, Error, ExecOptions, Finding,
    FiredRewrite, Lint, LintPolicy, OptLevel, Outcome, PreparedQuery, QueryAnalysis, Session,
    SessionBuilder, Severity,
};
