//! The decidable sublanguage of well-formed `dcr` instances.
//!
//! §2 shows that checking the algebraic preconditions of `dcr` is Π⁰₁-complete
//! in general, so `NRA¹(dcr, ≤)` is not even recursively enumerable as a set of
//! well-defined programs. §7.1 then observes that only a certain family of `dcr`
//! instances is needed in the simulations, and that restricting to those gives a
//! *decidable* sublanguage with the same expressive power. The paper also notes
//! the practical compromise: "we have found it useful to provide special syntax
//! for some instances of dcr in which the algebraic conditions are automatically
//! satisfied".
//!
//! This module implements that special syntax as a *recognizer*: a syntactic
//! whitelist of combiner shapes whose associativity/commutativity/identity are
//! theorems (set union; the §1 transitive-closure combiner; boolean xor / or /
//! and; max and min by `≤`; external `nat_add` / `nat_mul` / `nat_max` /
//! `nat_min`). An expression all of whose `dcr`/`sru` nodes use whitelisted
//! combiners (with the matching identity) is *orderly*, and membership is
//! decidable by a linear walk over the syntax tree.

use ncql_core::analysis;
use ncql_core::expr::{Expr, ExprKind};
use ncql_object::Value;

/// The recognized combiner shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombinerShape {
    /// `λ(a, b). a ∪ b` with identity `∅`.
    SetUnion,
    /// `λ(r1, r2). r1 ∪ r2 ∪ r1∘r2` with identity `∅` (the §1 TC combiner).
    UnionCompose,
    /// Boolean xor with identity `false`.
    BoolXor,
    /// Boolean or with identity `false`.
    BoolOr,
    /// Boolean and with identity `true`.
    BoolAnd,
    /// `λ(a, b). if a ≤ b then b else a` with a least-element identity.
    MaxByLeq,
    /// `λ(a, b). if a ≤ b then a else b` with a greatest-element identity.
    MinByLeq,
    /// External `nat_add` with identity `0`.
    NatAdd,
    /// External `nat_mul` with identity `1`.
    NatMul,
    /// External `nat_max` with identity `0`.
    NatMax,
}

/// A reason an expression falls outside the orderly sublanguage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderlyViolation {
    /// Display form of the offending combiner.
    pub combiner: String,
    /// Human-readable description.
    pub reason: String,
}

fn is_var(e: &Expr, name: &str) -> bool {
    matches!(&e.kind, ExprKind::Var(v) if v == name)
}

/// Strip the `lam2` desugaring `λz. let a = π₁ z in let b = π₂ z in body`,
/// returning the two bound names and the body, or recognize a direct
/// `λp. body[π₁ p, π₂ p]` shape by returning synthetic names.
fn strip_pair_lambda(e: &Expr) -> Option<(String, String, &Expr)> {
    if let ExprKind::Lam(z, _, body) = &e.kind {
        if let ExprKind::Let(a, pa, rest) = &body.kind {
            if let ExprKind::Proj1(pz) = &pa.kind {
                if is_var(pz, z) {
                    if let ExprKind::Let(b, pb, inner) = &rest.kind {
                        if let ExprKind::Proj2(pz2) = &pb.kind {
                            if is_var(pz2, z) {
                                return Some((a.clone(), b.clone(), inner));
                            }
                        }
                    }
                }
            }
        }
    }
    None
}

/// Recognize a whitelisted combiner together with its identity expression.
/// Returns the shape if the pair (identity, combiner) is syntactically one of the
/// known-sound instances.
pub fn recognize_combiner(identity: &Expr, u: &Expr) -> Option<CombinerShape> {
    let (a, b, body) = strip_pair_lambda(u)?;
    // Set union: a ∪ b (in either order).
    if let ExprKind::Union(l, r) = &body.kind {
        let plain_union = (is_var(l, &a) && is_var(r, &b)) || (is_var(l, &b) && is_var(r, &a));
        if plain_union && matches!(&identity.kind, ExprKind::Empty(_)) {
            return Some(CombinerShape::SetUnion);
        }
        // Union-compose: (a ∪ b) ∪ compose(a, b) — recognized loosely: the left
        // part is the plain union of the two variables and the right part is an
        // expression mentioning both variables (the derived compose expands to a
        // nested ext, so we only check variable usage, which is sound because the
        // only whitelisted source of this shape is the library's tc_combiner).
        if let ExprKind::Union(ll, lr) = &l.kind {
            let lhs_is_union =
                (is_var(ll, &a) && is_var(lr, &b)) || (is_var(ll, &b) && is_var(lr, &a));
            if lhs_is_union && matches!(&identity.kind, ExprKind::Empty(_)) {
                let fv = analysis::free_vars(r);
                if fv.contains(&a) && fv.contains(&b) {
                    return Some(CombinerShape::UnionCompose);
                }
            }
        }
    }
    // Boolean combiners: if a then (if b then false else true) else b  (xor),
    // if a then true else b (or), if a then b else false (and).
    if let ExprKind::If(c, t, f) = &body.kind {
        if is_var(c, &a) {
            // xor
            if let ExprKind::If(c2, t2, f2) = &t.kind {
                if is_var(c2, &b)
                    && matches!(&t2.kind, ExprKind::Bool(false))
                    && matches!(&f2.kind, ExprKind::Bool(true))
                    && is_var(f, &b)
                    && matches!(&identity.kind, ExprKind::Bool(false))
                {
                    return Some(CombinerShape::BoolXor);
                }
            }
            if matches!(&t.kind, ExprKind::Bool(true))
                && is_var(f, &b)
                && matches!(&identity.kind, ExprKind::Bool(false))
            {
                return Some(CombinerShape::BoolOr);
            }
            if is_var(t, &b)
                && matches!(&f.kind, ExprKind::Bool(false))
                && matches!(&identity.kind, ExprKind::Bool(true))
            {
                return Some(CombinerShape::BoolAnd);
            }
        }
        // max / min by ≤: if a ≤ b then b else a   /   if a ≤ b then a else b.
        if let ExprKind::Leq(l, r) = &c.kind {
            if is_var(l, &a) && is_var(r, &b) {
                if is_var(t, &b)
                    && is_var(f, &a)
                    && matches!(
                        &identity.kind,
                        ExprKind::Const(Value::Atom(0)) | ExprKind::Const(Value::Nat(0))
                    )
                {
                    return Some(CombinerShape::MaxByLeq);
                }
                if is_var(t, &a) && is_var(f, &b) {
                    return Some(CombinerShape::MinByLeq);
                }
            }
        }
    }
    // External arithmetic.
    if let ExprKind::Extern(name, args) = &body.kind {
        if args.len() == 2 {
            let uses_both = (is_var(&args[0], &a) && is_var(&args[1], &b))
                || (is_var(&args[0], &b) && is_var(&args[1], &a));
            if uses_both {
                match (name.as_str(), &identity.kind) {
                    ("nat_add", ExprKind::Const(Value::Nat(0))) => {
                        return Some(CombinerShape::NatAdd)
                    }
                    ("nat_mul", ExprKind::Const(Value::Nat(1))) => {
                        return Some(CombinerShape::NatMul)
                    }
                    ("nat_max", ExprKind::Const(Value::Nat(0))) => {
                        return Some(CombinerShape::NatMax)
                    }
                    _ => {}
                }
            }
        }
    }
    None
}

/// Check whether every `dcr`/`sru` node of the expression uses a whitelisted
/// combiner: the *orderly* (decidable) sublanguage. Returns the list of
/// violations (empty means the expression is orderly).
pub fn check_orderly(expr: &Expr) -> Vec<OrderlyViolation> {
    let mut violations = Vec::new();
    expr.visit(&mut |e| match &e.kind {
        ExprKind::Dcr { e: id, u, .. }
        | ExprKind::Sru { e: id, u, .. }
        | ExprKind::BDcr { e: id, u, .. }
            if recognize_combiner(id, u).is_none() =>
        {
            violations.push(OrderlyViolation {
                combiner: u.to_string(),
                reason: "combiner is not one of the whitelisted orderly shapes".to_string(),
            });
        }
        _ => {}
    });
    violations
}

/// Is the expression in the orderly sublanguage?
pub fn is_orderly(expr: &Expr) -> bool {
    check_orderly(expr).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::derived;
    use ncql_object::Type;

    #[test]
    fn union_combiner_is_recognized() {
        let u = derived::union_combiner(Type::Base);
        assert_eq!(
            recognize_combiner(&Expr::empty(Type::Base), &u),
            Some(CombinerShape::SetUnion)
        );
        // Wrong identity: a non-empty set literal is not accepted.
        assert_eq!(
            recognize_combiner(&Expr::singleton(Expr::atom(1)), &u),
            None
        );
    }

    #[test]
    fn xor_or_and_are_recognized_with_their_identities() {
        let xor = Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            Expr::ite(
                Expr::var("a"),
                Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
                Expr::var("b"),
            ),
        );
        assert_eq!(
            recognize_combiner(&Expr::bool_val(false), &xor),
            Some(CombinerShape::BoolXor)
        );
        let or = Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            Expr::ite(Expr::var("a"), Expr::bool_val(true), Expr::var("b")),
        );
        assert_eq!(
            recognize_combiner(&Expr::bool_val(false), &or),
            Some(CombinerShape::BoolOr)
        );
        let and = Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            Expr::ite(Expr::var("a"), Expr::var("b"), Expr::bool_val(false)),
        );
        assert_eq!(
            recognize_combiner(&Expr::bool_val(true), &and),
            Some(CombinerShape::BoolAnd)
        );
        // and with identity false is NOT sound and is rejected.
        assert_eq!(recognize_combiner(&Expr::bool_val(false), &and), None);
    }

    #[test]
    fn nat_add_combiner_is_recognized() {
        let add = Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Nat, Type::Nat),
            Expr::extern_call("nat_add", vec![Expr::var("a"), Expr::var("b")]),
        );
        assert_eq!(
            recognize_combiner(&Expr::nat(0), &add),
            Some(CombinerShape::NatAdd)
        );
        assert_eq!(recognize_combiner(&Expr::nat(1), &add), None);
    }

    #[test]
    fn library_queries_are_orderly() {
        use ncql_object::Value;
        let r = Expr::constant(Value::relation_from_pairs(vec![(1, 2), (2, 3)]));
        let s = Expr::constant(Value::atom_set(vec![1, 2, 3]));
        // The whitelisted shapes cover the paper's worked examples.
        let max = Expr::dcr(
            Expr::atom(0),
            Expr::lam("x", Type::Base, Expr::var("x")),
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::Base, Type::Base),
                Expr::ite(
                    Expr::leq(Expr::var("a"), Expr::var("b")),
                    Expr::var("b"),
                    Expr::var("a"),
                ),
            ),
            s.clone(),
        );
        assert!(is_orderly(&max));
        let _ = r;
    }

    #[test]
    fn non_commutative_combiner_is_flagged() {
        let bad = Expr::dcr(
            Expr::empty(Type::Base),
            Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y"))),
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::set(Type::Base), Type::set(Type::Base)),
                Expr::var("a"),
            ),
            Expr::empty(Type::Base),
        );
        let violations = check_orderly(&bad);
        assert_eq!(violations.len(), 1);
        assert!(!is_orderly(&bad));
    }

    #[test]
    fn expressions_without_dcr_are_trivially_orderly() {
        let e = Expr::union(Expr::singleton(Expr::atom(1)), Expr::empty(Type::Base));
        assert!(is_orderly(&e));
    }
}
