//! E2 — transitive closure (§1 / Example 7.1): dcr vs log-loop vs element-wise.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::eval_closed;
use ncql_core::expr::Expr;
use ncql_queries::{datagen, graph};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_transitive_closure");
    group.sample_size(10).warm_up_time(Duration::from_millis(200)).measurement_time(Duration::from_millis(800));
    for n in [8u64, 16, 32] {
        let r = Expr::Const(datagen::path_graph(n).to_value());
        group.bench_with_input(BenchmarkId::new("dcr", n), &n, |b, _| {
            b.iter(|| eval_closed(&graph::tc_dcr(r.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("log_loop", n), &n, |b, _| {
            b.iter(|| eval_closed(&graph::tc_log_loop(r.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("elementwise", n), &n, |b, _| {
            b.iter(|| eval_closed(&graph::tc_elementwise(r.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("baseline_seminaive", n), &n, |b, _| {
            let rel = datagen::path_graph(n);
            b.iter(|| rel.transitive_closure_seminaive())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
