//! A DLOGSPACE-style uniformity witness for a hand-written transitive-closure
//! circuit family (§4's DLOGSPACE-DCL uniformity, §7.2's use of it).
//!
//! The family `α_n` computes the transitive closure of a binary relation over a
//! universe of size `n` by `T = ⌈log₂ n⌉` rounds of `r ← r ∪ r∘r`. Its layout is
//! completely regular:
//!
//! * gates `0 … n²−1` — the input bits (row-major);
//! * for each round `t = 1 … T` and each pair `(i, j)`: `n` AND gates
//!   (`prev(i,k) ∧ prev(k,j)` for `k = 0 … n−1`) followed by one OR gate over
//!   those ANDs and `prev(i,j)`;
//! * the outputs are the OR gates of round `T`.
//!
//! Because the layout is an arithmetic function of `(n, t, i, j, k)`, membership
//! of a tuple in the family's Direct Connection Language can be decided with a
//! constant number of integer registers each holding a value polynomial in `n`,
//! i.e. `O(log n)` bits of working storage — which is exactly the
//! DLOGSPACE-uniformity requirement. The [`LogSpaceMeter`] makes that resource
//! usage explicit and the tests check both the space bound and agreement with
//! the DCL extracted from the materialized circuit.

use crate::dcl::{DclGateType, DclTuple};
use crate::gate::{Circuit, Gate, GateId, GateKind};
use crate::relquery::BitRelation;

/// Accounting for the working storage of the uniformity decision procedure: each
/// register allocation records how many bits are needed to hold values up to the
/// registered maximum.
#[derive(Debug, Default, Clone)]
pub struct LogSpaceMeter {
    bits_used: u64,
    registers: u64,
}

impl LogSpaceMeter {
    /// A fresh meter.
    pub fn new() -> LogSpaceMeter {
        LogSpaceMeter::default()
    }

    /// Allocate a register that will hold values in `0 ..= max_value` and return
    /// the number of bits charged.
    pub fn alloc_register(&mut self, max_value: u64) -> u64 {
        let bits = 64 - max_value.leading_zeros() as u64;
        let bits = bits.max(1);
        self.bits_used += bits;
        self.registers += 1;
        bits
    }

    /// Total bits of working storage allocated.
    pub fn bits_used(&self) -> u64 {
        self.bits_used
    }

    /// Number of registers allocated.
    pub fn registers(&self) -> u64 {
        self.registers
    }
}

/// The uniform transitive-closure circuit family.
#[derive(Debug, Clone, Copy)]
pub struct UniformTcFamily;

impl UniformTcFamily {
    /// Number of squaring rounds for universe size `n`.
    pub fn rounds(n: usize) -> usize {
        (usize::BITS - n.leading_zeros()) as usize
    }

    /// Total number of gates of the member for universe size `n`.
    pub fn total_gates(n: usize) -> usize {
        n * n + Self::rounds(n) * n * n * (n + 1)
    }

    fn base(n: usize, t: usize) -> usize {
        n * n + (t - 1) * n * n * (n + 1)
    }

    /// The gate holding relation entry `(i, j)` after round `t` (`t = 0` is the
    /// input layer).
    pub fn layer_gate(n: usize, t: usize, i: usize, j: usize) -> GateId {
        if t == 0 {
            i * n + j
        } else {
            Self::base(n, t) + (i * n + j) * (n + 1) + n
        }
    }

    /// The `k`-th AND gate of round `t` for output pair `(i, j)`.
    pub fn and_gate(n: usize, t: usize, i: usize, j: usize, k: usize) -> GateId {
        Self::base(n, t) + (i * n + j) * (n + 1) + k
    }

    /// Materialize the family member for universe size `n`.
    pub fn generate(n: usize) -> Circuit {
        let mut gates: Vec<Gate> = (0..n * n)
            .map(|k| Gate {
                kind: GateKind::Input(k),
                inputs: Vec::new(),
            })
            .collect();
        let rounds = Self::rounds(n);
        for t in 1..=rounds {
            for i in 0..n {
                for j in 0..n {
                    for k in 0..n {
                        gates.push(Gate {
                            kind: GateKind::And,
                            inputs: vec![
                                Self::layer_gate(n, t - 1, i, k),
                                Self::layer_gate(n, t - 1, k, j),
                            ],
                        });
                    }
                    let mut or_inputs: Vec<GateId> =
                        (0..n).map(|k| Self::and_gate(n, t, i, j, k)).collect();
                    or_inputs.push(Self::layer_gate(n, t - 1, i, j));
                    gates.push(Gate {
                        kind: GateKind::Or,
                        inputs: or_inputs,
                    });
                }
            }
        }
        let outputs = (0..n)
            .flat_map(|i| (0..n).map(move |j| Self::layer_gate(n, rounds, i, j)))
            .collect();
        Circuit {
            num_inputs: n * n,
            gates,
            outputs,
        }
    }

    /// Decide membership of `(n, child, parent, type)` in the family's DCL by
    /// index arithmetic alone, charging the working registers to `meter`.
    /// This is the DLOGSPACE decision procedure: the registers hold gate
    /// indices and coordinates, all polynomial in `n`, hence `O(log n)` bits.
    pub fn dcl_member(n: usize, tuple: &DclTuple, meter: &mut LogSpaceMeter) -> bool {
        if tuple.n != n {
            return false;
        }
        let max_gate = Self::total_gates(n) as u64;
        // Registers: parent, child, rel, t, off, pair, slot, i, j (all ≤ max_gate
        // or ≤ n); charged up front.
        for _ in 0..7 {
            meter.alloc_register(max_gate);
        }
        for _ in 0..4 {
            meter.alloc_register(n as u64);
        }
        let rounds = Self::rounds(n);

        // Output tuples: (child = layer_gate(rounds, i, j), parent = output index).
        if let DclGateType::Output(idx) = tuple.parent_type {
            if idx >= n * n || tuple.parent != idx {
                return false;
            }
            let i = idx / n;
            let j = idx % n;
            return tuple.child == Self::layer_gate(n, rounds, i, j);
        }

        let parent = tuple.parent;
        if parent < n * n || parent >= Self::total_gates(n) {
            // Input gates have no children.
            return false;
        }
        let rel = parent - n * n;
        let block = n * n * (n + 1);
        let t = rel / block + 1;
        let off = rel % block;
        let pair = off / (n + 1);
        let slot = off % (n + 1);
        let i = pair / n;
        let j = pair % n;
        if slot < n {
            // AND gate with k = slot: children are prev(i, k) and prev(k, j).
            let k = slot;
            if tuple.parent_type != DclGateType::And {
                return false;
            }
            tuple.child == Self::layer_gate(n, t - 1, i, k)
                || tuple.child == Self::layer_gate(n, t - 1, k, j)
        } else {
            // OR gate: children are the n AND gates of this pair plus prev(i, j).
            if tuple.parent_type != DclGateType::Or {
                return false;
            }
            if tuple.child == Self::layer_gate(n, t - 1, i, j) {
                return true;
            }
            let and_base = Self::and_gate(n, t, i, j, 0);
            tuple.child >= and_base && tuple.child < and_base + n
        }
    }

    /// Evaluate the materialized member on a relation and decode the result.
    pub fn run(n: usize, relation: &BitRelation) -> BitRelation {
        let circuit = Self::generate(n);
        let out = circuit.eval(&relation.bits);
        BitRelation { n, bits: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcl::direct_connection_language;
    use crate::relquery::{eval_reference, RelQuery};

    #[test]
    fn family_member_computes_transitive_closure() {
        for n in [2usize, 3, 5, 8] {
            let pairs: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let r = BitRelation::from_pairs(n, &pairs);
            let out = UniformTcFamily::run(n, &r);
            let expected =
                eval_reference(&RelQuery::transitive_closure(RelQuery::Input(0)), &[r], n);
            assert_eq!(out, expected, "n = {n}");
        }
    }

    #[test]
    fn family_member_validates_and_has_log_depth() {
        for n in [2usize, 4, 8, 16] {
            let c = UniformTcFamily::generate(n);
            assert_eq!(c.validate(), Ok(()));
            assert_eq!(c.size(), UniformTcFamily::total_gates(n));
            // Depth = 2 per round.
            assert_eq!(c.depth(), 2 * UniformTcFamily::rounds(n));
        }
    }

    #[test]
    fn arithmetic_dcl_matches_extracted_dcl() {
        for n in [2usize, 3, 4] {
            let circuit = UniformTcFamily::generate(n);
            let extracted = direct_connection_language(n, &circuit);
            // Every extracted tuple is accepted by the arithmetic decider.
            for tuple in &extracted {
                let mut meter = LogSpaceMeter::new();
                assert!(
                    UniformTcFamily::dcl_member(n, tuple, &mut meter),
                    "missing {tuple:?} for n = {n}"
                );
            }
            // Random non-tuples are rejected: perturb parents/children.
            for tuple in extracted.iter().take(50) {
                let mut bogus = *tuple;
                bogus.child = bogus.child.wrapping_add(1) % circuit.size();
                let mut meter = LogSpaceMeter::new();
                let claims = UniformTcFamily::dcl_member(n, &bogus, &mut meter);
                let truth = extracted.contains(&bogus);
                assert_eq!(claims, truth, "disagreement on {bogus:?} for n = {n}");
            }
        }
    }

    #[test]
    fn decision_procedure_uses_logarithmic_space() {
        // The number of working bits grows like log n: a constant number of
        // registers of ⌈log(total gates)⌉ bits each.
        let mut usages = Vec::new();
        for n in [4usize, 16, 64, 256] {
            let tuple = DclTuple {
                n,
                child: 0,
                parent: n * n + n, // the first OR gate of round 1, pair (0,0)
                parent_type: DclGateType::Or,
            };
            let mut meter = LogSpaceMeter::new();
            let _ = UniformTcFamily::dcl_member(n, &tuple, &mut meter);
            let budget =
                16 * (usize::BITS - (UniformTcFamily::total_gates(n)).leading_zeros()) as u64;
            assert!(
                meter.bits_used() <= budget,
                "n = {n}: used {} bits, budget {budget}",
                meter.bits_used()
            );
            usages.push(meter.bits_used());
        }
        // Growth from n=4 to n=256 (a 64× larger instance) is far below linear.
        assert!(usages[3] < usages[0] * 4);
    }

    #[test]
    fn gate_numbering_round_trips() {
        let n = 5;
        let c = UniformTcFamily::generate(n);
        // The OR gate of round 1 for pair (2,3) must indeed be an OR gate whose
        // last input is the input gate (2,3).
        let or = UniformTcFamily::layer_gate(n, 1, 2, 3);
        assert_eq!(c.gates[or].kind, GateKind::Or);
        assert_eq!(*c.gates[or].inputs.last().unwrap(), 2 * n + 3);
        let and = UniformTcFamily::and_gate(n, 1, 2, 3, 4);
        assert_eq!(c.gates[and].kind, GateKind::And);
        assert_eq!(c.gates[and].inputs, vec![2 * n + 4, 4 * n + 3]);
    }
}
