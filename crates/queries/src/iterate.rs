//! Example 7.2: controlling the number of iterations through `loop` / `log-loop`
//! nesting.
//!
//! "Let n = card(x). loop(f) and log-loop(f) allow us to iterate n and log n
//! times respectively. To iterate n² times, it suffices to loop over x × x,
//! which has n² elements. To iterate log² n times, we use a depth two of
//! iteration nesting."
//!
//! The builders here iterate a *counting* function (successor on the external
//! naturals) so that tests and experiment E11 can read the achieved iteration
//! count directly off the result value.

use ncql_core::derived;
use ncql_core::expr::{fresh_var, Expr};
use ncql_object::Type;

/// The counting body `λc. c + 1` at type `ℕ → ℕ`.
pub fn increment_body() -> Expr {
    Expr::lam(
        "c",
        Type::Nat,
        Expr::extern_call("nat_add", vec![Expr::var("c"), Expr::nat(1)]),
    )
}

/// Iterate `|set|` times: `loop(+1)(set, 0)` — evaluates to the natural `n`.
pub fn count_n(set: Expr) -> Expr {
    Expr::loop_(increment_body(), set, Expr::nat(0))
}

/// Iterate `|set|²` times by looping over `set × set` — evaluates to `n²`.
pub fn count_n_squared(set: Expr) -> Expr {
    let s = fresh_var("sq");
    Expr::let_in(
        s.clone(),
        set,
        Expr::loop_(
            increment_body(),
            derived::cartesian_product(Type::Base, Type::Base, Expr::var(s.clone()), Expr::var(s)),
            Expr::nat(0),
        ),
    )
}

/// Iterate `⌈log(|set|+1)⌉` times — evaluates to that logarithm.
pub fn count_log_n(set: Expr) -> Expr {
    Expr::log_loop(increment_body(), set, Expr::nat(0))
}

/// Iterate `⌈log(|set|+1)⌉²` times with iteration-nesting depth two: an outer
/// `log-loop` whose body runs an inner `log-loop` that adds `⌈log(n+1)⌉` to the
/// counter.
pub fn count_log_squared_n(set: Expr) -> Expr {
    let s = fresh_var("lsq");
    Expr::let_in(
        s.clone(),
        set,
        Expr::log_loop(
            Expr::lam(
                "outer",
                Type::Nat,
                Expr::log_loop(increment_body(), Expr::var(s.clone()), Expr::var("outer")),
            ),
            Expr::var(s),
            Expr::nat(0),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::analysis;
    use ncql_core::eval::{eval_closed, log_rounds};
    use ncql_core::typecheck::typecheck_closed;
    use ncql_object::Value;

    fn atoms(n: u64) -> Expr {
        Expr::constant(Value::atom_set(0..n))
    }

    #[test]
    fn counts_match_the_predicted_iteration_numbers() {
        for n in [0u64, 1, 2, 3, 5, 8, 13, 21] {
            let logn = log_rounds(n as usize);
            assert_eq!(
                eval_closed(&count_n(atoms(n))).unwrap(),
                Value::Nat(n),
                "n={n}"
            );
            assert_eq!(
                eval_closed(&count_n_squared(atoms(n))).unwrap(),
                Value::Nat(n * n),
                "n²  n={n}"
            );
            assert_eq!(
                eval_closed(&count_log_n(atoms(n))).unwrap(),
                Value::Nat(logn),
                "log n  n={n}"
            );
            assert_eq!(
                eval_closed(&count_log_squared_n(atoms(n))).unwrap(),
                Value::Nat(logn * logn),
                "log² n  n={n}"
            );
        }
    }

    #[test]
    fn nesting_depths_match_example_7_2() {
        assert_eq!(analysis::recursion_depth(&count_n(atoms(4))), 1);
        assert_eq!(analysis::recursion_depth(&count_n_squared(atoms(4))), 1);
        assert_eq!(analysis::recursion_depth(&count_log_n(atoms(4))), 1);
        assert_eq!(analysis::recursion_depth(&count_log_squared_n(atoms(4))), 2);
    }

    #[test]
    fn counters_typecheck_to_nat() {
        for q in [
            count_n(atoms(3)),
            count_n_squared(atoms(3)),
            count_log_n(atoms(3)),
            count_log_squared_n(atoms(3)),
        ] {
            assert_eq!(typecheck_closed(&q).unwrap(), Type::Nat);
        }
    }
}
