//! Bounded checking of the algebraic preconditions of the recursors (§2).
//!
//! `dcr(e, f, u)` is well-defined only when `u` is associative and commutative
//! with identity `e` on some set containing `e` and the range of `f`; `sru`
//! additionally needs idempotence, and `sri`/`esr` need the step `i` to be
//! i-commutative (and for `sri` i-idempotent). The paper points out that for a
//! language at least as expressive as first-order logic checking these identities
//! is as hard as finite validity, hence Π⁰₁-complete — so there is no complete
//! static check.
//!
//! What *is* possible, and what this module provides, is a **bounded dynamic
//! check**: given a concrete carrier (a finite set of values, normally obtained
//! by evaluating `f` over an actual input together with `e` and some closure
//! under `u`), verify the identities exhaustively over that carrier. This is the
//! precision/cost trade-off a practical implementation of the language would
//! ship, and it is also how experiment E12 demonstrates that the crafted
//! counterexample of §2 (`u(x, y) = if p then x ∪ y else x \ y`) is caught.

use crate::error::EvalError;
use crate::eval::{EvalConfig, Evaluator};
use crate::expr::Expr;
use ncql_object::Value;

/// Outcome of a bounded well-definedness check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LawViolation {
    /// `u(e, a) ≠ a` for some carrier element `a`.
    Identity { element: Value, got: Value },
    /// `u(a, b) ≠ u(b, a)`.
    Commutativity { a: Value, b: Value },
    /// `u(u(a, b), c) ≠ u(a, u(b, c))`.
    Associativity { a: Value, b: Value, c: Value },
    /// `u(a, a) ≠ a` (only checked for `sru`).
    Idempotence { a: Value },
    /// `i(x, i(y, s)) ≠ i(y, i(x, s))` (insert-recursor i-commutativity).
    ICommutativity { x: Value, y: Value, s: Value },
    /// `i(x, i(x, s)) ≠ i(x, s)` (insert-recursor i-idempotence, `sri` only).
    IIdempotence { x: Value, s: Value },
}

/// Report of a bounded check: either no violation was found over the carrier, or
/// the first violations encountered (up to `max_violations`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WellFormednessReport {
    /// Number of carrier elements inspected.
    pub carrier_size: usize,
    /// Number of combiner evaluations performed.
    pub checks_performed: usize,
    /// The violations found (empty means the instance passed the bounded check).
    pub violations: Vec<LawViolation>,
}

impl WellFormednessReport {
    /// Did the instance pass the bounded check?
    pub fn is_well_formed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Options for the bounded checker.
#[derive(Debug, Clone)]
pub struct CheckOptions {
    /// Cap on the number of carrier elements considered (the carrier is truncated
    /// to this size to keep the O(n³) associativity sweep tractable).
    pub max_carrier: usize,
    /// Stop after this many violations.
    pub max_violations: usize,
    /// Also require idempotence of the combiner (for `sru`).
    pub require_idempotence: bool,
}

impl Default for CheckOptions {
    fn default() -> CheckOptions {
        CheckOptions {
            max_carrier: 12,
            max_violations: 3,
            require_idempotence: false,
        }
    }
}

/// A checker that evaluates combiner/step expressions against concrete values.
pub struct LawChecker {
    evaluator: Evaluator,
}

impl Default for LawChecker {
    fn default() -> Self {
        LawChecker::new(EvalConfig::default())
    }
}

impl LawChecker {
    /// Create a checker with an explicit evaluator configuration.
    pub fn new(config: EvalConfig) -> LawChecker {
        LawChecker {
            evaluator: Evaluator::new(config),
        }
    }

    fn apply2(&mut self, op: &Expr, a: &Value, b: &Value) -> Result<Value, EvalError> {
        // Build the application op((a, b)) with the operands supplied as bindings,
        // so that `op` itself may be any closed combiner expression.
        let call = Expr::app(
            op.clone(),
            Expr::pair(Expr::var("%law_a"), Expr::var("%law_b")),
        );
        self.evaluator.eval_with_bindings(
            &call,
            &[
                ("%law_a".to_string(), a.clone()),
                ("%law_b".to_string(), b.clone()),
            ],
        )
    }

    /// Build a carrier for a `dcr(e, f, u)` instance from a concrete input set:
    /// `{e} ∪ { f(x) | x ∈ input } ∪` one round of pairwise `u`-combinations.
    /// This approximates "some set containing e and the range of f" closed under
    /// the combinations the evaluation will actually perform.
    pub fn carrier_for_dcr(
        &mut self,
        e: &Expr,
        f: &Expr,
        u: &Expr,
        input: &Value,
        options: &CheckOptions,
    ) -> Result<Vec<Value>, EvalError> {
        let mut carrier = Vec::new();
        let e_val = self.evaluator.eval_closed(e)?;
        carrier.push(e_val);
        if let Value::Set(s) = input {
            for x in s.iter().take(options.max_carrier) {
                let call = Expr::app(f.clone(), Expr::var("%law_x"));
                let v = self
                    .evaluator
                    .eval_with_bindings(&call, &[("%law_x".to_string(), x.clone())])?;
                if !carrier.contains(&v) {
                    carrier.push(v);
                }
            }
        }
        // One closure round under u.
        let snapshot = carrier.clone();
        for a in &snapshot {
            for b in &snapshot {
                if carrier.len() >= options.max_carrier {
                    break;
                }
                let v = self.apply2(u, a, b)?;
                if !carrier.contains(&v) {
                    carrier.push(v);
                }
            }
        }
        carrier.truncate(options.max_carrier);
        Ok(carrier)
    }

    /// Check associativity, commutativity, identity (and optionally idempotence)
    /// of the combiner `u` with unit `e` over the given carrier.
    pub fn check_combiner(
        &mut self,
        e: &Expr,
        u: &Expr,
        carrier: &[Value],
        options: &CheckOptions,
    ) -> Result<WellFormednessReport, EvalError> {
        let mut report = WellFormednessReport {
            carrier_size: carrier.len(),
            checks_performed: 0,
            violations: Vec::new(),
        };
        let e_val = self.evaluator.eval_closed(e)?;

        // Identity.
        for a in carrier {
            report.checks_performed += 1;
            let got = self.apply2(u, &e_val, a)?;
            if &got != a {
                report.violations.push(LawViolation::Identity {
                    element: a.clone(),
                    got,
                });
                if report.violations.len() >= options.max_violations {
                    return Ok(report);
                }
            }
        }
        // Commutativity.
        for (i, a) in carrier.iter().enumerate() {
            for b in &carrier[i + 1..] {
                report.checks_performed += 1;
                let ab = self.apply2(u, a, b)?;
                let ba = self.apply2(u, b, a)?;
                if ab != ba {
                    report.violations.push(LawViolation::Commutativity {
                        a: a.clone(),
                        b: b.clone(),
                    });
                    if report.violations.len() >= options.max_violations {
                        return Ok(report);
                    }
                }
            }
        }
        // Idempotence (sru only).
        if options.require_idempotence {
            for a in carrier {
                report.checks_performed += 1;
                let aa = self.apply2(u, a, a)?;
                if &aa != a {
                    report
                        .violations
                        .push(LawViolation::Idempotence { a: a.clone() });
                    if report.violations.len() >= options.max_violations {
                        return Ok(report);
                    }
                }
            }
        }
        // Associativity.
        for a in carrier {
            for b in carrier {
                for c in carrier {
                    report.checks_performed += 1;
                    let ab = self.apply2(u, a, b)?;
                    let ab_c = self.apply2(u, &ab, c)?;
                    let bc = self.apply2(u, b, c)?;
                    let a_bc = self.apply2(u, a, &bc)?;
                    if ab_c != a_bc {
                        report.violations.push(LawViolation::Associativity {
                            a: a.clone(),
                            b: b.clone(),
                            c: c.clone(),
                        });
                        if report.violations.len() >= options.max_violations {
                            return Ok(report);
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// Check i-commutativity (and optionally i-idempotence) of an insert-recursor
    /// step `i` over the given element carrier and accumulator samples.
    pub fn check_step(
        &mut self,
        i: &Expr,
        elements: &[Value],
        accumulators: &[Value],
        require_i_idempotence: bool,
        options: &CheckOptions,
    ) -> Result<WellFormednessReport, EvalError> {
        let mut report = WellFormednessReport {
            carrier_size: elements.len() * accumulators.len(),
            checks_performed: 0,
            violations: Vec::new(),
        };
        for s in accumulators.iter().take(options.max_carrier) {
            for x in elements.iter().take(options.max_carrier) {
                for y in elements.iter().take(options.max_carrier) {
                    report.checks_performed += 1;
                    let ys = self.apply2(i, y, s)?;
                    let x_ys = self.apply2(i, x, &ys)?;
                    let xs = self.apply2(i, x, s)?;
                    let y_xs = self.apply2(i, y, &xs)?;
                    if x_ys != y_xs {
                        report.violations.push(LawViolation::ICommutativity {
                            x: x.clone(),
                            y: y.clone(),
                            s: s.clone(),
                        });
                        if report.violations.len() >= options.max_violations {
                            return Ok(report);
                        }
                    }
                }
                if require_i_idempotence {
                    for x in elements.iter().take(options.max_carrier) {
                        report.checks_performed += 1;
                        let xs = self.apply2(i, x, s)?;
                        let x_xs = self.apply2(i, x, &xs)?;
                        if x_xs != xs {
                            report.violations.push(LawViolation::IIdempotence {
                                x: x.clone(),
                                s: s.clone(),
                            });
                            if report.violations.len() >= options.max_violations {
                                return Ok(report);
                            }
                        }
                    }
                }
            }
        }
        Ok(report)
    }

    /// End-to-end convenience: check a `dcr`/`sru` instance against a concrete
    /// input value (used by the tests, the examples and experiment E12).
    pub fn check_dcr_instance(
        &mut self,
        e: &Expr,
        f: &Expr,
        u: &Expr,
        input: &Value,
        options: &CheckOptions,
    ) -> Result<WellFormednessReport, EvalError> {
        let carrier = self.carrier_for_dcr(e, f, u, input, options)?;
        self.check_combiner(e, u, &carrier, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derived::union_combiner;
    use ncql_object::Type;

    fn singleton_map() -> Expr {
        Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y")))
    }

    #[test]
    fn union_combiner_passes() {
        let mut checker = LawChecker::default();
        let input = Value::atom_set(vec![1, 2, 3, 4, 5]);
        let report = checker
            .check_dcr_instance(
                &Expr::empty(Type::Base),
                &singleton_map(),
                &union_combiner(Type::Base),
                &input,
                &CheckOptions {
                    require_idempotence: true,
                    ..CheckOptions::default()
                },
            )
            .unwrap();
        assert!(report.is_well_formed(), "{:?}", report.violations);
        assert!(report.checks_performed > 0);
    }

    #[test]
    fn xor_combiner_passes_without_idempotence_and_fails_with_it() {
        // xor is associative/commutative with identity false, but NOT idempotent:
        // it is a valid dcr combiner yet not a valid sru combiner — exactly the
        // dcr-vs-sru distinction of §2.
        let mut checker = LawChecker::default();
        let xor = Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            Expr::ite(
                Expr::var("a"),
                Expr::ite(Expr::var("b"), Expr::bool_val(false), Expr::bool_val(true)),
                Expr::var("b"),
            ),
        );
        let carrier = vec![Value::Bool(false), Value::Bool(true)];
        let dcr_report = checker
            .check_combiner(
                &Expr::bool_val(false),
                &xor,
                &carrier,
                &CheckOptions::default(),
            )
            .unwrap();
        assert!(dcr_report.is_well_formed());

        let sru_report = checker
            .check_combiner(
                &Expr::bool_val(false),
                &xor,
                &carrier,
                &CheckOptions {
                    require_idempotence: true,
                    ..CheckOptions::default()
                },
            )
            .unwrap();
        assert!(!sru_report.is_well_formed());
        assert!(sru_report
            .violations
            .iter()
            .any(|v| matches!(v, LawViolation::Idempotence { .. })));
    }

    #[test]
    fn set_difference_combiner_is_rejected() {
        // The §2 counterexample: u(x, y) = x \ y is neither associative nor
        // commutative.
        let ty = Type::set(Type::Base);
        let diff = Expr::lam2(
            "a",
            "b",
            Type::prod(ty.clone(), ty.clone()),
            crate::derived::difference(Type::Base, Expr::var("a"), Expr::var("b")),
        );
        let mut checker = LawChecker::default();
        let input = Value::atom_set(vec![1, 2, 3]);
        let report = checker
            .check_dcr_instance(
                &Expr::empty(Type::Base),
                &singleton_map(),
                &diff,
                &input,
                &CheckOptions::default(),
            )
            .unwrap();
        assert!(!report.is_well_formed());
    }

    #[test]
    fn non_identity_unit_is_detected() {
        // e = {0} is not an identity for union over carriers missing atom 0.
        let mut checker = LawChecker::default();
        let input = Value::atom_set(vec![1, 2]);
        let report = checker
            .check_dcr_instance(
                &Expr::singleton(Expr::atom(0)),
                &singleton_map(),
                &union_combiner(Type::Base),
                &input,
                &CheckOptions::default(),
            )
            .unwrap();
        assert!(report
            .violations
            .iter()
            .any(|v| matches!(v, LawViolation::Identity { .. })));
    }

    #[test]
    fn insert_step_checking() {
        // i(x, s) = {x} ∪ s is i-commutative and i-idempotent.
        let ty = Type::set(Type::Base);
        let step = Expr::lam2(
            "x",
            "acc",
            Type::prod(Type::Base, ty.clone()),
            Expr::union(Expr::singleton(Expr::var("x")), Expr::var("acc")),
        );
        let mut checker = LawChecker::default();
        let elements = vec![Value::Atom(1), Value::Atom(2), Value::Atom(3)];
        let accs = vec![Value::empty_set(), Value::atom_set(vec![1])];
        let report = checker
            .check_step(&step, &elements, &accs, true, &CheckOptions::default())
            .unwrap();
        assert!(report.is_well_formed());

        // i(x, s) = s \ {x} … is i-commutative; a non-commutative step: i(x,s) =
        // if x ∈ s then ∅ else {x} ∪ s? Simpler: i(x, s) = {x} (forgets s) is
        // i-commutative? i(x, i(y,s)) = {x}, i(y, i(x,s)) = {y} → differs.
        let forget = Expr::lam2(
            "x",
            "acc",
            Type::prod(Type::Base, ty),
            Expr::singleton(Expr::var("x")),
        );
        let report2 = checker
            .check_step(&forget, &elements, &accs, false, &CheckOptions::default())
            .unwrap();
        assert!(!report2.is_well_formed());
    }
}
