//! The TCP server: an acceptor plus one handler thread per connection, all
//! sharing one [`Session`].
//!
//! The session is the unit of multi-tenancy in this workspace — one plan
//! cache, one work-stealing pool, one set of resource limits — and it is
//! `Sync`, so the server never clones it: every connection handler executes
//! against the same `Arc<Session>`. Per-request isolation comes from three
//! mechanisms layered on top:
//!
//! 1. **Admission control** ([`Semaphore`]): at most
//!    [`ServeConfig::max_inflight`] evaluations run concurrently; a request
//!    that cannot be admitted within the admission timeout gets a typed
//!    `busy` error instead of queueing unboundedly.
//! 2. **Deadlines** ([`DeadlineWatchdog`]): every execute is armed with a
//!    wall-clock deadline (client-requested, capped by
//!    [`ServeConfig::max_deadline_ms`]); expiry cancels the evaluation
//!    cooperatively and the client sees a `deadline` error with the reason.
//! 3. **Budgets** ([`ExecOptions`]): per-request `max_work`/`max_set_size`
//!    only ever *tighten* the session's limits, so a shared deployment's
//!    guardrails cannot be talked past from the wire.

use crate::deadline::DeadlineWatchdog;
use crate::json::Json;
use crate::limits::Semaphore;
use crate::protocol::{self, code, error_code, ProtocolError, Request};
use ncql_engine::{CancelToken, Diagnostic, ExecOptions, Outcome, Session};
use ncql_object::Type;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server knobs; every field has an environment override (see
/// [`ServeConfig::from_env`]).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`NCQL_SERVE_ADDR`). Port 0 picks a free port —
    /// read it back from [`Server::local_addr`].
    pub addr: String,
    /// Maximum concurrently admitted evaluations
    /// (`NCQL_SERVE_MAX_INFLIGHT`).
    pub max_inflight: usize,
    /// How long a request waits for admission before the server answers
    /// `busy` (`NCQL_SERVE_ADMISSION_TIMEOUT_MS`).
    pub admission_timeout_ms: u64,
    /// Deadline applied when a request does not ask for one
    /// (`NCQL_SERVE_DEADLINE_MS`).
    pub default_deadline_ms: u64,
    /// Hard cap on client-requested deadlines
    /// (`NCQL_SERVE_MAX_DEADLINE_MS`).
    pub max_deadline_ms: u64,
    /// Longest accepted request line in bytes
    /// (`NCQL_SERVE_MAX_LINE_BYTES`). Oversized lines are drained and
    /// answered with a `protocol` error; the connection stays usable.
    pub max_line_bytes: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            max_inflight: 64,
            admission_timeout_ms: 100,
            default_deadline_ms: 10_000,
            max_deadline_ms: 60_000,
            max_line_bytes: 1 << 20,
        }
    }
}

impl ServeConfig {
    /// The defaults with any `NCQL_SERVE_*` environment overrides applied.
    /// Unparsable values fall back to the default rather than failing.
    pub fn from_env() -> ServeConfig {
        let mut config = ServeConfig::default();
        if let Ok(addr) = std::env::var("NCQL_SERVE_ADDR") {
            if !addr.is_empty() {
                config.addr = addr;
            }
        }
        fn num<T: std::str::FromStr>(name: &str, into: &mut T) {
            if let Some(v) = std::env::var(name).ok().and_then(|s| s.parse().ok()) {
                *into = v;
            }
        }
        num("NCQL_SERVE_MAX_INFLIGHT", &mut config.max_inflight);
        num(
            "NCQL_SERVE_ADMISSION_TIMEOUT_MS",
            &mut config.admission_timeout_ms,
        );
        num("NCQL_SERVE_DEADLINE_MS", &mut config.default_deadline_ms);
        num("NCQL_SERVE_MAX_DEADLINE_MS", &mut config.max_deadline_ms);
        num("NCQL_SERVE_MAX_LINE_BYTES", &mut config.max_line_bytes);
        config
    }
}

/// What the server shares across all connection handlers.
#[derive(Debug)]
struct Inner {
    session: Session,
    config: ServeConfig,
    admission: Semaphore,
    watchdog: DeadlineWatchdog,
    shutdown: AtomicBool,
}

/// A bound (but not yet accepting) server. Call [`Server::spawn`] to start
/// the accept loop on a background thread.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    inner: Arc<Inner>,
}

impl Server {
    /// Bind `config.addr` and wrap `session` for serving.
    pub fn bind(config: ServeConfig, session: Session) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let admission = Semaphore::new(config.max_inflight);
        Ok(Server {
            listener,
            inner: Arc::new(Inner {
                session,
                config,
                admission,
                watchdog: DeadlineWatchdog::new(),
                shutdown: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> io::Result<std::net::SocketAddr> {
        self.listener.local_addr()
    }

    /// Start accepting connections on a background thread; the returned
    /// handle shuts the server down when asked (or dropped).
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let inner = Arc::clone(&self.inner);
        let listener = self.listener;
        let acceptor = std::thread::Builder::new()
            .name("ncql-accept".to_string())
            .spawn(move || accept_loop(listener, inner))?;
        Ok(ServerHandle {
            addr,
            inner: self.inner,
            acceptor: Some(acceptor),
        })
    }

    /// Accept connections on the calling thread until shut down. This is what
    /// the `ncql-served` binary runs.
    pub fn run(self) -> io::Result<()> {
        let inner = Arc::clone(&self.inner);
        accept_loop(self.listener, inner);
        Ok(())
    }
}

/// Handle to a spawned server; shuts the accept loop down on
/// [`ServerHandle::shutdown`] or drop. Connections already being handled
/// finish their in-flight request.
#[derive(Debug)]
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    inner: Arc<Inner>,
    acceptor: Option<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is accepting on.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Stop accepting and join the acceptor thread.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        // Unblock the (otherwise indefinitely blocking) accept call.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, inner: Arc<Inner>) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _peer)) => stream,
            Err(_) if inner.shutdown.load(Ordering::Acquire) => return,
            Err(_) => continue,
        };
        if inner.shutdown.load(Ordering::Acquire) {
            return;
        }
        let handler_inner = Arc::clone(&inner);
        let spawned = std::thread::Builder::new()
            .name("ncql-conn".to_string())
            .spawn(move || {
                let _ = handle_connection(stream, handler_inner);
            });
        // Thread exhaustion: drop the connection rather than crash the
        // acceptor; the client sees a hangup and can retry.
        drop(spawned);
    }
}

/// One request line, or a reason it could not be read.
enum LineRead {
    Line(String),
    /// The line exceeded `max_line_bytes`; the rest of it was drained.
    Oversized,
    /// Clean end of stream.
    Eof,
}

/// Read one `\n`-terminated line without buffering more than `max` bytes of
/// it. An oversized line is consumed to its newline so the connection can
/// answer a `protocol` error and keep going — a hangup would turn a client
/// bug into a lost connection.
fn read_bounded_line(reader: &mut impl BufRead, max: usize) -> io::Result<LineRead> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return if line.is_empty() {
                Ok(LineRead::Eof)
            } else {
                // Trailing unterminated data: treat as a final line.
                Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()))
            };
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                if line.len() + newline > max {
                    reader.consume(newline + 1);
                    return Ok(LineRead::Oversized);
                }
                line.extend_from_slice(&available[..newline]);
                reader.consume(newline + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(LineRead::Line(String::from_utf8_lossy(&line).into_owned()));
            }
            None => {
                let taken = available.len();
                if line.len() + taken > max {
                    reader.consume(taken);
                    drain_to_newline(reader)?;
                    return Ok(LineRead::Oversized);
                }
                line.extend_from_slice(available);
                reader.consume(taken);
            }
        }
    }
}

fn drain_to_newline(reader: &mut impl BufRead) -> io::Result<()> {
    loop {
        let available = reader.fill_buf()?;
        if available.is_empty() {
            return Ok(());
        }
        match available.iter().position(|&b| b == b'\n') {
            Some(newline) => {
                reader.consume(newline + 1);
                return Ok(());
            }
            None => {
                let taken = available.len();
                reader.consume(taken);
            }
        }
    }
}

fn handle_connection(stream: TcpStream, inner: Arc<Inner>) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    loop {
        let line = match read_bounded_line(&mut reader, inner.config.max_line_bytes)? {
            LineRead::Eof => return Ok(()),
            LineRead::Oversized => {
                let message = format!(
                    "request line exceeds the {}-byte limit",
                    inner.config.max_line_bytes
                );
                send(&mut writer, protocol_error_response(None, &message))?;
                continue;
            }
            LineRead::Line(line) => line,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match protocol::parse_request(&line) {
            Ok(request) => request,
            Err(ProtocolError { id, message }) => {
                send(&mut writer, protocol_error_response(id, &message))?;
                continue;
            }
        };
        let closing = matches!(request, Request::Close { .. });
        let response = respond(&inner, request);
        send(&mut writer, response)?;
        if closing {
            return Ok(());
        }
    }
}

fn send(writer: &mut BufWriter<TcpStream>, mut response: String) -> io::Result<()> {
    response.push('\n');
    writer.write_all(response.as_bytes())?;
    writer.flush()
}

/// Build the response line for one parsed request. Responses are single
/// lines by construction: the JSON writer escapes every control character.
fn respond(inner: &Inner, request: Request) -> String {
    match request {
        Request::Close { id } => protocol::ok_response(
            id,
            Json::Obj(vec![("closing".to_string(), Json::Bool(true))]),
        ),
        Request::Stats { id } => protocol::ok_response(id, stats_body(&inner.session)),
        Request::Prepare { id, text, schema } => {
            let Some(_permit) = admit(inner) else {
                return busy_response(id, inner);
            };
            match inner.session.prepare_with_schema(&text, &schema) {
                Ok(plan) => protocol::ok_response(
                    id,
                    Json::Obj(vec![
                        ("type".to_string(), Json::str(plan.ty().to_string())),
                        ("ac_level".to_string(), Json::num(plan.ac_level() as u64)),
                        (
                            "recursion_depth".to_string(),
                            Json::num(plan.recursion_depth() as u64),
                        ),
                        ("normal_form".to_string(), Json::str(plan.normal_form())),
                    ]),
                ),
                Err(error) => engine_error_response(id, &error, &text),
            }
        }
        Request::Execute {
            id,
            text,
            schema,
            bindings,
            deadline_ms,
            max_work,
            max_set_size,
        } => {
            let Some(_permit) = admit(inner) else {
                return busy_response(id, inner);
            };
            let plan = match inner.session.prepare_with_schema(&text, &schema) {
                Ok(plan) => plan,
                Err(error) => return engine_error_response(id, &error, &text),
            };
            let deadline_ms = deadline_ms
                .unwrap_or(inner.config.default_deadline_ms)
                .min(inner.config.max_deadline_ms);
            let token = CancelToken::new();
            let mut options = ExecOptions::new().cancel(token.clone());
            if let Some(limit) = max_work {
                options = options.max_work(limit);
            }
            if let Some(limit) = max_set_size {
                options = options.max_set_size(limit);
            }
            let _armed = inner.watchdog.register(
                &token,
                Duration::from_millis(deadline_ms),
                format!("deadline of {deadline_ms}ms exceeded"),
            );
            match inner
                .session
                .execute_with_options(&plan, &bindings, &options)
            {
                Ok(outcome) => protocol::ok_response(id, outcome_body(&outcome, plan.ty())),
                Err(error) => engine_error_response(id, &error, &text),
            }
        }
    }
}

fn admit(inner: &Inner) -> Option<crate::limits::SemaphoreGuard<'_>> {
    inner
        .admission
        .try_acquire_for(Duration::from_millis(inner.config.admission_timeout_ms))
}

fn busy_response(id: u64, inner: &Inner) -> String {
    let message = format!(
        "server at capacity: {} evaluations already in flight; retry later",
        inner.config.max_inflight
    );
    let diagnostic = Diagnostic::new(message, None, "");
    protocol::error_response(Some(id), code::BUSY, diagnostic.to_json())
}

fn protocol_error_response(id: Option<u64>, message: &str) -> String {
    let diagnostic = Diagnostic::new(message, None, "");
    protocol::error_response(id, code::PROTOCOL, diagnostic.to_json())
}

fn engine_error_response(id: u64, error: &ncql_engine::Error, source: &str) -> String {
    protocol::error_response(
        Some(id),
        error_code(error),
        error.diagnostic(source).to_json(),
    )
}

fn outcome_body(outcome: &Outcome, ty: &Type) -> Json {
    Json::Obj(vec![
        ("value".to_string(), protocol::value_to_json(&outcome.value)),
        ("printed".to_string(), Json::str(outcome.value.to_string())),
        ("type".to_string(), Json::str(ty.to_string())),
        ("stats".to_string(), stats_json(outcome)),
        (
            "backend".to_string(),
            Json::str(outcome.backend.to_string()),
        ),
    ])
}

fn stats_json(outcome: &Outcome) -> Json {
    let s = &outcome.stats;
    Json::Obj(vec![
        ("work".to_string(), Json::num(s.work)),
        ("span".to_string(), Json::num(s.span)),
        ("combiner_calls".to_string(), Json::num(s.combiner_calls)),
        ("step_calls".to_string(), Json::num(s.step_calls)),
        ("ext_calls".to_string(), Json::num(s.ext_calls)),
        (
            "sequential_rounds".to_string(),
            Json::num(s.sequential_rounds),
        ),
        ("max_set_size".to_string(), Json::num(s.max_set_size as u64)),
    ])
}

/// The `stats` response body: cache metrics, live pool workers, the
/// prepared-plan count, and the process-wide columnar/kernel observability
/// counters — the same numbers the REPL's `:stats` command prints.
pub fn stats_body(session: &Session) -> Json {
    let metrics = session.cache_metrics();
    let columnar = ncql_engine::columnar_stats();
    let kernels = ncql_engine::kernel_stats();
    Json::Obj(vec![
        (
            "cache".to_string(),
            Json::Obj(vec![
                ("hits".to_string(), Json::num(metrics.hits)),
                ("misses".to_string(), Json::num(metrics.misses)),
                ("evictions".to_string(), Json::num(metrics.evictions)),
                ("len".to_string(), Json::num(metrics.len as u64)),
                ("capacity".to_string(), Json::num(metrics.capacity as u64)),
            ]),
        ),
        (
            "pool_workers".to_string(),
            Json::num(ncql_pram::live_pool_workers() as u64),
        ),
        ("prepared_plans".to_string(), Json::num(metrics.len as u64)),
        (
            "backend".to_string(),
            Json::str(session.backend().to_string()),
        ),
        (
            "columnar".to_string(),
            Json::Obj(vec![
                ("promotions".to_string(), Json::num(columnar.promotions)),
                ("demotions".to_string(), Json::num(columnar.demotions)),
            ]),
        ),
        (
            "kernels".to_string(),
            Json::Obj(vec![
                ("compiles".to_string(), Json::num(kernels.compiles)),
                ("fallbacks".to_string(), Json::num(kernels.fallbacks)),
                ("ext_hits".to_string(), Json::num(kernels.ext_hits)),
                ("rows".to_string(), Json::num(kernels.rows)),
            ]),
        ),
    ])
}
