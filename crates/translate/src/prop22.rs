//! Proposition 2.2: over flat relations, `bdcr` together with the relational
//! algebra can express (unbounded) `dcr`, and similarly `bsri` expresses `sri`.
//!
//! The point of the proposition is that the explicit bound required over complex
//! objects is *unnecessary* over flat relations: every intermediate value of a
//! flat-relation-valued recursion is a set of tuples over the active domain of
//! the input, so the relational algebra can build a bounding set (a cartesian
//! power of the active domain) ahead of the recursion and thread it through
//! `bdcr` without changing the result.
//!
//! The builders here take the *universe* (active domain) expression explicitly —
//! in practice `Π₁(r) ∪ Π₂(r) ∪ …` over the input relations — and assemble the
//! bound for unary (`{D}`) and binary (`{D × D}`) result types.

use ncql_core::derived;
use ncql_core::expr::{fresh_var, Expr};
use ncql_object::Type;

/// Build the bound for a unary-relation-valued recursion: the universe itself.
pub fn unary_bound(universe: Expr) -> Expr {
    universe
}

/// Build the bound for a binary-relation-valued recursion: `universe × universe`.
pub fn binary_bound(universe: Expr) -> Expr {
    let u = fresh_var("bduniv");
    Expr::let_in(
        u.clone(),
        universe,
        derived::cartesian_product(Type::Base, Type::Base, Expr::var(u.clone()), Expr::var(u)),
    )
}

/// Express `dcr(e, f, u)(arg)` with a **unary**-relation result type `{D}`
/// through `bdcr`, bounding by the given universe.
pub fn dcr_via_bdcr_unary(e: Expr, f: Expr, u: Expr, arg: Expr, universe: Expr) -> Expr {
    Expr::bdcr(e, f, u, unary_bound(universe), arg)
}

/// Express `dcr(e, f, u)(arg)` with a **binary**-relation result type `{D × D}`
/// through `bdcr`, bounding by `universe × universe`.
pub fn dcr_via_bdcr_binary(e: Expr, f: Expr, u: Expr, arg: Expr, universe: Expr) -> Expr {
    Expr::bdcr(e, f, u, binary_bound(universe), arg)
}

/// Express `sri(e, i)(arg)` with a binary-relation result through `bsri`.
pub fn sri_via_bsri_binary(e: Expr, i: Expr, arg: Expr, universe: Expr) -> Expr {
    Expr::bsri(e, i, binary_bound(universe), arg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::eval::eval_closed;
    use ncql_core::typecheck::typecheck_closed;
    use ncql_object::Value;

    /// The §1 transitive-closure dcr, in both unbounded and bounded form, over a
    /// small graph: Proposition 2.2 says they agree.
    #[test]
    fn transitive_closure_bounded_equals_unbounded() {
        let pairs = vec![(0u64, 1u64), (1, 2), (2, 3), (3, 0), (5, 6)];
        let r = Expr::constant(Value::relation_from_pairs(pairs.clone()));
        let rel_ty = Type::binary_relation();
        let f = Expr::lam("y", Type::Base, r.clone());
        let u = Expr::lam2(
            "r1",
            "r2",
            Type::prod(rel_ty.clone(), rel_ty.clone()),
            Expr::union(
                Expr::union(Expr::var("r1"), Expr::var("r2")),
                derived::compose(
                    Type::Base,
                    Type::Base,
                    Type::Base,
                    Expr::var("r1"),
                    Expr::var("r2"),
                ),
            ),
        );
        let vertices = Expr::union(
            derived::project1(Type::Base, Type::Base, r.clone()),
            derived::project2(Type::Base, Type::Base, r.clone()),
        );
        let direct = Expr::dcr(
            Expr::empty(Type::prod(Type::Base, Type::Base)),
            f.clone(),
            u.clone(),
            vertices.clone(),
        );
        let bounded = dcr_via_bdcr_binary(
            Expr::empty(Type::prod(Type::Base, Type::Base)),
            f,
            u,
            vertices.clone(),
            vertices,
        );
        assert!(typecheck_closed(&bounded).is_ok());
        assert_eq!(
            eval_closed(&direct).unwrap(),
            eval_closed(&bounded).unwrap()
        );
    }

    #[test]
    fn unary_bounded_recursion_agrees() {
        // dcr computing the union of singletons (identity on sets), bounded by the
        // set itself.
        let input = Expr::constant(Value::atom_set(vec![2, 4, 6]));
        let f = Expr::lam("y", Type::Base, Expr::singleton(Expr::var("y")));
        let u = derived::union_combiner(Type::Base);
        let direct = Expr::dcr(Expr::empty(Type::Base), f.clone(), u.clone(), input.clone());
        let bounded =
            dcr_via_bdcr_unary(Expr::empty(Type::Base), f, u, input.clone(), input.clone());
        assert_eq!(
            eval_closed(&direct).unwrap(),
            eval_closed(&bounded).unwrap()
        );
    }

    #[test]
    fn bounded_sri_agrees_with_sri() {
        let rel_elem = Type::prod(Type::Base, Type::Base);
        let input = Expr::constant(Value::atom_set(vec![1, 2, 3]));
        // sri building the diagonal relation {(v, v)}.
        let i = Expr::lam2(
            "x",
            "acc",
            Type::prod(Type::Base, Type::set(rel_elem.clone())),
            Expr::union(
                Expr::singleton(Expr::pair(Expr::var("x"), Expr::var("x"))),
                Expr::var("acc"),
            ),
        );
        let direct = Expr::sri(Expr::empty(rel_elem.clone()), i.clone(), input.clone());
        let bounded = sri_via_bsri_binary(Expr::empty(rel_elem), i, input.clone(), input);
        assert_eq!(
            eval_closed(&direct).unwrap(),
            eval_closed(&bounded).unwrap()
        );
        assert_eq!(
            eval_closed(&bounded).unwrap(),
            Value::relation_from_pairs(vec![(1, 1), (2, 2), (3, 3)])
        );
    }

    #[test]
    fn binary_bound_is_the_square_of_the_universe() {
        let b = binary_bound(Expr::constant(Value::atom_set(vec![1, 2])));
        assert_eq!(
            eval_closed(&b).unwrap(),
            Value::relation_from_pairs(vec![(1, 1), (1, 2), (2, 1), (2, 2)])
        );
    }
}
