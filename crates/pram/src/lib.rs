//! PRAM-style parallel execution substrate.
//!
//! The paper's complexity class NC is defined via uniform circuit families and is
//! equivalent to polylogarithmic time on a CRCW PRAM with polynomially many
//! processors (§4, citing Stockmeyer & Vishkin). We obviously cannot reproduce a
//! PRAM on stock hardware; what this crate reproduces is the *shape* of the
//! claim: the divide-and-conquer constructs of the language (`ext` fan-out and
//! the `dcr` combining tree) expose their parallelism to a real thread pool, so
//! the critical path measured by the cost model in `ncql-core` translates into
//! wall-clock speedup, while the element-by-element recursion `sri` has a serial
//! chain that no number of threads can shorten.
//!
//! The executor evaluates the *hot* construct (the combining tree / the fan-out)
//! in parallel with one sequential [`Evaluator`] per worker; the combiner and
//! element functions themselves are ordinary language expressions.

use ncql_core::error::EvalError;
use ncql_core::eval::{EvalConfig, Evaluator};
use ncql_core::expr::Expr;
use ncql_core::EvalResult;
use ncql_object::Value;
use std::thread;

/// Configuration of the parallel executor.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// Number of worker threads (defaults to the number of available cores).
    pub threads: usize,
    /// Below this many elements the executor stays sequential (thread start-up
    /// costs more than it saves).
    pub sequential_cutoff: usize,
    /// Evaluator configuration used by every worker.
    pub eval: EvalConfig,
}

impl Default for ParallelConfig {
    fn default() -> ParallelConfig {
        ParallelConfig {
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            sequential_cutoff: 8,
            eval: EvalConfig::default(),
        }
    }
}

/// A parallel executor for the divide-and-conquer constructs of the language.
#[derive(Debug, Default)]
pub struct ParallelExecutor {
    config: ParallelConfig,
}

/// Fold a scoped worker's join result into the evaluation result, turning a
/// worker panic into an `EvalError` instead of unwinding through the scope.
fn join_worker(
    joined: std::thread::Result<EvalResult<Vec<Value>>>,
) -> EvalResult<Vec<Value>> {
    joined.unwrap_or_else(|_| Err(EvalError::Stuck("a parallel worker panicked".to_string())))
}

/// Apply a unary function expression to a value using a fresh evaluator.
fn apply1(config: &EvalConfig, f: &Expr, arg: &Value) -> EvalResult<Value> {
    let mut ev = Evaluator::new(config.clone());
    let call = Expr::app(f.clone(), Expr::var("%par_x"));
    ev.eval_with_bindings(&call, &[("%par_x".to_string(), arg.clone())])
}

/// Apply a binary (pair-taking) function expression to two values.
fn apply2(config: &EvalConfig, u: &Expr, a: &Value, b: &Value) -> EvalResult<Value> {
    let mut ev = Evaluator::new(config.clone());
    let call = Expr::app(
        u.clone(),
        Expr::pair(Expr::var("%par_a"), Expr::var("%par_b")),
    );
    ev.eval_with_bindings(
        &call,
        &[
            ("%par_a".to_string(), a.clone()),
            ("%par_b".to_string(), b.clone()),
        ],
    )
}

impl ParallelExecutor {
    /// Create an executor with the given configuration.
    pub fn new(config: ParallelConfig) -> ParallelExecutor {
        ParallelExecutor { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ParallelConfig {
        &self.config
    }

    /// Parallel map: apply the function expression `f` to every element of the
    /// slice, preserving order. Errors from any worker abort the whole map.
    fn par_map(&self, f: &Expr, elements: &[Value]) -> EvalResult<Vec<Value>> {
        let n = elements.len();
        if n == 0 {
            return Ok(Vec::new());
        }
        let threads = self.config.threads.max(1);
        if n <= self.config.sequential_cutoff || threads == 1 {
            return elements
                .iter()
                .map(|x| apply1(&self.config.eval, f, x))
                .collect();
        }
        let chunk_size = n.div_ceil(threads);
        let per_worker: Vec<EvalResult<Vec<Value>>> = thread::scope(|scope| {
            let handles: Vec<_> = elements
                .chunks(chunk_size)
                .map(|chunk| {
                    let eval_config = &self.config.eval;
                    scope.spawn(move || {
                        chunk.iter().map(|x| apply1(eval_config, f, x)).collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| join_worker(h.join())).collect()
        });
        let mut out = Vec::with_capacity(n);
        for worker in per_worker {
            out.extend(worker?);
        }
        Ok(out)
    }

    /// One parallel round of pairwise combining: `u(v₀, v₁), u(v₂, v₃), …`
    /// (an odd tail element is passed through unchanged).
    fn par_combine_round(&self, u: &Expr, level: &[Value]) -> EvalResult<Vec<Value>> {
        let pairs: Vec<&[Value]> = level.chunks(2).collect();
        let n = pairs.len();
        let threads = self.config.threads.max(1);
        if n <= self.config.sequential_cutoff || threads == 1 {
            return pairs
                .iter()
                .map(|chunk| match chunk {
                    [a, b] => apply2(&self.config.eval, u, a, b),
                    [a] => Ok(a.clone()),
                    _ => unreachable!("chunks(2)"),
                })
                .collect();
        }
        let chunk_size = n.div_ceil(threads);
        let per_worker: Vec<EvalResult<Vec<Value>>> = thread::scope(|scope| {
            let handles: Vec<_> = pairs
                .chunks(chunk_size)
                .map(|work| {
                    let eval_config = &self.config.eval;
                    scope.spawn(move || {
                        work.iter()
                            .map(|chunk| match chunk {
                                [a, b] => apply2(eval_config, u, a, b),
                                [a] => Ok(a.clone()),
                                _ => unreachable!("chunks(2)"),
                            })
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| join_worker(h.join())).collect()
        });
        let mut out = Vec::with_capacity(n);
        for worker in per_worker {
            out.extend(worker?);
        }
        Ok(out)
    }

    /// Evaluate `dcr(e, f, u)(x)` with a parallel map for `f` and parallel
    /// balanced-tree rounds for `u` — the thread-pool realization of the PRAM
    /// evaluation sketched in §1/§7.
    pub fn par_dcr(&self, e: &Expr, f: &Expr, u: &Expr, x: &Value) -> EvalResult<Value> {
        let set = x
            .as_set()
            .ok_or_else(|| EvalError::Stuck(format!("dcr argument is not a set: {x}")))?;
        if set.is_empty() {
            return Evaluator::new(self.config.eval.clone()).eval_closed(e);
        }
        let elements: Vec<Value> = set.iter().cloned().collect();
        let mut level = self.par_map(f, &elements)?;
        while level.len() > 1 {
            level = self.par_combine_round(u, &level)?;
        }
        Ok(level.pop().expect("non-empty input"))
    }

    /// Evaluate `ext(f)(x)` with a parallel map and a final union.
    pub fn par_ext(&self, f: &Expr, x: &Value) -> EvalResult<Value> {
        let set = x
            .as_set()
            .ok_or_else(|| EvalError::Stuck(format!("ext argument is not a set: {x}")))?;
        let elements: Vec<Value> = set.iter().cloned().collect();
        let mapped = self.par_map(f, &elements)?;
        let mut out = Vec::new();
        for v in mapped {
            match v {
                Value::Set(s) => out.extend(s.into_vec()),
                other => {
                    return Err(EvalError::Stuck(format!(
                        "ext function returned a non-set {other}"
                    )))
                }
            }
        }
        Ok(Value::set_from(out))
    }

    /// Evaluate the element-by-element recursion `esr(e, i)(x)` sequentially —
    /// the serial chain the paper contrasts with `dcr`; provided so benches can
    /// compare wall-clock times under identical plumbing.
    pub fn seq_fold(&self, e: &Expr, i: &Expr, x: &Value) -> EvalResult<Value> {
        let set = x
            .as_set()
            .ok_or_else(|| EvalError::Stuck(format!("fold argument is not a set: {x}")))?;
        let mut acc = Evaluator::new(self.config.eval.clone()).eval_closed(e)?;
        for elem in set.iter() {
            acc = apply2(&self.config.eval, i, elem, &acc)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::derived;
    use ncql_core::eval::eval_closed;
    use ncql_object::Type;

    fn executor(threads: usize) -> ParallelExecutor {
        ParallelExecutor::new(ParallelConfig {
            threads,
            sequential_cutoff: 2,
            eval: EvalConfig::default(),
        })
    }

    fn xor_u() -> Expr {
        Expr::lam2(
            "a",
            "b",
            Type::prod(Type::Bool, Type::Bool),
            derived::xor(Expr::var("a"), Expr::var("b")),
        )
    }

    #[test]
    fn par_dcr_matches_sequential_parity() {
        let f = Expr::lam("y", Type::Base, Expr::Bool(true));
        for threads in [1, 2, 4] {
            let ex = executor(threads);
            for n in [0u64, 1, 5, 33, 64] {
                let x = Value::atom_set(0..n);
                let par = ex.par_dcr(&Expr::Bool(false), &f, &xor_u(), &x).unwrap();
                let seq = eval_closed(&Expr::dcr(
                    Expr::Bool(false),
                    f.clone(),
                    xor_u(),
                    Expr::Const(x),
                ))
                .unwrap();
                assert_eq!(par, seq, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn par_dcr_matches_sequential_transitive_closure() {
        let r = Value::relation_from_pairs((0..12u64).map(|i| (i, i + 1)));
        let rel_ty = Type::binary_relation();
        let f = Expr::lam("y", Type::Base, Expr::Const(r.clone()));
        let u = Expr::lam2(
            "r1",
            "r2",
            Type::prod(rel_ty.clone(), rel_ty),
            Expr::union(
                Expr::union(Expr::var("r1"), Expr::var("r2")),
                derived::compose(
                    Type::Base,
                    Type::Base,
                    Type::Base,
                    Expr::var("r1"),
                    Expr::var("r2"),
                ),
            ),
        );
        let vertices = Value::atom_set(0..13);
        let ex = executor(4);
        let par = ex
            .par_dcr(&Expr::Empty(Type::prod(Type::Base, Type::Base)), &f, &u, &vertices)
            .unwrap();
        let seq = eval_closed(&Expr::dcr(
            Expr::Empty(Type::prod(Type::Base, Type::Base)),
            f,
            u,
            Expr::Const(vertices),
        ))
        .unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn par_ext_matches_sequential_ext() {
        let f = Expr::lam(
            "x",
            Type::Base,
            Expr::union(Expr::singleton(Expr::var("x")), Expr::singleton(Expr::atom(99))),
        );
        let x = Value::atom_set(0..40);
        let ex = executor(3);
        let par = ex.par_ext(&f, &x).unwrap();
        let seq = eval_closed(&Expr::ext(f, Expr::Const(x))).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn seq_fold_computes_esr() {
        let i = Expr::lam2(
            "x",
            "acc",
            Type::prod(Type::Base, Type::set(Type::Base)),
            Expr::union(Expr::singleton(Expr::var("x")), Expr::var("acc")),
        );
        let x = Value::atom_set(vec![5, 1, 9]);
        let ex = executor(2);
        assert_eq!(
            ex.seq_fold(&Expr::Empty(Type::Base), &i, &x).unwrap(),
            Value::atom_set(vec![1, 5, 9])
        );
    }

    #[test]
    fn errors_propagate_from_workers() {
        // f projects a pair out of an atom: every element application gets stuck.
        let f = Expr::lam("y", Type::Base, Expr::proj1(Expr::var("y")));
        let x = Value::atom_set(0..32);
        let ex = executor(4);
        assert!(ex.par_ext(&f, &x).is_err());
    }

    #[test]
    fn empty_input_returns_the_identity() {
        let f = Expr::lam("y", Type::Base, Expr::Bool(true));
        let ex = executor(4);
        let out = ex
            .par_dcr(&Expr::Bool(false), &f, &xor_u(), &Value::empty_set())
            .unwrap();
        assert_eq!(out, Value::Bool(false));
    }
}
