//! The wire protocol: newline-delimited JSON requests and responses.
//!
//! # Grammar
//!
//! One request per line, one response line per request, ids echoed back:
//!
//! ```text
//! request  := { "op": op, "id": uint, ...op-fields } "\n"
//! op       := "prepare" | "execute" | "execute_with_bindings" | "stats" | "close"
//!
//! prepare  fields: "text": string, "schema"?: [ {"name": string, "type": string} ]
//! execute  fields: prepare's fields plus
//!                  "bindings"?:     [ {"name": string, "value": value} ]
//!                  "deadline_ms"?:  uint   (capped by the server's maximum)
//!                  "max_work"?:     uint   (capped by the session's limit)
//!                  "max_set_size"?: uint   (capped by the session's limit)
//! value    := {"atom": uint} | {"bool": bool} | {"nat": uint} | {"unit": true}
//!           | {"pair": [value, value]} | {"set": [value...]}
//!
//! response := { "id": uint|null, "ok": ... } "\n"
//!           | { "id": uint|null, "error": { "code": code, "diagnostic": diag } } "\n"
//! code     := "parse" | "type" | "eval" | "object" | "lint"   (engine errors)
//!           | "deadline" | "work_budget"                      (per-request isolation)
//!           | "busy"                                          (admission control)
//!           | "protocol"                                      (malformed envelope)
//! diag     := { "severity": string, "message": string,
//!               "span": {"start": uint, "end": uint} | null,
//!               "line": uint|null, "column": uint|null, "snippet": string|null }
//! ```
//!
//! The `diag` object is exactly the engine's
//! [`Diagnostic::to_json`](ncql_engine::Diagnostic::to_json) — the same
//! structured form the REPL's `--json` flag prints — so every span, line,
//! column and snippet a caret rendering would show arrives machine-readable.
//! Result values are carried in the object layer's canonical printed form
//! (`"{a1, a2}"`, `"42"`, `"(true, a7)"`), which is what the sorted,
//! duplicate-free [`Value`] display guarantees to be deterministic.

use crate::json::Json;
use ncql_core::EvalError;
use ncql_engine::Error;
use ncql_object::{Type, Value};

/// The error-code strings of the wire protocol.
pub mod code {
    /// Lex/parse failure of the query text.
    pub const PARSE: &str = "parse";
    /// Typecheck failure.
    pub const TYPE: &str = "type";
    /// Evaluation failure other than the two isolation codes below.
    pub const EVAL: &str = "eval";
    /// Object-model failure (binding validation, value typing).
    pub const OBJECT: &str = "object";
    /// Deny-level lint rejection at prepare.
    pub const LINT: &str = "lint";
    /// The request's wall-clock deadline expired and the evaluation was
    /// cooperatively cancelled.
    pub const DEADLINE: &str = "deadline";
    /// The request's work budget (or the session's) was exhausted.
    pub const WORK_BUDGET: &str = "work_budget";
    /// Admission control refused the request: too many evaluations already in
    /// flight. Retry later; nothing was evaluated.
    pub const BUSY: &str = "busy";
    /// The request line itself was malformed (bad JSON, unknown op, missing
    /// id, oversized line, invalid schema/binding encoding).
    pub const PROTOCOL: &str = "protocol";
}

/// The wire error code for an engine error: the five engine variants map to
/// their own names, except that the two per-request isolation failures get
/// dedicated codes — a work-budget trip is [`code::WORK_BUDGET`] and a
/// cancelled (deadline-expired) evaluation is [`code::DEADLINE`] — so clients
/// can distinguish "the query is wrong" from "the query was too expensive for
/// this request's budget".
pub fn error_code(error: &Error) -> &'static str {
    match error {
        Error::Parse(_) => code::PARSE,
        Error::Type(_) => code::TYPE,
        Error::Object { .. } => code::OBJECT,
        Error::Lint { .. } => code::LINT,
        Error::Eval(EvalError::WorkLimitExceeded { .. }) => code::WORK_BUDGET,
        Error::Eval(EvalError::Cancelled { .. }) => code::DEADLINE,
        Error::Eval(_) => code::EVAL,
    }
}

/// A parsed request envelope.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run the front end and report what it learned; nothing is evaluated.
    Prepare {
        /// Echo id.
        id: u64,
        /// The query text.
        text: String,
        /// Declared free variables, already type-parsed.
        schema: Vec<(String, Type)>,
    },
    /// Prepare (served by the plan cache after the first time) and evaluate.
    /// `execute` and `execute_with_bindings` are one op on the wire — the
    /// latter is the same envelope with a non-empty `bindings` array.
    Execute {
        /// Echo id.
        id: u64,
        /// The query text.
        text: String,
        /// Declared free variables.
        schema: Vec<(String, Type)>,
        /// Values for the declared free variables.
        bindings: Vec<(String, Value)>,
        /// Requested wall-clock deadline (ms); the server caps it.
        deadline_ms: Option<u64>,
        /// Requested work budget; the session's limit caps it.
        max_work: Option<u64>,
        /// Requested intermediate-set cap; the session's limit caps it.
        max_set_size: Option<usize>,
    },
    /// Session observability: cache metrics, pool workers, plan count.
    Stats {
        /// Echo id.
        id: u64,
    },
    /// Close this connection after acknowledging.
    Close {
        /// Echo id.
        id: u64,
    },
}

impl Request {
    /// The request's echo id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Prepare { id, .. }
            | Request::Execute { id, .. }
            | Request::Stats { id }
            | Request::Close { id } => *id,
        }
    }
}

/// A protocol-level failure: the envelope could not be understood. Carries
/// the echo id when one was readable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// The request's id, when the envelope got far enough to read one.
    pub id: Option<u64>,
    /// What was wrong.
    pub message: String,
}

impl ProtocolError {
    fn new(id: Option<u64>, message: impl Into<String>) -> ProtocolError {
        ProtocolError {
            id,
            message: message.into(),
        }
    }
}

/// Encode a [`Value`] as wire JSON (the `value` production of the grammar).
pub fn value_to_json(value: &Value) -> Json {
    match value {
        Value::Atom(a) => Json::Obj(vec![("atom".to_string(), Json::num(*a))]),
        Value::Bool(b) => Json::Obj(vec![("bool".to_string(), Json::Bool(*b))]),
        Value::Unit => Json::Obj(vec![("unit".to_string(), Json::Bool(true))]),
        Value::Nat(n) => Json::Obj(vec![("nat".to_string(), Json::num(*n))]),
        Value::Pair(a, b) => Json::Obj(vec![(
            "pair".to_string(),
            Json::Arr(vec![value_to_json(a), value_to_json(b)]),
        )]),
        Value::Set(s) => Json::Obj(vec![(
            "set".to_string(),
            Json::Arr(s.iter().map(value_to_json).collect()),
        )]),
    }
}

/// Decode a wire-JSON value (the inverse of [`value_to_json`]). Set elements
/// are canonicalized (sorted, deduplicated) by construction.
pub fn value_from_json(json: &Json) -> Result<Value, String> {
    let fail = || format!("invalid value encoding: {json}");
    match json {
        Json::Obj(_) => {
            if let Some(n) = json.get("atom") {
                return n.as_u64().map(Value::Atom).ok_or_else(fail);
            }
            if let Some(b) = json.get("bool") {
                return b.as_bool().map(Value::Bool).ok_or_else(fail);
            }
            if json.get("unit").is_some() {
                return Ok(Value::Unit);
            }
            if let Some(n) = json.get("nat") {
                return n.as_u64().map(Value::Nat).ok_or_else(fail);
            }
            if let Some(p) = json.get("pair") {
                let items = p.as_arr().ok_or_else(fail)?;
                if items.len() != 2 {
                    return Err(fail());
                }
                return Ok(Value::pair(
                    value_from_json(&items[0])?,
                    value_from_json(&items[1])?,
                ));
            }
            if let Some(s) = json.get("set") {
                let items = s.as_arr().ok_or_else(fail)?;
                let elems: Result<Vec<Value>, String> = items.iter().map(value_from_json).collect();
                return Ok(Value::set_from(elems?));
            }
            Err(fail())
        }
        _ => Err(fail()),
    }
}

/// Parse one request line (already length-checked by the connection loop).
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    let json = crate::json::parse(line)
        .map_err(|e| ProtocolError::new(None, format!("request is not valid JSON: {e}")))?;
    // The id is extracted first so even a bad envelope echoes it back.
    let id = json.get("id").and_then(Json::as_u64);
    let op = json
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| ProtocolError::new(id, "missing or non-string `op`"))?
        .to_string();
    let id = id.ok_or_else(|| ProtocolError::new(None, "missing or non-integer `id`"))?;

    let text = |field_required: bool| -> Result<String, ProtocolError> {
        match json.get("text").and_then(Json::as_str) {
            Some(t) => Ok(t.to_string()),
            None if field_required => Err(ProtocolError::new(id.into(), "missing `text`")),
            None => Ok(String::new()),
        }
    };
    let schema = || -> Result<Vec<(String, Type)>, ProtocolError> {
        let mut out = Vec::new();
        if let Some(entries) = json.get("schema") {
            let entries = entries
                .as_arr()
                .ok_or_else(|| ProtocolError::new(id.into(), "`schema` must be an array"))?;
            for entry in entries {
                let name = entry
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtocolError::new(id.into(), "schema entry missing `name`"))?;
                let ty_text = entry
                    .get("type")
                    .and_then(Json::as_str)
                    .ok_or_else(|| ProtocolError::new(id.into(), "schema entry missing `type`"))?;
                let ty = ncql_surface::parse_type(ty_text).map_err(|e| {
                    ProtocolError::new(id.into(), format!("invalid schema type `{ty_text}`: {e}"))
                })?;
                out.push((name.to_string(), ty));
            }
        }
        Ok(out)
    };

    match op.as_str() {
        "prepare" => Ok(Request::Prepare {
            id,
            text: text(true)?,
            schema: schema()?,
        }),
        "execute" | "execute_with_bindings" => {
            let mut bindings = Vec::new();
            if let Some(entries) = json.get("bindings") {
                let entries = entries
                    .as_arr()
                    .ok_or_else(|| ProtocolError::new(id.into(), "`bindings` must be an array"))?;
                for entry in entries {
                    let name = entry.get("name").and_then(Json::as_str).ok_or_else(|| {
                        ProtocolError::new(id.into(), "binding entry missing `name`")
                    })?;
                    let value = entry.get("value").ok_or_else(|| {
                        ProtocolError::new(id.into(), "binding entry missing `value`")
                    })?;
                    let value =
                        value_from_json(value).map_err(|e| ProtocolError::new(id.into(), e))?;
                    bindings.push((name.to_string(), value));
                }
            }
            let uint_field = |name: &str| -> Result<Option<u64>, ProtocolError> {
                match json.get(name) {
                    None => Ok(None),
                    Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                        ProtocolError::new(
                            id.into(),
                            format!("`{name}` must be a non-negative integer"),
                        )
                    }),
                }
            };
            Ok(Request::Execute {
                id,
                text: text(true)?,
                schema: schema()?,
                bindings,
                deadline_ms: uint_field("deadline_ms")?,
                max_work: uint_field("max_work")?,
                max_set_size: uint_field("max_set_size")?.map(|n| n as usize),
            })
        }
        "stats" => Ok(Request::Stats { id }),
        "close" => Ok(Request::Close { id }),
        other => Err(ProtocolError::new(
            id.into(),
            format!("unknown op `{other}`"),
        )),
    }
}

/// An `ok` response envelope around `body`.
pub fn ok_response(id: u64, body: Json) -> String {
    Json::Obj(vec![
        ("id".to_string(), Json::num(id)),
        ("ok".to_string(), body),
    ])
    .to_string()
}

/// An `error` response envelope: the code plus the structured diagnostic
/// (pre-serialized by the engine's `Diagnostic::to_json`).
pub fn error_response(id: Option<u64>, code: &str, diagnostic_json: String) -> String {
    Json::Obj(vec![
        ("id".to_string(), id.map(Json::num).unwrap_or(Json::Null)),
        (
            "error".to_string(),
            Json::Obj(vec![
                ("code".to_string(), Json::str(code)),
                ("diagnostic".to_string(), Json::Raw(diagnostic_json)),
            ]),
        ),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_the_wire_encoding() {
        let values = [
            Value::Atom(7),
            Value::Bool(false),
            Value::Unit,
            Value::Nat(123456),
            Value::pair(Value::Atom(1), Value::Bool(true)),
            Value::set_from([
                Value::pair(Value::Atom(1), Value::Atom(2)),
                Value::pair(Value::Atom(2), Value::Atom(3)),
            ]),
            Value::empty_set(),
        ];
        for v in values {
            let json = value_to_json(&v);
            let back = value_from_json(&crate::json::parse(&json.to_string()).unwrap()).unwrap();
            assert_eq!(v, back, "{json}");
        }
    }

    #[test]
    fn counters_beyond_the_f64_boundary_survive_the_wire() {
        // Work/span statistics and `nat` payloads are u64s; 2^53 ± 1 is where
        // a float-encoded wire would silently collapse adjacent values.
        for n in [(1u64 << 53) - 1, 1u64 << 53, (1u64 << 53) + 1, u64::MAX] {
            let v = Value::Nat(n);
            let json = value_to_json(&v);
            let back = value_from_json(&crate::json::parse(&json.to_string()).unwrap()).unwrap();
            assert_eq!(v, back, "{json}");
        }
        let stats = Json::Obj(vec![
            ("work".to_string(), Json::num((1 << 53) + 1)),
            ("span".to_string(), Json::num(17)),
        ]);
        let reparsed = crate::json::parse(&stats.to_string()).unwrap();
        assert_eq!(
            reparsed.get("work").unwrap().as_u64(),
            Some((1 << 53) + 1),
            "lossless work counter"
        );
    }

    #[test]
    fn set_encodings_canonicalize() {
        // Duplicates and out-of-order elements are legal on the wire; the
        // decoded set is canonical regardless.
        let json = crate::json::parse(r#"{"set":[{"atom":9},{"atom":1},{"atom":9}]}"#).unwrap();
        let v = value_from_json(&json).unwrap();
        assert_eq!(v, Value::atom_set([1, 9]));
    }

    #[test]
    fn requests_parse_with_schemas_and_bindings() {
        let line = r#"{"op":"execute_with_bindings","id":3,"text":"card(s)","schema":[{"name":"s","type":"{atom}"}],"bindings":[{"name":"s","value":{"set":[{"atom":1},{"atom":2}]}}],"deadline_ms":50,"max_work":1000}"#;
        match parse_request(line).unwrap() {
            Request::Execute {
                id,
                text,
                schema,
                bindings,
                deadline_ms,
                max_work,
                max_set_size,
            } => {
                assert_eq!(id, 3);
                assert_eq!(text, "card(s)");
                assert_eq!(schema.len(), 1);
                assert_eq!(schema[0].0, "s");
                assert_eq!(schema[0].1.to_string(), "{atom}");
                assert_eq!(bindings, vec![("s".to_string(), Value::atom_set([1, 2]))]);
                assert_eq!(deadline_ms, Some(50));
                assert_eq!(max_work, Some(1000));
                assert_eq!(max_set_size, None);
            }
            other => panic!("wrong parse: {other:?}"),
        }
    }

    #[test]
    fn envelope_failures_carry_the_id_when_readable() {
        let no_id = parse_request(r#"{"op":"execute","text":"1"}"#).unwrap_err();
        assert_eq!(no_id.id, None);
        let bad_op = parse_request(r#"{"op":"evaluate","id":9}"#).unwrap_err();
        assert_eq!(bad_op.id, Some(9));
        assert!(bad_op.message.contains("unknown op"));
        let bad_schema = parse_request(
            r#"{"op":"prepare","id":4,"text":"s","schema":[{"name":"s","type":"{"}]}"#,
        )
        .unwrap_err();
        assert_eq!(bad_schema.id, Some(4));
        assert!(bad_schema.message.contains("invalid schema type"));
    }

    #[test]
    fn isolation_failures_get_their_own_codes() {
        use ncql_core::EvalError;
        assert_eq!(
            error_code(&Error::Eval(EvalError::work_limit_exceeded(5))),
            code::WORK_BUDGET
        );
        assert_eq!(
            error_code(&Error::Eval(EvalError::cancelled(
                "deadline of 5ms exceeded"
            ))),
            code::DEADLINE
        );
        assert_eq!(
            error_code(&Error::Eval(EvalError::stuck("pi1 of non-pair"))),
            code::EVAL
        );
    }
}
