//! E11 — Example 7.2: the iteration-count gadgets.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ncql_core::eval::eval_closed;
use ncql_core::expr::Expr;
use ncql_object::Value;
use ncql_queries::iterate;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_iteration_nesting");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    for n in [16u64, 64] {
        let input = Expr::constant(Value::atom_set(0..n));
        group.bench_with_input(BenchmarkId::new("count_n", n), &n, |b, _| {
            b.iter(|| eval_closed(&iterate::count_n(input.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("count_log_n", n), &n, |b, _| {
            b.iter(|| eval_closed(&iterate::count_log_n(input.clone())).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("count_log_squared_n", n), &n, |b, _| {
            b.iter(|| eval_closed(&iterate::count_log_squared_n(input.clone())).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
