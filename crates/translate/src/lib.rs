//! Simulation translations between the recursion forms and the iterators.
//!
//! The paper's expressiveness results rest on a small number of inter-simulation
//! lemmas; this crate makes each of them executable so that the experiments can
//! check the *equivalences* and measure the *overheads*:
//!
//! * [`prop21`] — Proposition 2.1: `sri` can express `sru`, `esr` can express
//!   `dcr`, and `sri` can express `esr`, all with at most polynomial overhead.
//!   These are **source-to-source translations** on expressions.
//! * [`prop22`] — Proposition 2.2: over flat relations, `bdcr` together with the
//!   relational algebra expresses unbounded `dcr` (the bound is assembled from
//!   the active domain). Also a source-to-source translation.
//! * [`prop73`] — Proposition 7.3: over *ordered* databases, `dcr` and `log-loop`
//!   have the same expressive power. The operational content — `dcr` can be
//!   computed in exactly `⌈log(|x|+1)⌉` rounds of order-driven pairwise
//!   combining, and `log-loop` can be driven by a divide-and-conquer pass that
//!   carries `(cardinality, iterate table)` pairs — is realized as two
//!   **instrumented evaluation strategies** whose round counts and results the
//!   tests compare against the direct semantics. (The fully syntactic encodings
//!   exist in the paper's proof; the measurable claims are the round counts and
//!   the equivalences, which is what these strategies expose.)
//! * [`orderly`] — the decidable sublanguage discussed at the end of §1/§7.1: a
//!   recognizer for `dcr` instances whose combiners come from a whitelist of
//!   shapes for which the algebraic laws are guaranteed, so that membership in
//!   the sublanguage is a decidable syntactic check.

pub mod orderly;
pub mod prop21;
pub mod prop22;
pub mod prop73;
