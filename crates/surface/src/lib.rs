//! Surface syntax for the NC query language: a lexer, a recursive-descent
//! parser and a pretty-printer.
//!
//! The paper works with abstract syntax only; an open-source release needs a
//! concrete one. The grammar below is a direct rendering of the §2/§3/§7.1
//! constructs (keyword-call style for the recursors and iterators, infix
//! `union`, `=`, `<=`):
//!
//! ```text
//! type  ::= atom | bool | unit | nat | { type } | ( type * type ) | ( type -> type )
//! expr  ::= \x: type. expr
//!         | let x = expr in expr
//!         | if expr then expr else expr
//!         | cmp
//! cmp   ::= uni ( ("=" | "<=") uni )?
//! uni   ::= prim ( "union" prim )*
//! prim  ::= true | false | unit | NUMBER | @NUMBER            -- nat / atom literals
//!         | x | ( expr ) | ( expr , expr ) | { expr } | empty [ type ]
//!         | pi1 prim | pi2 prim
//!         | isempty ( expr ) | ext ( expr , expr ) | apply ( expr , expr )
//!         | dcr ( e , f , u , arg ) | sru (...) | sri ( e , i , arg ) | esr (...)
//!         | bdcr ( e , f , u , b , arg ) | bsri ( e , i , b , arg )
//!         | logloop ( f , set , init ) | loop (...)
//!         | blogloop ( f , b , set , init ) | bloop (...)
//!         | IDENT ( args )                                     -- external function
//! ```

pub mod lexer;
pub mod parser;
pub mod pretty;

pub use lexer::{tokenize, LexError, SpannedToken, Token};
pub use parser::{parse_expr, parse_type, ParseError};
pub use pretty::print_expr;

/// Parse a query from its surface text.
pub fn parse(text: &str) -> Result<ncql_core::Expr, ParseError> {
    parse_expr(text)
}
