//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the [`Strategy`]
//! trait with `prop_map`, `prop_recursive` and `boxed`, integer-range, tuple,
//! [`strategy::Just`] and [`strategy::Union`] strategies, `any::<bool>()`,
//! `collection::vec`, `sample::select`, `ProptestConfig::with_cases`, and the
//! `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!` macros.
//! Sampling is deterministic (the case index seeds a SplitMix64 generator per
//! test), and there is no shrinking — a failing case panics with the plain
//! `assert!` message. Swap for the registry crate when network access is
//! available; the test sources are written against the real proptest API.

use rand::rngs::StdRng;

pub mod strategy {
    use super::test_runner::TestRng;
    use std::sync::Arc;

    /// A generator of values of type `Self::Value` (mirrors
    /// `proptest::strategy::Strategy`, minus the shrink tree).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, map: f }
        }

        /// Type-erase the strategy (mirrors `Strategy::boxed`; the stand-in's
        /// boxed form is also `Clone`, which `prop_recursive` leans on).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let this = self;
            BoxedStrategy {
                gen: Arc::new(move |rng| this.generate(rng)),
            }
        }

        /// Recursive strategies (mirrors `Strategy::prop_recursive`): `self`
        /// is the leaf case and `recurse` builds one level on top of an
        /// arbitrary strategy for the whole type. `_desired_size` and
        /// `_expected_branch_size` shape real proptest's size control and are
        /// accepted for API compatibility; the stand-in bounds depth by
        /// `levels` and flips a fair coin per level between recursing and
        /// bottoming out.
        fn prop_recursive<R, F>(
            self,
            levels: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..levels {
                let deeper = recurse(strat.clone()).boxed();
                let shallower = strat;
                strat = BoxedStrategy {
                    gen: Arc::new(move |rng| {
                        if rand::Rng::gen_bool(rng, 0.5) {
                            deeper.generate(rng)
                        } else {
                            shallower.generate(rng)
                        }
                    }),
                };
            }
            strat
        }
    }

    /// A type-erased strategy handle (mirrors
    /// `proptest::strategy::BoxedStrategy`).
    pub struct BoxedStrategy<V> {
        gen: Arc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> BoxedStrategy<V> {
            BoxedStrategy {
                gen: Arc::clone(&self.gen),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// The constant strategy (mirrors `proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice among same-valued strategies — the expansion target
    /// of [`crate::prop_oneof!`] (mirrors `proptest::strategy::Union`).
    #[derive(Clone)]
    pub struct Union<V> {
        options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        source: S,
        map: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.map)(self.source.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Strategy for a type's canonical arbitrary values (see [`super::arbitrary`]).
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(pub(crate) ::std::marker::PhantomData<T>);

    impl Strategy for Any<bool> {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::gen_bool(rng, 0.5)
        }
    }

    impl Strategy for Any<u64> {
        type Value = u64;
        fn generate(&self, rng: &mut TestRng) -> u64 {
            rand::RngCore::next_u64(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Any;

    /// `any::<T>()` — the canonical strategy for `T` (mirrors
    /// `proptest::arbitrary::any`).
    pub fn any<T>() -> Any<T>
    where
        Any<T>: super::strategy::Strategy,
    {
        Any(::std::marker::PhantomData)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `size` (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-case deterministic generator.
    pub type TestRng = super::StdRng;

    /// Mirrors `proptest::test_runner::Config` (the fields this workspace
    /// reads).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256 }
        }
    }

    /// Stable seed for a named test case (FNV-1a over the test name).
    pub fn seed_for(name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// The deterministic generator for a named test case. Called from the
    /// `proptest!` expansion via `$crate` so call sites need no `rand` dep.
    pub fn rng_for(name: &str, case: u32) -> TestRng {
        rand::SeedableRng::seed_from_u64(seed_for(name, case))
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A uniform pick from a fixed list (mirrors `proptest::sample::select`).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rand::Rng::gen_range(rng, 0..self.options.len());
            self.options[i].clone()
        }
    }
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each `#[test]` body `config.cases` times over freshly sampled inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (
        @with_config ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut rng: $crate::test_runner::TestRng =
                        $crate::test_runner::rng_for(stringify!($name), case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        );
    };
}

/// A uniform choice among strategies producing the same value type (mirrors
/// `proptest::prop_oneof!`, unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_sample_in_bounds(x in 3u64..9, pair in (0u64..4, 0usize..2)) {
            prop_assert!((3..9).contains(&x));
            prop_assert!(pair.0 < 4 && pair.1 < 2);
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec(0u64..10, 0..5).prop_map(|v| v.len())) {
            prop_assert!(v < 5);
        }
    }

    proptest! {
        #[test]
        fn any_bool_is_not_constant(v in crate::collection::vec(any::<bool>(), 64..65)) {
            let trues = v.iter().filter(|&&b| b).count();
            prop_assert!(trues > 0 && trues < v.len());
        }

        #[test]
        fn default_config_form_works(x in 0u64..10) {
            prop_assert!(x < 10);
        }

        #[test]
        fn oneof_just_and_select_sample_their_arms(
            x in prop_oneof![Just(1u64), 10u64..20, crate::sample::select(vec![7u64, 9])],
        ) {
            prop_assert!(x == 1 || (10..20).contains(&x) || x == 7 || x == 9);
        }

        #[test]
        fn recursive_strategies_bottom_out(
            n in (0u64..4).prop_recursive(3, 16, 2, |inner| {
                (inner, 0u64..4).prop_map(|(a, b)| a + b)
            }),
        ) {
            // Three levels of `+ (0..4)` on top of a `0..4` leaf.
            prop_assert!(n < 16);
        }
    }
}
