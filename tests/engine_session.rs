//! Engine-level suite: the prepared-statement cache's contract, environment
//! configuration, and the cold-vs-prepared differential.
//!
//! What is pinned down here:
//! * a cache hit returns a handle to the *same* `Arc`'d plan (the front end
//!   ran once),
//! * changing the registry Σ invalidates (the fingerprint is part of the key),
//! * the LRU evicts in recency order at capacity,
//! * cold (fresh front end per run) and prepared (front end amortized)
//!   execution produce bit-identical `(Value, CostStats)` on both backends.
//!
//! `SessionBuilder::from_env` is covered by `tests/engine_from_env.rs`, which
//! lives in its own test binary because it mutates environment variables.

use ncql::core::externs::ExternRegistry;
use ncql::core::parallelism_from_env;
use ncql::object::{Type, Value};
use ncql::{Backend, Session, SessionBuilder};

/// A shared mini-corpus of surface texts spanning the recursion forms, the
/// iterators, `ext` and the external arithmetic.
fn texts() -> Vec<&'static str> {
    vec![
        "dcr(false, \\y: atom. true, \
         \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, \
         {@1} union {@2} union {@3} union {@4} union {@5})",
        "sru(empty[atom], \\y: atom. {y}, \
         \\p: ({atom} * {atom}). pi1 p union pi2 p, {@3} union {@1} union {@2})",
        "sri(empty[atom], \\p: (atom * {atom}). {pi1 p} union pi2 p, {@5} union {@1} union {@9})",
        "logloop(\\c: nat. nat_add(c, 1), {@1} union {@2} union {@3} union {@4} union {@5}, 0)",
        "dcr(0, \\x: atom. atom_to_nat(x), \\p: (nat * nat). nat_add(pi1 p, pi2 p), \
         {@4} union {@7} union {@9})",
        "isempty(ext(\\x: atom. empty[atom], {@1} union {@2}))",
        "card({@1} union {@2} union {@3})",
    ]
}

#[test]
fn cache_hit_returns_the_same_arc_plan() {
    let session = Session::new();
    for text in texts() {
        let first = session.prepare(text).unwrap();
        let second = session.prepare(text).unwrap();
        assert!(
            first.ptr_eq(&second),
            "{text}: second prepare must be a cache hit"
        );
        // The handle equality is observable *behaviour*, not coincidence: the
        // metrics agree that only one front-end run happened per text.
    }
    let metrics = session.cache_metrics();
    assert_eq!(metrics.misses as usize, texts().len());
    assert_eq!(metrics.hits as usize, texts().len());
    assert_eq!(metrics.len, texts().len());
    assert_eq!(metrics.evictions, 0);
}

#[test]
fn registry_change_invalidates_cached_plans() {
    let mut session = Session::new();
    let text = "nat_add(1, 2)";
    let before = session.prepare(text).unwrap();

    // Same registry interface → same fingerprint → still a hit.
    session.set_registry(ExternRegistry::standard());
    let still = session.prepare(text).unwrap();
    assert!(
        still.ptr_eq(&before),
        "an interface-identical registry must not invalidate"
    );

    // A registry with one more extern fingerprints differently: the next
    // prepare re-runs the front end against the new Σ.
    let mut extended = ExternRegistry::standard();
    extended.register("triple", vec![Type::Nat], Type::Nat, |args| {
        match args.first() {
            Some(Value::Nat(n)) => Ok(Value::Nat(n * 3)),
            other => Err(ncql::core::EvalError::extern_failure(format!(
                "expected a nat, got {other:?}"
            ))),
        }
    });
    session.set_registry(extended);
    let after = session.prepare(text).unwrap();
    assert!(
        !after.ptr_eq(&before),
        "a registry interface change must invalidate"
    );

    // The new plan typechecks against the new Σ, and the new extern works.
    let out = session.run("triple(nat_add(1, 2))").unwrap();
    assert_eq!(out.value, Value::Nat(9));

    // Shrinking back to a registry without the extern makes the query
    // un-preparable again — the cache must not resurrect the stale plan.
    session.set_registry(ExternRegistry::standard());
    assert!(matches!(
        session
            .prepare("triple(nat_add(1, 2))")
            .map_err(|e| match e {
                ncql::Error::Type(t) => t.kind,
                other => panic!("expected a type error, got {other:?}"),
            }),
        Err(ncql::core::TypeErrorKind::UnknownExtern(_))
    ));
}

#[test]
fn lru_evicts_in_recency_order() {
    let session = SessionBuilder::new().cache_capacity(2).build();
    let a = session.prepare("{@1}").unwrap();
    let _b = session.prepare("{@2}").unwrap();
    // Refresh `a`, then insert a third plan: `b` is the LRU victim.
    let a2 = session.prepare("{@1}").unwrap();
    assert!(a.ptr_eq(&a2));
    let _c = session.prepare("{@3}").unwrap();
    let metrics = session.cache_metrics();
    assert_eq!(metrics.evictions, 1);
    assert_eq!(metrics.len, 2);
    // `a` is still cached, `b` must be re-prepared (miss → fresh plan).
    assert!(session.prepare("{@1}").unwrap().ptr_eq(&a));
    let b2 = session.prepare("{@2}").unwrap();
    assert!(!_b.ptr_eq(&b2), "the evicted plan must have been rebuilt");
}

#[test]
fn cold_and_prepared_execution_are_bit_identical_on_both_backends() {
    // Thread ladder: sequential, 2, 4, plus the CI matrix's request.
    let mut parallelisms = vec![None, Some(2), Some(4)];
    if let Some(n) = parallelism_from_env() {
        if !parallelisms.contains(&Some(n)) {
            parallelisms.push(Some(n));
        }
    }
    for parallelism in parallelisms {
        // `cold` re-runs the full front end every time (cache disabled);
        // `warm` prepares once and re-executes the cached plan.
        let cold = SessionBuilder::new()
            .parallelism(parallelism)
            .parallel_cutoff(1)
            .cache_capacity(0)
            .build();
        let warm = SessionBuilder::new()
            .parallelism(parallelism)
            .parallel_cutoff(1)
            .build();
        for text in texts() {
            let cold_out = shared_checks(&cold, text, parallelism);
            let prepared = warm.prepare(text).unwrap();
            for _ in 0..3 {
                let warm_out = warm.execute(&prepared).unwrap();
                assert_eq!(
                    warm_out.value, cold_out.value,
                    "{text}: prepared value drifted at parallelism {parallelism:?}"
                );
                assert_eq!(
                    warm_out.stats, cold_out.stats,
                    "{text}: prepared cost stats drifted at parallelism {parallelism:?}"
                );
            }
        }
        assert_eq!(
            cold.cache_metrics().len,
            0,
            "cold session must cache nothing"
        );
        assert_eq!(cold.cache_metrics().hits, 0);
    }
}

fn shared_checks(cold: &Session, text: &str, parallelism: Option<usize>) -> ncql::Outcome {
    let out = cold.run(text).unwrap();
    match parallelism {
        Some(n) if n >= 2 => assert_eq!(out.backend, Backend::Parallel { threads: n }),
        _ => assert_eq!(out.backend, Backend::Sequential),
    }
    out
}

#[test]
fn execute_many_amortizes_one_plan_over_batches() {
    let session = Session::new();
    let schema = vec![("s".to_string(), Type::set(Type::Base))];
    let q = session.prepare_with_schema("card(s)", &schema).unwrap();
    let batches: Vec<Vec<(String, Value)>> = (0..5u64)
        .map(|n| vec![("s".to_string(), Value::atom_set(0..n))])
        .collect();
    let outcomes = session.execute_many(&q, &batches);
    assert_eq!(outcomes.len(), 5);
    for (n, out) in outcomes.into_iter().enumerate() {
        assert_eq!(out.unwrap().value, Value::Nat(n as u64));
    }
    // One front-end run total, no matter how many executions.
    assert_eq!(session.cache_metrics().misses, 1);
}
