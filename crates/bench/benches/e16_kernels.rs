//! E16 — compiled row kernels vs the interpreted `ext` element map, timed in
//! isolation through the engine session on both backends.
use criterion::{criterion_group, criterion_main, Criterion};
use ncql_core::expr::Expr;
use ncql_engine::{Session, SessionBuilder};
use ncql_object::{Type, Value};
use std::time::Duration;

/// The same deterministic kernel-liftable query the report binary's E16 table
/// times: filter + scalar arithmetic + pair rebuild over a columnar input.
fn kernel_query(n: u64) -> Expr {
    let input = Value::set_from((0..n).map(|i| {
        let key = i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Value::pair(Value::Atom(key % (n / 2 + 1)), Value::Nat(key % 509))
    }));
    let pair_ty = Type::prod(Type::Base, Type::Nat);
    let body = Expr::let_in(
        "y",
        Expr::extern_call(
            "nat_add",
            vec![
                Expr::extern_call("nat_mul", vec![Expr::proj2(Expr::var("x")), Expr::nat(3)]),
                Expr::nat(7),
            ],
        ),
        Expr::ite(
            Expr::extern_call("nat_leq", vec![Expr::var("y"), Expr::nat(384)]),
            Expr::singleton(Expr::pair(Expr::proj1(Expr::var("x")), Expr::var("y"))),
            Expr::empty(pair_ty.clone()),
        ),
    );
    Expr::ext(Expr::lam("x", pair_ty, body), Expr::constant(input))
}

fn session(kernels: bool, parallelism: Option<usize>) -> Session {
    SessionBuilder::new()
        .row_kernels(kernels)
        .parallelism(parallelism)
        .build()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e16_kernels");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));
    let query = kernel_query(40_000);
    group.bench_function("ext_interpreted", |b| {
        let s = session(false, None);
        b.iter(|| s.evaluate(&query).expect("evaluates"))
    });
    group.bench_function("ext_kernel", |b| {
        let s = session(true, None);
        b.iter(|| s.evaluate(&query).expect("evaluates"))
    });
    group.bench_function("ext_interpreted_par4", |b| {
        let s = session(false, Some(4));
        b.iter(|| s.evaluate(&query).expect("evaluates"))
    });
    group.bench_function("ext_kernel_par4", |b| {
        let s = session(true, Some(4));
        b.iter(|| s.evaluate(&query).expect("evaluates"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
