//! Graph queries: transitive closure and reachability, in the three styles the
//! paper contrasts.
//!
//! * [`tc_dcr`] — the §1 example: `e = ∅`, `f(y) = r`, `u(r1, r2) = r1 ∪ r2 ∪
//!   r1∘r2`, applied to the vertex set `Π₁(r) ∪ Π₂(r)`. The combiner is
//!   associative and commutative on the carrier `{r ∪ r² ∪ … ∪ rᵐ}`, and the
//!   balanced combining tree reaches paths of length `≥ n` in `⌈log n⌉` levels.
//! * [`tc_log_loop`] — Example 7.1: compute `v = Π₁(r) ∪ Π₂(r)` and repeat
//!   `⌈log(n+1)⌉` times `r ← r ∪ r∘r`.
//! * [`tc_elementwise`] — the PTIME-style element-by-element recursion
//!   (one composition with `r` per vertex), linear span.

use ncql_core::derived;
use ncql_core::expr::{fresh_var, Expr};
use ncql_object::Type;

/// The type of binary relations over atoms, `{D × D}`.
pub fn rel_type() -> Type {
    Type::binary_relation()
}

/// The element type of binary relations, `D × D`.
pub fn edge_type() -> Type {
    Type::prod(Type::Base, Type::Base)
}

/// The vertex set `Π₁(r) ∪ Π₂(r)` of a relation.
pub fn vertices(r: Expr) -> Expr {
    let rv = fresh_var("vrel");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::union(
            derived::project1(Type::Base, Type::Base, Expr::var(rv.clone())),
            derived::project2(Type::Base, Type::Base, Expr::var(rv)),
        ),
    )
}

/// The §1 combiner `u(r1, r2) = r1 ∪ r2 ∪ r1∘r2`.
pub fn tc_combiner() -> Expr {
    Expr::lam2(
        "r1",
        "r2",
        Type::prod(rel_type(), rel_type()),
        Expr::union(
            Expr::union(Expr::var("r1"), Expr::var("r2")),
            derived::compose(
                Type::Base,
                Type::Base,
                Type::Base,
                Expr::var("r1"),
                Expr::var("r2"),
            ),
        ),
    )
}

/// Transitive closure via `dcr` (§1). `r` is an expression of type `{D × D}`.
pub fn tc_dcr(r: Expr) -> Expr {
    let rv = fresh_var("tcrel");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::dcr(
            Expr::empty(edge_type()),
            Expr::lam("y", Type::Base, Expr::var(rv.clone())),
            tc_combiner(),
            vertices(Expr::var(rv)),
        ),
    )
}

/// The squaring step `λs. s ∪ s∘s` of Example 7.1.
pub fn squaring_step() -> Expr {
    Expr::lam(
        "s",
        rel_type(),
        Expr::union(
            Expr::var("s"),
            derived::compose(
                Type::Base,
                Type::Base,
                Type::Base,
                Expr::var("s"),
                Expr::var("s"),
            ),
        ),
    )
}

/// Transitive closure via `log-loop` (Example 7.1): `⌈log(n+1)⌉` squarings, where
/// `n` is the number of vertices.
pub fn tc_log_loop(r: Expr) -> Expr {
    let rv = fresh_var("tcrel");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::log_loop(
            squaring_step(),
            vertices(Expr::var(rv.clone())),
            Expr::var(rv),
        ),
    )
}

/// Transitive closure via `blog-loop` with bound `V × V` — the complex-object
/// safe variant used when the same query is embedded in a nested context
/// (Theorem 6.1 requires bounded recursion there).
pub fn tc_blog_loop(r: Expr) -> Expr {
    let rv = fresh_var("tcrel");
    let vs = fresh_var("verts");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::let_in(
            vs.clone(),
            vertices(Expr::var(rv.clone())),
            Expr::blog_loop(
                squaring_step(),
                derived::cartesian_product(
                    Type::Base,
                    Type::Base,
                    Expr::var(vs.clone()),
                    Expr::var(vs.clone()),
                ),
                Expr::var(vs),
                Expr::var(rv),
            ),
        ),
    )
}

/// Transitive closure element-by-element: `esr(∅, λ(v, acc). acc ∪ r ∪ acc∘r)`
/// over the vertex set — one composition per vertex, the PTIME-style evaluation
/// contrasted with `dcr` in §6 ("the difference between NC and PTIME boils down
/// to two different ways of recurring on sets").
pub fn tc_elementwise(r: Expr) -> Expr {
    let rv = fresh_var("tcrel");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::esr(
            Expr::empty(edge_type()),
            Expr::lam2(
                "v",
                "acc",
                Type::prod(Type::Base, rel_type()),
                Expr::union(
                    Expr::union(Expr::var("acc"), Expr::var(rv.clone())),
                    derived::compose(
                        Type::Base,
                        Type::Base,
                        Type::Base,
                        Expr::var("acc"),
                        Expr::var(rv.clone()),
                    ),
                ),
            ),
            vertices(Expr::var(rv)),
        ),
    )
}

/// Reflexive-transitive closure: `tc(r) ∪ {(v, v) | v ∈ vertices}`.
pub fn reflexive_tc_dcr(r: Expr) -> Expr {
    let rv = fresh_var("rtcrel");
    let v = fresh_var("v");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::union(
            tc_dcr(Expr::var(rv.clone())),
            Expr::ext(
                Expr::lam(
                    v.clone(),
                    Type::Base,
                    Expr::singleton(Expr::pair(Expr::var(v.clone()), Expr::var(v))),
                ),
                vertices(Expr::var(rv)),
            ),
        ),
    )
}

/// The set of nodes reachable from `start` in one or more steps:
/// `{ y | (start, y) ∈ tc(r) }`.
pub fn reachable_from(r: Expr, start: Expr) -> Expr {
    let s = fresh_var("start");
    Expr::let_in(
        s.clone(),
        start,
        derived::project2(
            Type::Base,
            Type::Base,
            derived::select(edge_type(), tc_dcr(r), |p| {
                Expr::eq(Expr::proj1(p), Expr::var(s))
            }),
        ),
    )
}

/// Is the graph strongly connected? `∀(x, y) ∈ V×V. (x, y) ∈ tc(r)` — phrased as
/// `V × V ⊆ tc(r)`.
pub fn strongly_connected(r: Expr) -> Expr {
    let rv = fresh_var("screl");
    let vs = fresh_var("verts");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::let_in(
            vs.clone(),
            vertices(Expr::var(rv.clone())),
            derived::subset(
                edge_type(),
                derived::cartesian_product(
                    Type::Base,
                    Type::Base,
                    Expr::var(vs.clone()),
                    Expr::var(vs),
                ),
                tc_dcr(Expr::var(rv)),
            ),
        ),
    )
}

/// The symmetric closure `r ∪ r⁻¹` (useful for undirected connectivity queries).
pub fn symmetric_closure(r: Expr) -> Expr {
    let rv = fresh_var("symrel");
    let p = fresh_var("p");
    Expr::let_in(
        rv.clone(),
        r,
        Expr::union(
            Expr::var(rv.clone()),
            Expr::ext(
                Expr::lam(
                    p.clone(),
                    edge_type(),
                    Expr::singleton(Expr::pair(
                        Expr::proj2(Expr::var(p.clone())),
                        Expr::proj1(Expr::var(p)),
                    )),
                ),
                Expr::var(rv),
            ),
        ),
    )
}

/// Same-generation: pairs of nodes having a common ancestor at the same
/// distance — the classic recursive query beyond plain relational algebra.
/// Computed as the fixpoint of `sg ← sibling ∪ r⁻¹ ∘ sg ∘ r` where
/// `sibling = r⁻¹ ∘ r` (common parent), reached after at most `|V|` rounds and
/// therefore driven here by `loop` over the vertex set.
pub fn same_generation(r: Expr) -> Expr {
    let rv = fresh_var("sgrel");
    let inv = fresh_var("sginv");
    let sib = fresh_var("sgsib");
    let inverse_of = |rel: Expr| {
        let p = fresh_var("p");
        Expr::ext(
            Expr::lam(
                p.clone(),
                edge_type(),
                Expr::singleton(Expr::pair(
                    Expr::proj2(Expr::var(p.clone())),
                    Expr::proj1(Expr::var(p)),
                )),
            ),
            rel,
        )
    };
    let step = Expr::lam(
        "sg",
        rel_type(),
        Expr::union(
            Expr::var(sib.clone()),
            derived::compose(
                Type::Base,
                Type::Base,
                Type::Base,
                Expr::var(inv.clone()),
                derived::compose(
                    Type::Base,
                    Type::Base,
                    Type::Base,
                    Expr::var("sg"),
                    Expr::var(rv.clone()),
                ),
            ),
        ),
    );
    Expr::let_in(
        rv.clone(),
        r,
        Expr::let_in(
            inv.clone(),
            inverse_of(Expr::var(rv.clone())),
            Expr::let_in(
                sib.clone(),
                derived::compose(
                    Type::Base,
                    Type::Base,
                    Type::Base,
                    Expr::var(inv.clone()),
                    Expr::var(rv.clone()),
                ),
                Expr::loop_(step, vertices(Expr::var(rv)), Expr::var(sib)),
            ),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::Relation;
    use ncql_core::analysis;
    use ncql_core::eval::{eval_closed, eval_with_stats};
    use ncql_core::typecheck::typecheck_closed;
    use ncql_object::Value;

    fn path(n: u64) -> Relation {
        Relation::from_pairs((0..n).map(|i| (i, i + 1)))
    }

    fn cycle(n: u64) -> Relation {
        Relation::from_pairs((0..n).map(|i| (i, (i + 1) % n)))
    }

    fn expr_of(r: &Relation) -> Expr {
        Expr::constant(r.to_value())
    }

    #[test]
    fn tc_variants_agree_with_baseline_on_paths_and_cycles() {
        for rel in [
            path(5),
            cycle(6),
            Relation::from_pairs(vec![(1, 2), (2, 3), (5, 1), (3, 5)]),
        ] {
            let expected = rel.transitive_closure().to_value();
            assert_eq!(
                eval_closed(&tc_dcr(expr_of(&rel))).unwrap(),
                expected,
                "dcr"
            );
            assert_eq!(
                eval_closed(&tc_log_loop(expr_of(&rel))).unwrap(),
                expected,
                "log-loop"
            );
            assert_eq!(
                eval_closed(&tc_blog_loop(expr_of(&rel))).unwrap(),
                expected,
                "blog-loop"
            );
            assert_eq!(
                eval_closed(&tc_elementwise(expr_of(&rel))).unwrap(),
                expected,
                "elementwise"
            );
        }
    }

    #[test]
    fn tc_of_empty_relation_is_empty() {
        let e = tc_dcr(Expr::constant(Value::relation_from_pairs(
            Vec::<(u64, u64)>::new(),
        )));
        assert_eq!(eval_closed(&e).unwrap(), Value::empty_set());
    }

    #[test]
    fn tc_queries_typecheck() {
        let r = expr_of(&path(3));
        for q in [
            tc_dcr(r.clone()),
            tc_log_loop(r.clone()),
            tc_elementwise(r.clone()),
            tc_blog_loop(r.clone()),
        ] {
            assert_eq!(typecheck_closed(&q).unwrap(), rel_type());
        }
        assert_eq!(
            typecheck_closed(&strongly_connected(r.clone())).unwrap(),
            Type::Bool
        );
        assert_eq!(
            typecheck_closed(&reachable_from(r, Expr::atom(0))).unwrap(),
            Type::set(Type::Base)
        );
    }

    #[test]
    fn recursion_depths_match_the_paper() {
        let r = expr_of(&path(3));
        assert_eq!(analysis::recursion_depth(&tc_dcr(r.clone())), 1);
        assert_eq!(analysis::recursion_depth(&tc_log_loop(r.clone())), 1);
        assert_eq!(analysis::recursion_depth(&tc_elementwise(r)), 1);
    }

    #[test]
    fn dcr_span_scales_better_than_elementwise() {
        let small = path(8);
        let large = path(48);
        let (_, d_small) = eval_with_stats(&tc_dcr(expr_of(&small))).unwrap();
        let (_, d_large) = eval_with_stats(&tc_dcr(expr_of(&large))).unwrap();
        let (_, e_small) = eval_with_stats(&tc_elementwise(expr_of(&small))).unwrap();
        let (_, e_large) = eval_with_stats(&tc_elementwise(expr_of(&large))).unwrap();
        let dcr_growth = d_large.span as f64 / d_small.span as f64;
        let elem_growth = e_large.span as f64 / e_small.span as f64;
        assert!(
            dcr_growth < elem_growth,
            "dcr span grew {dcr_growth:.2}x, elementwise {elem_growth:.2}x"
        );
    }

    #[test]
    fn reachability_matches_baseline() {
        let rel = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 1), (7, 8)]);
        let out = eval_closed(&reachable_from(expr_of(&rel), Expr::atom(1))).unwrap();
        // Baseline reachable_from includes the start; the query asks for nodes at
        // distance ≥ 1, which here still includes 1 because it lies on a cycle.
        assert_eq!(out, Value::atom_set(vec![1, 2, 3]));
    }

    #[test]
    fn strong_connectivity() {
        assert_eq!(
            eval_closed(&strongly_connected(expr_of(&cycle(5)))).unwrap(),
            Value::Bool(true)
        );
        assert_eq!(
            eval_closed(&strongly_connected(expr_of(&path(4)))).unwrap(),
            Value::Bool(false)
        );
    }

    #[test]
    fn symmetric_closure_and_same_generation() {
        let rel = Relation::from_pairs(vec![(1, 2)]);
        assert_eq!(
            eval_closed(&symmetric_closure(expr_of(&rel))).unwrap(),
            Value::relation_from_pairs(vec![(1, 2), (2, 1)])
        );
        // A balanced binary tree: 0 -> 1, 0 -> 2, 1 -> 3, 1 -> 4, 2 -> 5, 2 -> 6.
        let tree = Relation::from_pairs(vec![(0, 1), (0, 2), (1, 3), (1, 4), (2, 5), (2, 6)]);
        let sg = eval_closed(&same_generation(expr_of(&tree))).unwrap();
        let sg_rel = Relation::from_value(&sg).unwrap();
        // Nodes 3 and 6 are in the same generation (both grandchildren of 0).
        assert!(sg_rel.contains(3, 6));
        assert!(sg_rel.contains(1, 2));
        // A node and its parent are not in the same generation.
        assert!(!sg_rel.contains(1, 0));
    }

    #[test]
    fn reflexive_tc_adds_the_diagonal() {
        let rel = path(3);
        let out = eval_closed(&reflexive_tc_dcr(expr_of(&rel))).unwrap();
        let out_rel = Relation::from_value(&out).unwrap();
        for v in 0..=3 {
            assert!(out_rel.contains(v, v));
        }
        assert!(out_rel.contains(0, 3));
    }
}
