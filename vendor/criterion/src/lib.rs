//! Offline stand-in for `criterion`.
//!
//! Implements the surface the E1-E12 benches use — `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, warm_up_time, measurement_time,
//! bench_with_input, bench_function, finish}`, `Bencher::iter`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros — as a
//! straightforward wall-clock harness: each benchmark warms up, then runs
//! `sample_size` samples and reports min/mean/max per iteration to stdout.
//! No statistics, plots or HTML reports. Swap for the registry crate when
//! network access is available; the bench sources are written against the real
//! criterion API (and `harness = false` stays correct).

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new<S: Display, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId { id: name.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> BenchmarkId {
        BenchmarkId { id: name }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it `self.iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        eprintln!("benchmarking group {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_millis(500),
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Criterion {
        let mut group = self.benchmark_group(name);
        group.bench_function("bench", f);
        group.finish();
        self
    }
}

/// A named set of related benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(&id.id, f);
        self
    }

    pub fn bench_with_input<I, P, F>(&mut self, id: I, input: &P, mut f: F) -> &mut Self
    where
        I: Into<BenchmarkId>,
        F: FnMut(&mut Bencher, &P),
    {
        let id = id.into();
        self.run(&id.id, |b| f(b, input));
        self
    }

    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        // Warm-up: also calibrates how many iterations fit one sample.
        let mut iters: u64 = 1;
        let warm_up_end = Instant::now() + self.warm_up_time;
        let mut per_iter = Duration::from_micros(1);
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            per_iter = b.elapsed.checked_div(iters as u32).unwrap_or(per_iter);
            if Instant::now() >= warm_up_end {
                break;
            }
            iters = iters.saturating_mul(2).min(1 << 20);
        }
        let budget_per_sample = self.measurement_time.checked_div(self.sample_size as u32);
        let iters_per_sample = match budget_per_sample {
            Some(budget) if per_iter > Duration::ZERO => {
                ((budget.as_nanos() / per_iter.as_nanos().max(1)) as u64).clamp(1, 1 << 20)
            }
            _ => 1,
        };

        let (mut min, mut max, mut total) = (Duration::MAX, Duration::ZERO, Duration::ZERO);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                iters: iters_per_sample,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            let per = b.elapsed.checked_div(iters_per_sample as u32).unwrap_or_default();
            min = min.min(per);
            max = max.max(per);
            total += per;
        }
        let mean = total.checked_div(self.sample_size as u32).unwrap_or_default();
        println!(
            "{}/{id}: [{min:?} {mean:?} {max:?}] ({} samples x {iters_per_sample} iters)",
            self.name, self.sample_size
        );
    }
}

/// Mirrors `criterion::criterion_group!` (plain-targets form).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut ran = false;
        group.bench_with_input(BenchmarkId::new("id", 7), &7u64, |b, &n| {
            ran = true;
            b.iter(|| n * 2)
        });
        group.finish();
        assert!(ran);
    }
}
