//! The unified engine API for the NC query language: `Session`,
//! `PreparedQuery`, and a prepared-statement cache.
//!
//! Historically every consumer of the reproduction hand-wired the same
//! five-step pipeline — `surface::parse` → `typecheck` → `analysis` →
//! [`EvalConfig`](ncql_core::eval::EvalConfig) construction → a `match` on the
//! sequential vs parallel evaluator — each with its own error handling. This
//! crate is the single supported front door instead:
//!
//! * [`SessionBuilder`] owns the external-function registry Σ, the resource
//!   limits, and the `parallelism`/`parallel_cutoff` backend knobs (plus
//!   [`SessionBuilder::from_env`] for `NCQL_PARALLELISM` /
//!   `NCQL_PARALLEL_CUTOFF` deployments).
//! * [`Session::prepare`] runs parse → typecheck → recursion-depth analysis
//!   exactly once and caches the plan in an LRU keyed by (query text, schema,
//!   registry fingerprint), so repeated traffic pays only the Suciu–Tannen
//!   evaluation cost.
//! * [`PreparedQuery`] exposes what the front end learned: the inferred
//!   [`Type`](ncql_object::Type), the recursion-nesting depth / ACᵏ level of
//!   §3, and the pretty-printed normal form.
//! * [`Session::execute`], [`Session::execute_with_bindings`] and
//!   [`Session::execute_many`] evaluate a prepared plan (one set of bindings
//!   per declared free variable; batches amortize preparation further).
//! * [`Error`] is the one error enum at the boundary — `Parse`, `Type`,
//!   `Eval`, `Object` and `Lint` variants with `std::error::Error` +
//!   `Display` implementations and the lexer's source-position context.
//! * [`Session::prepare`] also runs the prepare-time static analysis of
//!   `ncql_core::analyze`: symbolic work/span bounds and lint findings,
//!   cached on the plan and exposed via [`PreparedQuery::analysis`]. Under
//!   [`LintPolicy::Deny`] (builder knob or `NCQL_LINT=deny`), deny-level
//!   findings reject the query at prepare — before any evaluation — with a
//!   span-located [`Error::Lint`].
//!
//! # Quickstart
//!
//! ```
//! use ncql_engine::{Backend, SessionBuilder};
//!
//! fn main() -> Result<(), ncql_engine::Error> {
//!     // One session per configuration; it can serve many threads.
//!     let session = SessionBuilder::new().parallelism(Some(4)).build();
//!     assert_eq!(session.backend(), Backend::Parallel { threads: 4 });
//!
//!     // The front end (parse, typecheck, analysis) runs once...
//!     let parity = session.prepare(
//!         "dcr(false, \\y: atom. true, \
//!          \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, \
//!          {@1} union {@2} union {@3})",
//!     )?;
//!     assert_eq!(parity.ty().to_string(), "bool");
//!     assert_eq!(parity.ac_level(), 1);
//!
//!     // ...and every execution pays only evaluation cost.
//!     let outcome = session.execute(&parity)?;
//!     assert_eq!(outcome.value.to_string(), "true"); // 3 is odd
//!
//!     // Re-preparing the same text is a cache hit on the same plan.
//!     let again = session.prepare(parity.source().unwrap())?;
//!     assert!(again.ptr_eq(&parity));
//!     assert_eq!(session.cache_metrics().hits, 1);
//!     Ok(())
//! }
//! ```

mod cache;
mod diagnostics;
mod error;
mod prepared;
mod session;

pub use diagnostics::Diagnostic;
pub use error::Error;
pub use prepared::{Backend, Outcome, PreparedQuery};
pub use session::{
    CacheMetrics, ExecOptions, LintPolicy, Session, SessionBuilder, DEFAULT_CACHE_CAPACITY,
};

// The cooperative cancellation token of `ExecOptions::cancel`, re-exported so
// serving front ends need not depend on the core crate directly.
pub use ncql_core::eval::CancelToken;

// The static-analysis vocabulary of `PreparedQuery::analysis`, re-exported so
// engine consumers need not depend on the core crate directly.
pub use ncql_core::analyze::{Bound, CostBound, Finding, Lint, QueryAnalysis, Severity};

// The optimizer vocabulary of `SessionBuilder::opt_level` /
// `PreparedQuery::rewrites`, re-exported for the same reason.
pub use ncql_core::rewrite::{FiredRewrite, OptLevel};

// The row-kernel vocabulary of `PreparedQuery::kernel_sites` and the
// process-wide kernel/columnar observability counters surfaced by the REPL's
// `:stats` and the server's `stats` reply.
pub use ncql_core::kernel::{kernel_stats, KernelSite, KernelStats};
pub use ncql_object::{columnar_stats, ColumnarStats};
