//! Powerset — the query that forces *bounded* recursion over complex objects.
//!
//! §2: "over complex objects dcr (and even sru) can express powerset hence we
//! need some restriction if we are to stay within NC." The construction is
//! `dcr({∅}, λy. {∅, {y}}, λ(p1, p2). { a ∪ b | a ∈ p1, b ∈ p2 })`.
//!
//! The bounded variant `bdcr(…, bound)` intersects with the bound at every step;
//! with a polynomial-size bound the intermediate results stay polynomial, which
//! is the operational content of Theorem 6.1. Experiment E8 measures the two
//! against each other.

use ncql_core::derived;
use ncql_core::expr::{fresh_var, Expr};
use ncql_object::Type;

/// The element type of a powerset of atoms, `{D}`.
pub fn subset_type() -> Type {
    Type::set(Type::Base)
}

/// The "pairwise union" combiner `λ(p1, p2). { a ∪ b | a ∈ p1, b ∈ p2 }` at type
/// `{{D}} × {{D}} → {{D}}`.
pub fn pairwise_union_combiner() -> Expr {
    let ps = Type::set(subset_type());
    let a = fresh_var("a");
    let b = fresh_var("b");
    Expr::lam2(
        "p1",
        "p2",
        Type::prod(ps.clone(), ps),
        Expr::ext(
            Expr::lam(
                a.clone(),
                subset_type(),
                Expr::ext(
                    Expr::lam(
                        b.clone(),
                        subset_type(),
                        Expr::singleton(Expr::union(Expr::var(a.clone()), Expr::var(b))),
                    ),
                    Expr::var("p2"),
                ),
            ),
            Expr::var("p1"),
        ),
    )
}

/// Unbounded powerset via `dcr` — exponential output size, the complexity
/// blow-up that motivates `bdcr`.
pub fn powerset_dcr(set: Expr) -> Expr {
    Expr::dcr(
        Expr::singleton(Expr::empty(Type::Base)),
        Expr::lam(
            "y",
            Type::Base,
            Expr::union(
                Expr::singleton(Expr::empty(Type::Base)),
                Expr::singleton(Expr::singleton(Expr::var("y"))),
            ),
        ),
        pairwise_union_combiner(),
        set,
    )
}

/// Bounded "powerset" via `bdcr`: the same recursion intersected at every step
/// with the bound `{ {v} | v ∈ set } ∪ {∅}` (singletons and the empty set only),
/// so the result is the *polynomially bounded* portion of the powerset —
/// exactly what Theorem 6.1's bounded recursion guarantees to stay in NC.
pub fn bounded_small_subsets(set: Expr) -> Expr {
    let sv = fresh_var("pset");
    let bound = Expr::union(
        Expr::singleton(Expr::empty(Type::Base)),
        derived::map_set(Type::Base, Expr::var(sv.clone()), Expr::singleton),
    );
    Expr::let_in(
        sv.clone(),
        set,
        Expr::bdcr(
            Expr::singleton(Expr::empty(Type::Base)),
            Expr::lam(
                "y",
                Type::Base,
                Expr::union(
                    Expr::singleton(Expr::empty(Type::Base)),
                    Expr::singleton(Expr::singleton(Expr::var("y"))),
                ),
            ),
            pairwise_union_combiner(),
            bound,
            Expr::var(sv),
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::analysis;
    use ncql_core::eval::{eval_closed, EvalConfig, Evaluator};
    use ncql_core::typecheck::typecheck_closed;
    use ncql_core::EvalError;
    use ncql_object::Value;

    fn atoms(v: Vec<u64>) -> Expr {
        Expr::constant(Value::atom_set(v))
    }

    #[test]
    fn powerset_of_small_sets() {
        let out = eval_closed(&powerset_dcr(atoms(vec![1, 2]))).unwrap();
        let expected = Value::set_from(vec![
            Value::empty_set(),
            Value::atom_set(vec![1]),
            Value::atom_set(vec![2]),
            Value::atom_set(vec![1, 2]),
        ]);
        assert_eq!(out, expected);
        // Cardinality 2^n.
        let out5 = eval_closed(&powerset_dcr(atoms((0..5).collect()))).unwrap();
        assert_eq!(out5.cardinality(), Some(32));
    }

    #[test]
    fn powerset_of_empty_set() {
        let out = eval_closed(&powerset_dcr(Expr::empty(Type::Base))).unwrap();
        assert_eq!(out, Value::set_from(vec![Value::empty_set()]));
    }

    #[test]
    fn powerset_typechecks_at_nested_type() {
        let ty = typecheck_closed(&powerset_dcr(atoms(vec![1]))).unwrap();
        assert_eq!(ty, Type::set(Type::set(Type::Base)));
        assert!(!ty.is_flat());
        assert_eq!(analysis::recursion_depth(&powerset_dcr(atoms(vec![1]))), 1);
    }

    #[test]
    fn unbounded_powerset_blows_past_a_resource_limit() {
        let mut ev = Evaluator::new(EvalConfig {
            max_set_size: 4096,
            ..EvalConfig::default()
        });
        let err = ev
            .eval_closed(&powerset_dcr(atoms((0..16).collect())))
            .unwrap_err();
        assert!(matches!(err, EvalError::SetTooLarge { .. }));
    }

    #[test]
    fn bounded_variant_stays_small_under_the_same_limit() {
        let mut ev = Evaluator::new(EvalConfig {
            max_set_size: 4096,
            ..EvalConfig::default()
        });
        let out = ev
            .eval_closed(&bounded_small_subsets(atoms((0..16).collect())))
            .unwrap();
        // Result: the empty set plus the 16 singletons = 17 subsets.
        assert_eq!(out.cardinality(), Some(17));
        assert!(ev.stats().max_set_size <= 4096);
    }

    #[test]
    fn bounded_variant_typechecks() {
        assert_eq!(
            typecheck_closed(&bounded_small_subsets(atoms(vec![1, 2]))).unwrap(),
            Type::set(Type::set(Type::Base))
        );
    }
}
