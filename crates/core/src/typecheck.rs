//! Type checker for the NC query language (§3 typing rules plus the side
//! conditions of §2 for the bounded recursors).
//!
//! The checker infers a type for every expression in a typing context. λ-binders
//! are annotated, so inference is syntax-directed. The judgement implemented is
//! the obvious one for the rules listed in §3; the extra conditions are:
//!
//! * `bdcr`/`bsri`/`blog-loop`/`bloop` require the result type to be a PS-type
//!   (product of sets) so that the bounding intersection `⊓ b` is defined.
//! * `Eq`/`Leq` require both sides to have the same *object* type (no functions).
//! * External calls must match the signature registered in [`ExternRegistry`].

use crate::error::TypeError;
use crate::expr::Expr;
use crate::externs::ExternRegistry;
use ncql_object::{Type, Value};

/// A typing context: an association list from variable names to types (inner
/// bindings shadow outer ones).
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    bindings: Vec<(String, Type)>,
}

impl TypeEnv {
    /// The empty context.
    pub fn new() -> TypeEnv {
        TypeEnv { bindings: Vec::new() }
    }

    /// Extend the context with one binding (returns a new context).
    pub fn extend(&self, name: impl Into<String>, ty: Type) -> TypeEnv {
        let mut bindings = self.bindings.clone();
        bindings.push((name.into(), ty));
        TypeEnv { bindings }
    }

    /// Look up a variable (innermost binding wins).
    pub fn lookup(&self, name: &str) -> Option<&Type> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// Infer the type of a complex-object literal. Empty sets are given element type
/// `D` by convention; use [`Expr::Empty`] with an explicit element type when a
/// differently-typed empty set is needed.
pub fn value_type(v: &Value) -> Type {
    match v {
        Value::Atom(_) => Type::Base,
        Value::Bool(_) => Type::Bool,
        Value::Unit => Type::Unit,
        Value::Nat(_) => Type::Nat,
        Value::Pair(a, b) => Type::prod(value_type(a), value_type(b)),
        Value::Set(s) => match s.iter().next() {
            Some(first) => Type::set(value_type(first)),
            None => Type::set(Type::Base),
        },
    }
}

fn expect_eq(context: &str, expected: &Type, found: &Type) -> Result<(), TypeError> {
    if expected == found {
        Ok(())
    } else {
        Err(TypeError::Mismatch {
            context: context.to_string(),
            expected: expected.clone(),
            found: found.clone(),
        })
    }
}

fn expect_set(context: &str, ty: &Type) -> Result<Type, TypeError> {
    match ty {
        Type::Set(t) => Ok((**t).clone()),
        _ => Err(TypeError::NotASet {
            context: context.to_string(),
            found: ty.clone(),
        }),
    }
}

fn expect_fun(context: &str, ty: &Type) -> Result<(Type, Type), TypeError> {
    match ty {
        Type::Fun(a, b) => Ok(((**a).clone(), (**b).clone())),
        _ => Err(TypeError::NotAFunction {
            context: context.to_string(),
            found: ty.clone(),
        }),
    }
}

fn expect_bool(context: &str, ty: &Type) -> Result<(), TypeError> {
    if *ty == Type::Bool {
        Ok(())
    } else {
        Err(TypeError::NotABool {
            context: context.to_string(),
            found: ty.clone(),
        })
    }
}

fn expect_comparable(context: &str, ty: &Type) -> Result<(), TypeError> {
    if ty.is_object_type() {
        Ok(())
    } else {
        Err(TypeError::NotComparable {
            context: context.to_string(),
            found: ty.clone(),
        })
    }
}

fn expect_ps(context: &str, ty: &Type) -> Result<(), TypeError> {
    if ty.is_ps_type() {
        Ok(())
    } else {
        Err(TypeError::NotAPsType {
            context: context.to_string(),
            found: ty.clone(),
        })
    }
}

/// Type-check the shared shape of `dcr`/`sru`: `e : t`, `f : s → t`,
/// `u : t × t → t`, `arg : {s}`; result `t`.
fn check_union_recursor(
    name: &str,
    env: &TypeEnv,
    sigma: &ExternRegistry,
    e: &Expr,
    f: &Expr,
    u: &Expr,
    arg: &Expr,
) -> Result<Type, TypeError> {
    let t = infer(env, sigma, e)?;
    let f_ty = infer(env, sigma, f)?;
    let (s, t_from_f) = expect_fun(&format!("{name} singleton map f"), &f_ty)?;
    expect_eq(&format!("{name} f result vs e"), &t, &t_from_f)?;
    let u_ty = infer(env, sigma, u)?;
    let (u_dom, u_cod) = expect_fun(&format!("{name} combiner u"), &u_ty)?;
    expect_eq(
        &format!("{name} combiner domain"),
        &Type::prod(t.clone(), t.clone()),
        &u_dom,
    )?;
    expect_eq(&format!("{name} combiner codomain"), &t, &u_cod)?;
    let arg_ty = infer(env, sigma, arg)?;
    let elem = expect_set(&format!("{name} argument"), &arg_ty)?;
    expect_eq(&format!("{name} argument element type"), &s, &elem)?;
    Ok(t)
}

/// Type-check the shared shape of `sri`/`esr`: `e : t`, `i : s × t → t`,
/// `arg : {s}`; result `t`.
fn check_insert_recursor(
    name: &str,
    env: &TypeEnv,
    sigma: &ExternRegistry,
    e: &Expr,
    i: &Expr,
    arg: &Expr,
) -> Result<Type, TypeError> {
    let t = infer(env, sigma, e)?;
    let i_ty = infer(env, sigma, i)?;
    let (dom, cod) = expect_fun(&format!("{name} step i"), &i_ty)?;
    let (s, t_in) = match dom {
        Type::Prod(a, b) => ((*a).clone(), (*b).clone()),
        other => {
            return Err(TypeError::NotAProduct {
                context: format!("{name} step domain"),
                found: other,
            })
        }
    };
    expect_eq(&format!("{name} step accumulator"), &t, &t_in)?;
    expect_eq(&format!("{name} step result"), &t, &cod)?;
    let arg_ty = infer(env, sigma, arg)?;
    let elem = expect_set(&format!("{name} argument"), &arg_ty)?;
    expect_eq(&format!("{name} argument element type"), &s, &elem)?;
    Ok(t)
}

/// Type-check the shared shape of the iterators: `f : t → t`, `set : {s}`,
/// `init : t`; result `t`.
fn check_iterator(
    name: &str,
    env: &TypeEnv,
    sigma: &ExternRegistry,
    f: &Expr,
    set: &Expr,
    init: &Expr,
) -> Result<Type, TypeError> {
    let f_ty = infer(env, sigma, f)?;
    let (dom, cod) = expect_fun(&format!("{name} body"), &f_ty)?;
    expect_eq(&format!("{name} body must be an endofunction"), &dom, &cod)?;
    let set_ty = infer(env, sigma, set)?;
    expect_set(&format!("{name} counting set"), &set_ty)?;
    let init_ty = infer(env, sigma, init)?;
    expect_eq(&format!("{name} initial value"), &dom, &init_ty)?;
    Ok(dom)
}

/// Infer the type of `expr` in context `env`, with external signatures from
/// `sigma`.
pub fn infer(env: &TypeEnv, sigma: &ExternRegistry, expr: &Expr) -> Result<Type, TypeError> {
    match expr {
        Expr::Var(x) => env
            .lookup(x)
            .cloned()
            .ok_or_else(|| TypeError::UnboundVariable(x.clone())),
        Expr::Lam(x, ty, body) => {
            let body_ty = infer(&env.extend(x.clone(), ty.clone()), sigma, body)?;
            Ok(Type::fun(ty.clone(), body_ty))
        }
        Expr::App(f, a) => {
            let f_ty = infer(env, sigma, f)?;
            let (dom, cod) = expect_fun("application", &f_ty)?;
            let a_ty = infer(env, sigma, a)?;
            expect_eq("application argument", &dom, &a_ty)?;
            Ok(cod)
        }
        Expr::Let(x, bound, body) => {
            let bound_ty = infer(env, sigma, bound)?;
            infer(&env.extend(x.clone(), bound_ty), sigma, body)
        }
        Expr::Unit => Ok(Type::Unit),
        Expr::Pair(a, b) => Ok(Type::prod(infer(env, sigma, a)?, infer(env, sigma, b)?)),
        Expr::Proj1(e) => match infer(env, sigma, e)? {
            Type::Prod(a, _) => Ok(*a),
            other => Err(TypeError::NotAProduct {
                context: "pi1".to_string(),
                found: other,
            }),
        },
        Expr::Proj2(e) => match infer(env, sigma, e)? {
            Type::Prod(_, b) => Ok(*b),
            other => Err(TypeError::NotAProduct {
                context: "pi2".to_string(),
                found: other,
            }),
        },
        Expr::Bool(_) => Ok(Type::Bool),
        Expr::If(c, t, e) => {
            let c_ty = infer(env, sigma, c)?;
            expect_bool("if condition", &c_ty)?;
            let t_ty = infer(env, sigma, t)?;
            let e_ty = infer(env, sigma, e)?;
            expect_eq("if branches", &t_ty, &e_ty)?;
            Ok(t_ty)
        }
        Expr::Eq(a, b) => {
            let a_ty = infer(env, sigma, a)?;
            let b_ty = infer(env, sigma, b)?;
            expect_comparable("equality", &a_ty)?;
            expect_eq("equality operands", &a_ty, &b_ty)?;
            Ok(Type::Bool)
        }
        Expr::Leq(a, b) => {
            let a_ty = infer(env, sigma, a)?;
            let b_ty = infer(env, sigma, b)?;
            expect_comparable("order comparison", &a_ty)?;
            expect_eq("order comparison operands", &a_ty, &b_ty)?;
            Ok(Type::Bool)
        }
        Expr::Const(v) => Ok(value_type(v)),
        Expr::Empty(t) => Ok(Type::set(t.clone())),
        Expr::Singleton(e) => Ok(Type::set(infer(env, sigma, e)?)),
        Expr::Union(a, b) => {
            let a_ty = infer(env, sigma, a)?;
            expect_set("union left operand", &a_ty)?;
            let b_ty = infer(env, sigma, b)?;
            expect_eq("union operands", &a_ty, &b_ty)?;
            Ok(a_ty)
        }
        Expr::IsEmpty(e) => {
            let ty = infer(env, sigma, e)?;
            expect_set("isempty", &ty)?;
            Ok(Type::Bool)
        }
        Expr::Ext(f, e) => {
            let f_ty = infer(env, sigma, f)?;
            let (dom, cod) = expect_fun("ext function", &f_ty)?;
            expect_set("ext function result", &cod)?;
            let e_ty = infer(env, sigma, e)?;
            let elem = expect_set("ext argument", &e_ty)?;
            expect_eq("ext argument element type", &dom, &elem)?;
            Ok(cod)
        }
        Expr::Dcr { e, f, u, arg } => check_union_recursor("dcr", env, sigma, e, f, u, arg),
        Expr::Sru { e, f, u, arg } => check_union_recursor("sru", env, sigma, e, f, u, arg),
        Expr::Sri { e, i, arg } => check_insert_recursor("sri", env, sigma, e, i, arg),
        Expr::Esr { e, i, arg } => check_insert_recursor("esr", env, sigma, e, i, arg),
        Expr::BDcr { e, f, u, bound, arg } => {
            let t = check_union_recursor("bdcr", env, sigma, e, f, u, arg)?;
            expect_ps("bdcr result", &t)?;
            let b_ty = infer(env, sigma, bound)?;
            expect_eq("bdcr bound", &t, &b_ty)?;
            Ok(t)
        }
        Expr::BSri { e, i, bound, arg } => {
            let t = check_insert_recursor("bsri", env, sigma, e, i, arg)?;
            expect_ps("bsri result", &t)?;
            let b_ty = infer(env, sigma, bound)?;
            expect_eq("bsri bound", &t, &b_ty)?;
            Ok(t)
        }
        Expr::LogLoop { f, set, init } => check_iterator("log-loop", env, sigma, f, set, init),
        Expr::Loop { f, set, init } => check_iterator("loop", env, sigma, f, set, init),
        Expr::BLogLoop { f, bound, set, init } => {
            let t = check_iterator("blog-loop", env, sigma, f, set, init)?;
            expect_ps("blog-loop result", &t)?;
            let b_ty = infer(env, sigma, bound)?;
            expect_eq("blog-loop bound", &t, &b_ty)?;
            Ok(t)
        }
        Expr::BLoop { f, bound, set, init } => {
            let t = check_iterator("bloop", env, sigma, f, set, init)?;
            expect_ps("bloop result", &t)?;
            let b_ty = infer(env, sigma, bound)?;
            expect_eq("bloop bound", &t, &b_ty)?;
            Ok(t)
        }
        Expr::Extern(name, args) => {
            let ext = sigma
                .get(name)
                .ok_or_else(|| TypeError::UnknownExtern(name.clone()))?;
            if ext.params.len() != args.len() {
                return Err(TypeError::ExternArity {
                    name: name.clone(),
                    expected: ext.params.len(),
                    found: args.len(),
                });
            }
            for (param, arg) in ext.params.iter().zip(args) {
                let arg_ty = infer(env, sigma, arg)?;
                // `card` and similar polymorphic aggregates declare their set
                // parameter as `{D}`; accept any set type for a declared set
                // parameter whose element type is `D` (width subtyping would be
                // overkill here).
                let compatible = param == &arg_ty
                    || matches!(
                        (param, &arg_ty),
                        (Type::Set(p), Type::Set(_)) if **p == Type::Base
                    );
                if !compatible {
                    return Err(TypeError::Mismatch {
                        context: format!("extern `{name}` argument"),
                        expected: param.clone(),
                        found: arg_ty,
                    });
                }
            }
            Ok(ext.result.clone())
        }
    }
}

/// Type-check an expression in the given context with the standard Σ registry.
pub fn typecheck(env: &TypeEnv, expr: &Expr) -> Result<Type, TypeError> {
    infer(env, &ExternRegistry::standard(), expr)
}

/// Type-check a closed expression with the standard Σ registry.
pub fn typecheck_closed(expr: &Expr) -> Result<Type, TypeError> {
    typecheck(&TypeEnv::new(), expr)
}

/// Check that every type occurring in the expression (binder annotations, empty
/// set annotations, literal types, and the final type) is *flat*, i.e. the
/// expression lies inside the restricted language NRA¹ of §3.
pub fn check_flat(env: &TypeEnv, sigma: &ExternRegistry, expr: &Expr) -> Result<Type, TypeError> {
    let ty = infer(env, sigma, expr)?;
    let mut bad: Option<Type> = None;
    expr.visit(&mut |e| {
        let candidate = match e {
            Expr::Lam(_, t, _) => Some(t.clone()),
            Expr::Empty(t) => Some(Type::set(t.clone())),
            Expr::Const(v) => Some(value_type(v)),
            _ => None,
        };
        if let Some(t) = candidate {
            if !t.is_flat() && bad.is_none() {
                bad = Some(t);
            }
        }
    });
    if let Some(found) = bad {
        return Err(TypeError::NotFlat {
            context: "NRA¹ annotation".to_string(),
            found,
        });
    }
    if !ty.is_flat() {
        return Err(TypeError::NotFlat {
            context: "NRA¹ result".to_string(),
            found: ty,
        });
    }
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_object::Value;

    fn tc(e: &Expr) -> Result<Type, TypeError> {
        typecheck_closed(e)
    }

    #[test]
    fn constants_and_pairs() {
        assert_eq!(tc(&Expr::atom(3)).unwrap(), Type::Base);
        assert_eq!(tc(&Expr::Bool(true)).unwrap(), Type::Bool);
        assert_eq!(
            tc(&Expr::pair(Expr::atom(1), Expr::Bool(false))).unwrap(),
            Type::prod(Type::Base, Type::Bool)
        );
    }

    #[test]
    fn lambda_and_application() {
        let id = Expr::lam("x", Type::Base, Expr::var("x"));
        assert_eq!(
            tc(&id).unwrap(),
            Type::fun(Type::Base, Type::Base)
        );
        assert_eq!(tc(&Expr::app(id, Expr::atom(1))).unwrap(), Type::Base);
    }

    #[test]
    fn application_argument_mismatch_is_rejected() {
        let id = Expr::lam("x", Type::Base, Expr::var("x"));
        assert!(tc(&Expr::app(id, Expr::Bool(true))).is_err());
    }

    #[test]
    fn unbound_variable_is_rejected() {
        assert!(matches!(
            tc(&Expr::var("nope")),
            Err(TypeError::UnboundVariable(_))
        ));
    }

    #[test]
    fn sets_and_ext() {
        let f = Expr::lam("x", Type::Base, Expr::singleton(Expr::var("x")));
        let e = Expr::ext(f, Expr::Const(Value::atom_set(vec![1, 2])));
        assert_eq!(tc(&e).unwrap(), Type::set(Type::Base));
    }

    #[test]
    fn ext_requires_set_valued_function() {
        let f = Expr::lam("x", Type::Base, Expr::var("x"));
        let e = Expr::ext(f, Expr::Const(Value::atom_set(vec![1])));
        assert!(tc(&e).is_err());
    }

    #[test]
    fn union_requires_matching_element_types() {
        let e = Expr::union(
            Expr::singleton(Expr::atom(1)),
            Expr::singleton(Expr::Bool(true)),
        );
        assert!(tc(&e).is_err());
    }

    #[test]
    fn dcr_typing() {
        // parity : {D} -> bool
        let parity = Expr::dcr(
            Expr::Bool(false),
            Expr::lam("y", Type::Base, Expr::Bool(true)),
            Expr::lam2(
                "v1",
                "v2",
                Type::prod(Type::Bool, Type::Bool),
                Expr::ite(
                    Expr::var("v1"),
                    Expr::ite(Expr::var("v2"), Expr::Bool(false), Expr::Bool(true)),
                    Expr::var("v2"),
                ),
            ),
            Expr::Const(Value::atom_set(vec![1, 2, 3])),
        );
        assert_eq!(tc(&parity).unwrap(), Type::Bool);
    }

    #[test]
    fn bdcr_requires_ps_type() {
        // bdcr with a boolean accumulator must be rejected: bool is not a PS-type.
        let bad = Expr::bdcr(
            Expr::Bool(false),
            Expr::lam("y", Type::Base, Expr::Bool(true)),
            Expr::lam2(
                "a",
                "b",
                Type::prod(Type::Bool, Type::Bool),
                Expr::var("a"),
            ),
            Expr::Bool(true),
            Expr::Const(Value::atom_set(vec![1])),
        );
        assert!(matches!(tc(&bad), Err(TypeError::NotAPsType { .. })));
    }

    #[test]
    fn log_loop_typing() {
        let ty = Type::set(Type::Base);
        let f = Expr::lam("r", ty.clone(), Expr::var("r"));
        let e = Expr::log_loop(
            f,
            Expr::Const(Value::atom_set(vec![1, 2, 3])),
            Expr::Empty(Type::Base),
        );
        assert_eq!(tc(&e).unwrap(), ty);
    }

    #[test]
    fn extern_typing_and_arity() {
        let ok = Expr::extern_call("nat_add", vec![Expr::nat(1), Expr::nat(2)]);
        assert_eq!(tc(&ok).unwrap(), Type::Nat);
        let bad_arity = Expr::extern_call("nat_add", vec![Expr::nat(1)]);
        assert!(matches!(tc(&bad_arity), Err(TypeError::ExternArity { .. })));
        let unknown = Expr::extern_call("no_such_fn", vec![]);
        assert!(matches!(tc(&unknown), Err(TypeError::UnknownExtern(_))));
    }

    #[test]
    fn equality_rejected_at_function_type() {
        let id = Expr::lam("x", Type::Base, Expr::var("x"));
        let e = Expr::eq(id.clone(), id);
        assert!(matches!(tc(&e), Err(TypeError::NotComparable { .. })));
    }

    #[test]
    fn flat_check_accepts_relational_and_rejects_nested() {
        let sigma = ExternRegistry::standard();
        let flat = Expr::union(
            Expr::Const(Value::relation_from_pairs(vec![(1, 2)])),
            Expr::Empty(Type::prod(Type::Base, Type::Base)),
        );
        assert!(check_flat(&TypeEnv::new(), &sigma, &flat).is_ok());
        let nested = Expr::singleton(Expr::Const(Value::atom_set(vec![1])));
        assert!(matches!(
            check_flat(&TypeEnv::new(), &sigma, &nested),
            Err(TypeError::NotFlat { .. })
        ));
    }

    #[test]
    fn if_branches_must_agree() {
        let e = Expr::ite(Expr::Bool(true), Expr::atom(1), Expr::Bool(false));
        assert!(tc(&e).is_err());
    }

    #[test]
    fn let_binding_types_flow_through() {
        let e = Expr::let_in(
            "x",
            Expr::singleton(Expr::atom(1)),
            Expr::union(Expr::var("x"), Expr::var("x")),
        );
        assert_eq!(tc(&e).unwrap(), Type::set(Type::Base));
    }
}
