//! Complex objects: nested relations, nest/unnest, bounded recursion (`bdcr`)
//! and the powerset blow-up that motivates it (§2, Theorem 6.1), with resource
//! limits configured once on the engine's `Session`.
//!
//! Run with: `cargo run --example complex_objects`

use ncql::core::derived;
use ncql::core::expr::Expr;
use ncql::core::EvalError;
use ncql::object::{Type, Value};
use ncql::queries::{datagen, powerset};
use ncql::{Session, SessionBuilder};

fn main() {
    let session = Session::new();

    // A nested "document store": a set of (group, sub-relation) pairs.
    let store = datagen::document_store(4, 6, 7);
    let store_ty = Type::set(Type::prod(Type::Base, Type::binary_relation()));
    assert!(store.has_type(&store_ty));
    println!(
        "document store ({} groups): {store}",
        store.cardinality().unwrap_or(0)
    );

    // Unnest it into a flat relation of (group, edge) pairs and project.
    let unnested = session
        .prepare_expr(derived::unnest(
            Type::Base,
            Type::prod(Type::Base, Type::Base),
            Expr::constant(store.clone()),
        ))
        .expect("unnest typechecks");
    let flat = session.execute(&unnested).expect("unnest evaluates").value;
    println!(
        "\nunnested to type {}: {} tuples",
        unnested.ty(),
        flat.cardinality().unwrap_or(0)
    );

    // Re-nest by group and check we recover a set of groups of the same size.
    let renested = derived::nest(
        Type::Base,
        Type::prod(Type::Base, Type::Base),
        Expr::constant(flat.clone()),
    );
    let grouped = session.evaluate(&renested).expect("nest evaluates").value;
    println!(
        "re-nested into {} groups",
        grouped.cardinality().unwrap_or(0)
    );

    // Powerset via unbounded dcr explodes: a session with a set-size limit
    // reports the blow-up instead of exhausting memory.
    let limited = SessionBuilder::new().max_set_size(4096).build();
    let input = Expr::constant(Value::atom_set(0..18));
    match limited.evaluate(&powerset::powerset_dcr(input.clone())) {
        Err(EvalError::SetTooLarge {
            limit, attempted, ..
        }) => println!(
            "\nunbounded powerset of an 18-element set: aborted \
             (intermediate set of {attempted} elements exceeds the limit {limit})"
        ),
        other => println!("\nunexpected outcome: {other:?}"),
    }

    // The bounded variant (bdcr) stays within the bound, as Theorem 6.1
    // requires — same limited session, no error.
    let bounded = limited
        .evaluate(&powerset::bounded_small_subsets(input))
        .expect("bounded recursion stays within the limit");
    println!(
        "bounded recursion over the same set: {} subsets, largest intermediate set {}",
        bounded.value.cardinality().unwrap_or(0),
        bounded.stats.max_set_size
    );

    // Small powersets are still fine, and exact.
    let small = session
        .evaluate(&powerset::powerset_dcr(Expr::constant(Value::atom_set(
            0..6,
        ))))
        .expect("small powerset");
    println!(
        "\npowerset of a 6-element set: {} subsets (work {}, span {})",
        small.value.cardinality().unwrap_or(0),
        small.stats.work,
        small.stats.span
    );
}
