//! Quickstart: build a small ordered database, write queries in both the Rust
//! builder API and the surface syntax, evaluate them, and look at the work/span
//! cost model that makes the NC claims of the paper measurable.
//!
//! Run with: `cargo run --example quickstart`

use ncql::core::eval::{eval_with_stats, EvalConfig, Evaluator};
use ncql::core::expr::Expr;
use ncql::core::{analysis, typecheck};
use ncql::object::Value;
use ncql::queries::{graph, parity, Relation};
use ncql::surface;

fn main() {
    // An ordered database: a binary relation (a small directed graph).
    let edges = Relation::from_pairs(vec![(1, 2), (2, 3), (3, 4), (4, 2), (7, 8)]);
    let r = Expr::Const(edges.to_value());

    // --- Transitive closure via divide-and-conquer recursion (the §1 example).
    let tc_query = graph::tc_dcr(r.clone());
    let ty = typecheck::typecheck_closed(&tc_query).expect("the query typechecks");
    println!("transitive closure query : dcr(∅, λy.r, λ(r1,r2). r1 ∪ r2 ∪ r1∘r2)(Π1 r ∪ Π2 r) (type {ty})");
    println!("recursion nesting depth  : {} (so the query is in AC^{})",
        analysis::recursion_depth(&tc_query),
        analysis::ac_level(&tc_query));

    let (result, stats) = eval_with_stats(&tc_query).expect("evaluation succeeds");
    println!("result                   : {result}");
    println!("work / span              : {} / {}", stats.work, stats.span);
    println!("combiner applications    : {}", stats.combiner_calls);

    // Cross-check against the native baseline.
    assert_eq!(result, edges.transitive_closure().to_value());
    println!("matches the native semi-naive baseline ✓");

    // --- Parity, straight from the paper's introduction.
    let numbers = Expr::Const(Value::atom_set(0..13));
    let (odd, pstats) = eval_with_stats(&parity::parity_dcr(numbers)).expect("parity evaluates");
    println!("\nparity of a 13-element set: {odd} (span {}, work {})", pstats.span, pstats.work);

    // --- The same queries can be written in the surface syntax.
    let text = "dcr(false, \\y: atom. true, \
                \\p: (bool * bool). if pi1 p then (if pi2 p then false else true) else pi2 p, \
                {@1} union {@2} union {@3} union {@4} union {@5})";
    let parsed = surface::parse(text).expect("the surface query parses");
    let mut evaluator = Evaluator::new(EvalConfig::default());
    let value = evaluator.eval_closed(&parsed).expect("the parsed query evaluates");
    println!("\nsurface-syntax parity of {{1..5}}: {value}");
    println!("pretty-printed back        : {}", surface::print_expr(&parsed));
}
