//! Offline stand-in for `rand` 0.8.
//!
//! Implements exactly the surface this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{gen_range, gen_bool}` over integer
//! ranges. The generator is SplitMix64 — deterministic per seed, which is all
//! the seeded workload generators in `ncql-queries` require. Swap for the
//! registry crate when network access is available; the call sites are
//! API-compatible (seeds will produce different — still deterministic —
//! streams).

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (mirrors `rand_core::RngCore`).
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (mirrors `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be uniformly sampled from a range (mirrors
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as u64).wrapping_sub(start as u64).wrapping_add(1);
                if span == 0 {
                    // Full u64-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// User-facing convenience methods (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        // 53 high-quality bits, same construction the real crate uses.
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1000), b.gen_range(0u64..1000));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3u64..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=4);
            assert!(y <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
