//! Tokenizer for the surface syntax, emitting byte-spanned tokens.

use ncql_core::span::Span;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// An identifier or keyword.
    Ident(String),
    /// A natural-number literal.
    Number(u64),
    /// An atom literal `@NUMBER`.
    AtomLit(u64),
    /// `\` introducing a λ.
    Backslash,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `=`
    Equals,
    /// `<=`
    Leq,
    /// `*`
    Star,
    /// `->`
    Arrow,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Number(n) => write!(f, "{n}"),
            Token::AtomLit(n) => match ncql_object::atom_name(*n) {
                Some(name) => write!(f, "@{name}"),
                None => write!(f, "@{n}"),
            },
            Token::Backslash => write!(f, "\\"),
            Token::Dot => write!(f, "."),
            Token::Colon => write!(f, ":"),
            Token::Comma => write!(f, ","),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBrace => write!(f, "{{"),
            Token::RBrace => write!(f, "}}"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Equals => write!(f, "="),
            Token::Leq => write!(f, "<="),
            Token::Star => write!(f, "*"),
            Token::Arrow => write!(f, "->"),
        }
    }
}

/// A token together with the byte span of the source text it was read from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpannedToken {
    /// The token.
    pub token: Token,
    /// The half-open byte range `start..end` the token occupies.
    pub span: Span,
}

/// A lexical error with the byte span at which it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte span of the offending input (the bad character, or the malformed
    /// literal).
    pub span: Span,
    /// Description of the problem.
    pub message: String,
}

impl LexError {
    /// Byte offset at which the error occurred (the start of [`LexError::span`]).
    pub fn position(&self) -> usize {
        self.span.start
    }
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.span.start, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a surface-syntax string into spanned tokens. Comments run from
/// `--` to end of line.
pub fn tokenize(text: &str) -> Result<Vec<SpannedToken>, LexError> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    // One fixed-width token, spanning `width` bytes from `at`.
    let push = |tokens: &mut Vec<SpannedToken>, token: Token, at: usize, width: usize| {
        tokens.push(SpannedToken {
            token,
            span: Span::new(at, at + width),
        });
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                push(&mut tokens, Token::Arrow, i, 2);
                i += 2;
            }
            '\\' => {
                push(&mut tokens, Token::Backslash, i, 1);
                i += 1;
            }
            '.' => {
                push(&mut tokens, Token::Dot, i, 1);
                i += 1;
            }
            ':' => {
                push(&mut tokens, Token::Colon, i, 1);
                i += 1;
            }
            ',' => {
                push(&mut tokens, Token::Comma, i, 1);
                i += 1;
            }
            '(' => {
                push(&mut tokens, Token::LParen, i, 1);
                i += 1;
            }
            ')' => {
                push(&mut tokens, Token::RParen, i, 1);
                i += 1;
            }
            '{' => {
                push(&mut tokens, Token::LBrace, i, 1);
                i += 1;
            }
            '}' => {
                push(&mut tokens, Token::RBrace, i, 1);
                i += 1;
            }
            '[' => {
                push(&mut tokens, Token::LBracket, i, 1);
                i += 1;
            }
            ']' => {
                push(&mut tokens, Token::RBracket, i, 1);
                i += 1;
            }
            '=' => {
                push(&mut tokens, Token::Equals, i, 1);
                i += 1;
            }
            '*' => {
                push(&mut tokens, Token::Star, i, 1);
                i += 1;
            }
            '<' if bytes.get(i + 1) == Some(&b'=') => {
                push(&mut tokens, Token::Leq, i, 2);
                i += 2;
            }
            '@' => {
                let start = i + 1;
                let mut j = start;
                // `@NUMBER` is a numeric atom; `@name` is a symbolic atom,
                // interned process-wide into the named region of the atom
                // space at lex time, so the parser sees an ordinary
                // `AtomLit` and the grammar is unchanged.
                if bytes.get(start).is_some_and(|b| b.is_ascii_digit()) {
                    while j < bytes.len() && bytes[j].is_ascii_digit() {
                        j += 1;
                    }
                    let n: u64 = text[start..j].parse().map_err(|_| LexError {
                        span: Span::new(i, j),
                        message: "atom literal out of range".to_string(),
                    })?;
                    push(&mut tokens, Token::AtomLit(n), i, j - i);
                } else {
                    while j < bytes.len()
                        && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                    {
                        j += 1;
                    }
                    if j == start {
                        return Err(LexError {
                            span: Span::new(i, i + 1),
                            message: "expected digits or a name after '@'".to_string(),
                        });
                    }
                    let atom = ncql_object::intern_atom(&text[start..j]);
                    push(&mut tokens, Token::AtomLit(atom), i, j - i);
                }
                i = j;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                let n: u64 = text[start..j].parse().map_err(|_| LexError {
                    span: Span::new(start, j),
                    message: "number literal out of range".to_string(),
                })?;
                push(&mut tokens, Token::Number(n), start, j - start);
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '%' => {
                let start = i;
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric()
                        || bytes[j] == b'_'
                        || bytes[j] == b'%')
                {
                    j += 1;
                }
                push(
                    &mut tokens,
                    Token::Ident(text[start..j].to_string()),
                    start,
                    j - start,
                );
                i = j;
            }
            _ => {
                // `bytes[i] as char` mis-decodes multibyte UTF-8 (it sees only
                // the lead byte); re-decode the real character so the message
                // names it and the span covers all of its bytes — keeping the
                // span sliceable. `i` is always a char boundary here: every
                // other arm advances past complete ASCII characters.
                let other = text[i..].chars().next().expect("i < len and on a boundary");
                return Err(LexError {
                    span: Span::new(i, i + other.len_utf8()),
                    message: format!("unexpected character {other:?}"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plain(text: &str) -> Vec<Token> {
        tokenize(text)
            .unwrap()
            .into_iter()
            .map(|t| t.token)
            .collect()
    }

    #[test]
    fn tokenizes_a_lambda() {
        let toks = plain("\\x: {atom}. x union {@3}");
        assert_eq!(toks[0], Token::Backslash);
        assert_eq!(toks[1], Token::Ident("x".to_string()));
        assert!(toks.contains(&Token::Ident("union".to_string())));
        assert!(toks.contains(&Token::AtomLit(3)));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let toks = plain("x -- this is a comment\n  union y");
        assert_eq!(
            toks,
            vec![
                Token::Ident("x".into()),
                Token::Ident("union".into()),
                Token::Ident("y".into())
            ]
        );
    }

    #[test]
    fn arrow_and_leq_are_two_character_tokens() {
        let toks = plain("(atom -> bool) <=");
        assert!(toks.contains(&Token::Arrow));
        assert!(toks.contains(&Token::Leq));
    }

    #[test]
    fn bad_characters_are_reported() {
        let err = tokenize("x $ y").unwrap_err();
        assert_eq!(err.span, Span::new(2, 3));
        assert_eq!(err.position(), 2);
        let err2 = tokenize("@ x").unwrap_err();
        assert!(err2.message.contains("digits"));
        assert_eq!(err2.span, Span::new(0, 1));
    }

    #[test]
    fn named_atoms_intern_and_display_their_names() {
        let toks = plain("@alice <= @bob");
        let alice = ncql_object::intern_atom("alice");
        let bob = ncql_object::intern_atom("bob");
        assert_eq!(
            toks,
            vec![Token::AtomLit(alice), Token::Leq, Token::AtomLit(bob)]
        );
        // Re-lexing yields the same interned ids, and Display round-trips.
        assert_eq!(plain("@alice"), vec![Token::AtomLit(alice)]);
        assert_eq!(Token::AtomLit(alice).to_string(), "@alice");
        // Named atoms live in the tagged region, disjoint from numerics.
        assert!(alice >= ncql_object::NAMED_ATOM_BASE);
    }

    #[test]
    fn non_ascii_characters_are_reported_whole() {
        // The span must cover every byte of the multibyte character (so the
        // source remains sliceable at the span) and the message must name the
        // real character, not its UTF-8 lead byte.
        let src = "{@1} union €";
        let err = tokenize(src).unwrap_err();
        assert_eq!(err.span, Span::new(11, 14));
        assert!(err.message.contains('€'), "{}", err.message);
        assert_eq!(&src[err.span.start..err.span.end], "€");
    }

    #[test]
    fn numbers_and_atoms_are_distinct() {
        assert_eq!(plain("42 @42"), vec![Token::Number(42), Token::AtomLit(42)]);
    }

    #[test]
    fn tokens_carry_their_source_spans() {
        let toks = tokenize("ab <= {@12}").unwrap();
        let spans: Vec<(Span, String)> =
            toks.iter().map(|t| (t.span, t.token.to_string())).collect();
        assert_eq!(spans[0], (Span::new(0, 2), "ab".to_string()));
        assert_eq!(spans[1], (Span::new(3, 5), "<=".to_string()));
        assert_eq!(spans[2], (Span::new(6, 7), "{".to_string()));
        assert_eq!(spans[3], (Span::new(7, 10), "@12".to_string()));
        assert_eq!(spans[4], (Span::new(10, 11), "}".to_string()));
        // Every span slices the source to the token's own text.
        let src = "ab <= {@12}";
        for t in &toks {
            assert_eq!(&src[t.span.start..t.span.end], t.token.to_string());
        }
    }
}
