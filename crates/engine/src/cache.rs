//! A small least-recently-used map for prepared plans.
//!
//! The engine's working set is "the distinct query texts a service replays",
//! which is small (hundreds, not millions), so the implementation favours
//! simplicity over asymptotics: entries carry a monotone use stamp and
//! eviction scans for the minimum. That is O(capacity) per insert-at-capacity,
//! which is negligible next to the parse + typecheck work a hit saves.

use std::collections::HashMap;
use std::hash::Hash;

/// An LRU map with a fixed capacity. A capacity of `0` disables storage
/// entirely (every lookup misses, every insert is dropped) — the engine uses
/// that to offer an uncached "cold" mode for benchmarking.
#[derive(Debug)]
pub(crate) struct LruCache<K, V> {
    capacity: usize,
    stamp: u64,
    map: HashMap<K, (u64, V)>,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V: Clone> LruCache<K, V> {
    pub(crate) fn new(capacity: usize) -> LruCache<K, V> {
        LruCache {
            capacity,
            stamp: 0,
            map: HashMap::new(),
            evictions: 0,
        }
    }

    /// Look up a key, refreshing its recency on a hit.
    pub(crate) fn get(&mut self, key: &K) -> Option<V> {
        self.stamp += 1;
        let stamp = self.stamp;
        self.map.get_mut(key).map(|slot| {
            slot.0 = stamp;
            slot.1.clone()
        })
    }

    /// Insert a key, evicting the least recently used entry at capacity.
    pub(crate) fn insert(&mut self, key: K, value: V) {
        if self.capacity == 0 {
            return;
        }
        self.stamp += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (stamp, _))| *stamp)
                .map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, (self.stamp, value));
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    pub(crate) fn capacity(&self) -> usize {
        self.capacity
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_refreshes_recency() {
        let mut c: LruCache<&str, u32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(1)); // refresh a; b is now the LRU entry
        c.insert("c", 3);
        assert_eq!(c.get(&"b"), None, "b was evicted");
        assert_eq!(c.get(&"a"), Some(1));
        assert_eq!(c.get(&"c"), Some(3));
        assert_eq!(c.evictions(), 1);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn reinsert_updates_in_place_without_eviction() {
        let mut c: LruCache<&str, u32> = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.get(&"a"), Some(10));
        assert_eq!(c.get(&"b"), Some(2));
    }

    #[test]
    fn zero_capacity_stores_nothing() {
        let mut c: LruCache<&str, u32> = LruCache::new(0);
        c.insert("a", 1);
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.len(), 0);
    }
}
