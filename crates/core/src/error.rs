//! Error types for type checking and evaluation, carrying source spans.
//!
//! Both error families are *located*: a [`TypeError`] records the span of the
//! offending AST node, and every [`EvalError`] variant carries an
//! `Option<`[`Span`]`>` naming the innermost spanned subexpression that was
//! being evaluated when the failure surfaced. Spans are `None` for errors
//! raised from programmatically built (span-less) expressions.
//!
//! Equality of [`EvalError`] is span-agnostic: the differential suites compare
//! errors *across backends*, and under the parallel backend the node at which
//! a shared resource budget trips is scheduling-dependent even when the error
//! kind is fully deterministic. The span is diagnostics metadata — compare
//! [`EvalError::span`] explicitly when location matters.

use crate::span::Span;
use ncql_object::Type;
use std::fmt;

/// The structural cases of a type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TypeErrorKind {
    /// A variable was used but not bound in the context.
    UnboundVariable(String),
    /// Two types that should have matched did not.
    Mismatch {
        /// Where the mismatch was detected (constructor name).
        context: String,
        /// The expected type.
        expected: Type,
        /// The type that was found.
        found: Type,
    },
    /// An expression of function type was expected.
    NotAFunction { context: String, found: Type },
    /// An expression of set type was expected.
    NotASet { context: String, found: Type },
    /// An expression of product type was expected.
    NotAProduct { context: String, found: Type },
    /// An expression of boolean type was expected.
    NotABool { context: String, found: Type },
    /// A bounded recursion construct requires its result type to be a PS-type.
    NotAPsType { context: String, found: Type },
    /// The restricted language NRA¹ only admits flat types.
    NotFlat { context: String, found: Type },
    /// An external function was referenced but is not registered.
    UnknownExtern(String),
    /// An external function was applied to the wrong number of arguments.
    ExternArity {
        name: String,
        expected: usize,
        found: usize,
    },
    /// Equality / order comparison at a non-object (function) type.
    NotComparable { context: String, found: Type },
}

impl fmt::Display for TypeErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeErrorKind::UnboundVariable(x) => write!(f, "unbound variable `{x}`"),
            TypeErrorKind::Mismatch {
                context,
                expected,
                found,
            } => {
                write!(f, "{context}: expected type {expected}, found {found}")
            }
            TypeErrorKind::NotAFunction { context, found } => {
                write!(f, "{context}: expected a function type, found {found}")
            }
            TypeErrorKind::NotASet { context, found } => {
                write!(f, "{context}: expected a set type, found {found}")
            }
            TypeErrorKind::NotAProduct { context, found } => {
                write!(f, "{context}: expected a product type, found {found}")
            }
            TypeErrorKind::NotABool { context, found } => {
                write!(f, "{context}: expected bool, found {found}")
            }
            TypeErrorKind::NotAPsType { context, found } => {
                write!(
                    f,
                    "{context}: expected a PS-type (product of sets), found {found}"
                )
            }
            TypeErrorKind::NotFlat { context, found } => {
                write!(f, "{context}: NRA¹ admits only flat types, found {found}")
            }
            TypeErrorKind::UnknownExtern(name) => write!(f, "unknown external function `{name}`"),
            TypeErrorKind::ExternArity {
                name,
                expected,
                found,
            } => write!(
                f,
                "external `{name}` expects {expected} argument(s), got {found}"
            ),
            TypeErrorKind::NotComparable { context, found } => {
                write!(f, "{context}: values of type {found} cannot be compared")
            }
        }
    }
}

/// An error raised by the type checker: what went wrong ([`TypeErrorKind`])
/// and the source span of the offending node (`None` when the expression was
/// built programmatically and carries no spans).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// The structural error.
    pub kind: TypeErrorKind,
    /// Span of the offending node in the surface text, when known.
    pub span: Option<Span>,
}

impl TypeError {
    /// A located type error.
    pub fn new(kind: TypeErrorKind, span: Option<Span>) -> TypeError {
        TypeError { kind, span }
    }

    /// The span of the offending node, when the source was spanned.
    pub fn span(&self) -> Option<Span> {
        self.span
    }

    /// Attach `span` unless a (more specific, innermost) span is already set.
    /// The checker calls this as errors bubble out of each node, so the first
    /// — deepest — frame to know a span wins.
    pub fn with_span_if_missing(mut self, span: Option<Span>) -> TypeError {
        if self.span.is_none() {
            self.span = span;
        }
        self
    }
}

impl From<TypeErrorKind> for TypeError {
    fn from(kind: TypeErrorKind) -> TypeError {
        TypeError { kind, span: None }
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The span is deliberately not printed here: `Display` feeds the
        // engine's `Diagnostic` renderer, which places the caret itself.
        write!(f, "{}", self.kind)
    }
}

impl std::error::Error for TypeError {}

/// Errors raised by the evaluator. Every variant carries the span of the
/// innermost spanned subexpression being evaluated when the error surfaced
/// (`None` for span-less, programmatically built expressions).
///
/// This stays an *enum* (rather than a kind/span struct like [`TypeError`])
/// because variant-shape matching — `EvalError::SetTooLarge { .. }` — is part
/// of the public contract the differential and stress suites pin down.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// A variable was not bound at run time (should be prevented by typechecking).
    UnboundVariable {
        /// The variable name.
        name: String,
        /// Span of the failing subexpression, when known.
        span: Option<Span>,
    },
    /// A value had the wrong shape for the operation (should be prevented by
    /// typechecking).
    Stuck {
        /// Description of the shape mismatch.
        message: String,
        /// Span of the failing subexpression, when known.
        span: Option<Span>,
    },
    /// An external function failed or was not registered.
    Extern {
        /// The extern's own failure message.
        message: String,
        /// Span of the failing extern call, when known.
        span: Option<Span>,
    },
    /// The configured resource limit on intermediate set sizes was exceeded.
    /// This is how the evaluator surfaces the exponential blow-up of, e.g.,
    /// `powerset` expressed with unbounded `dcr` over complex objects (§2).
    SetTooLarge {
        limit: usize,
        attempted: usize,
        /// Span of the subexpression whose result crossed the limit, when known.
        span: Option<Span>,
    },
    /// The configured limit on total work was exceeded.
    WorkLimitExceeded {
        limit: u64,
        /// Span of the subexpression being evaluated when the budget ran out,
        /// when known. Under the parallel backend this is the *reporting
        /// thread's* position — deterministic in kind, scheduling-dependent in
        /// location, which is why equality ignores it.
        span: Option<Span>,
    },
    /// A `dcr`/`sru` instance was evaluated with `check_algebraic_laws` enabled
    /// and its combiner failed the associativity/commutativity/identity check on
    /// the values actually encountered.
    IllFormedRecursion {
        /// Which law failed, on which values.
        message: String,
        /// Span of the offending recursor, when known.
        span: Option<Span>,
    },
    /// A worker thread of the parallel backend panicked (e.g. inside a buggy
    /// extern). The panic is caught at the shard boundary, every sibling
    /// worker is joined and its partial results discarded, and the payload
    /// message is preserved here instead of aborting the process.
    WorkerPanicked {
        /// The panic payload, when it was a string.
        message: String,
        /// Span of the forked region's node, when known.
        span: Option<Span>,
    },
    /// The evaluation was cancelled from outside through a
    /// [`CancelToken`](crate::eval::CancelToken) — e.g. a server's deadline
    /// watchdog flagged an over-deadline request, or a shutting-down host
    /// asked in-flight work to stop. The evaluator checks the token
    /// cooperatively at every work charge, so cancellation lands within a few
    /// elementary operations of the flag being raised.
    Cancelled {
        /// Why the evaluation was cancelled (the canceller's message, e.g.
        /// `"deadline of 50ms exceeded"`).
        reason: String,
        /// Span of the subexpression being evaluated when the flag was
        /// noticed. Scheduling-dependent under the parallel backend, like
        /// [`EvalError::WorkLimitExceeded`]'s span.
        span: Option<Span>,
    },
}

impl EvalError {
    /// An [`EvalError::UnboundVariable`] with no span yet.
    pub fn unbound(name: impl Into<String>) -> EvalError {
        EvalError::UnboundVariable {
            name: name.into(),
            span: None,
        }
    }

    /// An [`EvalError::Stuck`] with no span yet.
    pub fn stuck(message: impl Into<String>) -> EvalError {
        EvalError::Stuck {
            message: message.into(),
            span: None,
        }
    }

    /// An [`EvalError::Extern`] with no span yet.
    pub fn extern_failure(message: impl Into<String>) -> EvalError {
        EvalError::Extern {
            message: message.into(),
            span: None,
        }
    }

    /// An [`EvalError::SetTooLarge`] with no span yet.
    pub fn set_too_large(limit: usize, attempted: usize) -> EvalError {
        EvalError::SetTooLarge {
            limit,
            attempted,
            span: None,
        }
    }

    /// An [`EvalError::WorkLimitExceeded`] with no span yet.
    pub fn work_limit_exceeded(limit: u64) -> EvalError {
        EvalError::WorkLimitExceeded { limit, span: None }
    }

    /// An [`EvalError::IllFormedRecursion`] with no span yet.
    pub fn ill_formed(message: impl Into<String>) -> EvalError {
        EvalError::IllFormedRecursion {
            message: message.into(),
            span: None,
        }
    }

    /// An [`EvalError::WorkerPanicked`] with no span yet.
    pub fn worker_panicked(message: impl Into<String>) -> EvalError {
        EvalError::WorkerPanicked {
            message: message.into(),
            span: None,
        }
    }

    /// An [`EvalError::Cancelled`] with no span yet.
    pub fn cancelled(reason: impl Into<String>) -> EvalError {
        EvalError::Cancelled {
            reason: reason.into(),
            span: None,
        }
    }

    /// The span of the failing subexpression, when the source was spanned.
    pub fn span(&self) -> Option<Span> {
        match self {
            EvalError::UnboundVariable { span, .. }
            | EvalError::Stuck { span, .. }
            | EvalError::Extern { span, .. }
            | EvalError::SetTooLarge { span, .. }
            | EvalError::WorkLimitExceeded { span, .. }
            | EvalError::IllFormedRecursion { span, .. }
            | EvalError::WorkerPanicked { span, .. }
            | EvalError::Cancelled { span, .. } => *span,
        }
    }

    /// Attach `span` unless a (more specific, innermost) span is already set.
    /// The evaluator calls this as errors bubble out of each node, so the
    /// deepest spanned frame wins — that is the failing subexpression.
    pub fn with_span_if_missing(mut self, new_span: Option<Span>) -> EvalError {
        let slot = match &mut self {
            EvalError::UnboundVariable { span, .. }
            | EvalError::Stuck { span, .. }
            | EvalError::Extern { span, .. }
            | EvalError::SetTooLarge { span, .. }
            | EvalError::WorkLimitExceeded { span, .. }
            | EvalError::IllFormedRecursion { span, .. }
            | EvalError::WorkerPanicked { span, .. }
            | EvalError::Cancelled { span, .. } => span,
        };
        if slot.is_none() {
            *slot = new_span;
        }
        self
    }
}

impl PartialEq for EvalError {
    /// Span-agnostic equality (see the module docs): two errors are equal iff
    /// their kind and payload agree, wherever they were raised.
    fn eq(&self, other: &EvalError) -> bool {
        match (self, other) {
            (
                EvalError::UnboundVariable { name: a, .. },
                EvalError::UnboundVariable { name: b, .. },
            ) => a == b,
            (EvalError::Stuck { message: a, .. }, EvalError::Stuck { message: b, .. }) => a == b,
            (EvalError::Extern { message: a, .. }, EvalError::Extern { message: b, .. }) => a == b,
            (
                EvalError::SetTooLarge {
                    limit: la,
                    attempted: aa,
                    ..
                },
                EvalError::SetTooLarge {
                    limit: lb,
                    attempted: ab,
                    ..
                },
            ) => la == lb && aa == ab,
            (
                EvalError::WorkLimitExceeded { limit: a, .. },
                EvalError::WorkLimitExceeded { limit: b, .. },
            ) => a == b,
            (
                EvalError::IllFormedRecursion { message: a, .. },
                EvalError::IllFormedRecursion { message: b, .. },
            ) => a == b,
            (
                EvalError::WorkerPanicked { message: a, .. },
                EvalError::WorkerPanicked { message: b, .. },
            ) => a == b,
            (EvalError::Cancelled { reason: a, .. }, EvalError::Cancelled { reason: b, .. }) => {
                a == b
            }
            _ => false,
        }
    }
}

impl Eq for EvalError {}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable { name, .. } => {
                write!(f, "unbound variable `{name}` at run time")
            }
            EvalError::Stuck { message, .. } => write!(f, "evaluation stuck: {message}"),
            EvalError::Extern { message, .. } => write!(f, "external function error: {message}"),
            EvalError::SetTooLarge {
                limit, attempted, ..
            } => write!(
                f,
                "intermediate set of {attempted} elements exceeds the configured limit of {limit}"
            ),
            EvalError::WorkLimitExceeded { limit, .. } => {
                write!(f, "total work exceeded the configured limit of {limit}")
            }
            EvalError::IllFormedRecursion { message, .. } => {
                write!(
                    f,
                    "ill-formed recursion (algebraic laws violated): {message}"
                )
            }
            EvalError::WorkerPanicked { message, .. } => {
                write!(f, "a parallel worker panicked: {message}")
            }
            EvalError::Cancelled { reason, .. } => {
                write!(f, "evaluation cancelled: {reason}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_error_equality_ignores_spans() {
        let bare = EvalError::work_limit_exceeded(7);
        let placed = EvalError::work_limit_exceeded(7).with_span_if_missing(Some(Span::new(1, 4)));
        assert_eq!(bare, placed);
        assert_eq!(placed.span(), Some(Span::new(1, 4)));
        assert_ne!(bare, EvalError::work_limit_exceeded(8));
        assert_ne!(bare, EvalError::set_too_large(7, 9));
    }

    #[test]
    fn innermost_span_wins() {
        let inner = Span::new(4, 6);
        let outer = Span::new(0, 10);
        let e = EvalError::stuck("pi1 of non-pair")
            .with_span_if_missing(Some(inner))
            .with_span_if_missing(Some(outer));
        assert_eq!(e.span(), Some(inner));
    }

    #[test]
    fn type_errors_locate_their_node() {
        let err = TypeError::from(TypeErrorKind::UnboundVariable("x".into()))
            .with_span_if_missing(Some(Span::new(2, 3)));
        assert_eq!(err.span(), Some(Span::new(2, 3)));
        assert_eq!(err.to_string(), "unbound variable `x`");
    }
}
