//! The E1–E12 differential corpus: one closed, evaluable instance of every
//! query family in this crate, at sizes small enough for a test suite but
//! large enough that the parallel backend's cutover actually forks.
//!
//! The corpus is what the cross-backend differential suite iterates — every
//! query is evaluated on the sequential backend and on the parallel backend at
//! several thread counts, asserting bit-identical values and cost statistics —
//! and what the surface-syntax round-trip test uses as its idiom reference.
//! Keep entries *closed* (no free variables) and deterministic.

use crate::{aggregates, arith, datagen, graph, iterate, parity, powerset, relalg};
use ncql_core::expr::Expr;
use ncql_object::Value;

/// A named closed query of the corpus.
#[derive(Debug, Clone)]
pub struct CorpusEntry {
    /// Stable name, `family/variant/size`.
    pub name: String,
    /// The closed query expression.
    pub expr: Expr,
}

fn entry(name: impl Into<String>, expr: Expr) -> CorpusEntry {
    CorpusEntry {
        name: name.into(),
        expr,
    }
}

fn atoms(n: u64) -> Expr {
    Expr::constant(Value::atom_set(0..n))
}

/// Every query family in this crate, instantiated closed: parity, graph,
/// relational algebra, ordered-universe arithmetic, aggregates, powerset and
/// the iteration counters. Used by `tests/parallel_differential.rs` at the
/// workspace root.
pub fn differential_corpus() -> Vec<CorpusEntry> {
    let mut out = Vec::new();

    // E1 — parity in its three variants, spanning the cutover boundary.
    for n in [0u64, 1, 7, 64, 130] {
        out.push(entry(
            format!("parity/dcr/{n}"),
            parity::parity_dcr(atoms(n)),
        ));
        out.push(entry(
            format!("parity/esr/{n}"),
            parity::parity_esr(atoms(n)),
        ));
        out.push(entry(
            format!("parity/loop/{n}"),
            parity::parity_loop(atoms(n)),
        ));
    }

    // E2/E4 — transitive closure and friends over generated graphs.
    let path = |n: u64| Expr::constant(datagen::path_graph(n).to_value());
    let cycle = |n: u64| Expr::constant(datagen::cycle_graph(n).to_value());
    let random = |n: u64| Expr::constant(datagen::random_graph(n, 2.5 / n as f64, 7).to_value());
    for n in [6u64, 18] {
        out.push(entry(
            format!("graph/tc_dcr/path/{n}"),
            graph::tc_dcr(path(n)),
        ));
        out.push(entry(
            format!("graph/tc_log_loop/cycle/{n}"),
            graph::tc_log_loop(cycle(n)),
        ));
        out.push(entry(
            format!("graph/tc_elementwise/random/{n}"),
            graph::tc_elementwise(random(n)),
        ));
    }
    out.push(entry(
        "graph/reflexive_tc_dcr/path/10",
        graph::reflexive_tc_dcr(path(10)),
    ));
    out.push(entry(
        "graph/reachable_from/cycle/12",
        graph::reachable_from(cycle(12), Expr::atom(0)),
    ));
    out.push(entry(
        "graph/strongly_connected/cycle/10",
        graph::strongly_connected(cycle(10)),
    ));
    out.push(entry(
        "graph/symmetric_closure/path/12",
        graph::symmetric_closure(path(12)),
    ));
    out.push(entry(
        "graph/same_generation/path/8",
        graph::same_generation(path(8)),
    ));

    // E3-adjacent — classical relational algebra over random relations.
    let r = Expr::constant(datagen::random_relation(12, 40, 11).to_value());
    let s = Expr::constant(datagen::random_relation(12, 40, 13).to_value());
    out.push(entry("relalg/join", relalg::join(r.clone(), s.clone())));
    out.push(entry(
        "relalg/semijoin",
        relalg::semijoin(r.clone(), s.clone()),
    ));
    out.push(entry(
        "relalg/antijoin",
        relalg::antijoin(r.clone(), s.clone()),
    ));
    out.push(entry("relalg/select_leq", relalg::select_leq(r.clone())));
    out.push(entry("relalg/division", relalg::division(r, s)));
    out.push(entry("relalg/diagonal", relalg::diagonal(atoms(40))));

    // E7.8 — ordered-universe arithmetic toolkit.
    out.push(entry(
        "arith/strict_order/24",
        arith::strict_order(atoms(24)),
    ));
    out.push(entry("arith/successor/24", arith::successor(atoms(24))));
    out.push(entry(
        "arith/strict_order_via_tc/12",
        arith::strict_order_via_tc_of_successor(atoms(12)),
    ));
    out.push(entry(
        "arith/add_lookup/7+5",
        arith::add_lookup(
            Expr::constant(arith::addition_table(16)),
            Expr::atom(7),
            Expr::atom(5),
        ),
    ));

    // E8/Prop 6.3 — aggregates over the external arithmetic Σ.
    for n in [9u64, 70] {
        out.push(entry(
            format!("aggregates/sum_dcr/{n}"),
            aggregates::sum_dcr(atoms(n), |x| Expr::extern_call("atom_to_nat", vec![x])),
        ));
        out.push(entry(
            format!("aggregates/cardinality_dcr/{n}"),
            aggregates::cardinality_dcr(atoms(n)),
        ));
    }
    out.push(entry(
        "aggregates/cardinality_extern/33",
        aggregates::cardinality_extern(atoms(33)),
    ));
    out.push(entry(
        "aggregates/max_atom_dcr/50",
        aggregates::max_atom_dcr(atoms(50)),
    ));
    out.push(entry(
        "aggregates/min_atom_relational/20",
        aggregates::min_atom_relational(atoms(20)),
    ));
    out.push(entry(
        "aggregates/even_cardinality/21",
        aggregates::even_cardinality(atoms(21)),
    ));
    out.push(entry(
        "aggregates/double_exponential/12",
        aggregates::double_exponential(atoms(12)),
    ));

    // E8 — powerset, unbounded (kept small!) and bounded.
    out.push(entry("powerset/dcr/7", powerset::powerset_dcr(atoms(7))));
    out.push(entry(
        "powerset/bounded_small_subsets/24",
        powerset::bounded_small_subsets(atoms(24)),
    ));

    // E11 — Example 7.2 iteration counters.
    for n in [5u64, 16] {
        out.push(entry(
            format!("iterate/count_n/{n}"),
            iterate::count_n(atoms(n)),
        ));
        out.push(entry(
            format!("iterate/count_n_squared/{n}"),
            iterate::count_n_squared(atoms(n)),
        ));
        out.push(entry(
            format!("iterate/count_log_n/{n}"),
            iterate::count_log_n(atoms(n)),
        ));
        out.push(entry(
            format!("iterate/count_log_squared_n/{n}"),
            iterate::count_log_squared_n(atoms(n)),
        ));
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::eval::eval_closed;
    use std::collections::BTreeSet;

    #[test]
    fn corpus_names_are_unique_and_queries_closed() {
        let corpus = differential_corpus();
        assert!(corpus.len() >= 40, "corpus has {} entries", corpus.len());
        let names: BTreeSet<&str> = corpus.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names.len(), corpus.len(), "duplicate corpus names");
        for e in &corpus {
            assert!(
                ncql_core::analysis::free_vars(&e.expr).is_empty(),
                "{} has free variables",
                e.name
            );
        }
    }

    #[test]
    fn every_corpus_query_evaluates_sequentially() {
        for e in differential_corpus() {
            eval_closed(&e.expr).unwrap_or_else(|err| panic!("{} failed: {err}", e.name));
        }
    }
}
