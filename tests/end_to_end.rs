//! Cross-crate integration tests: surface syntax → type checking → evaluation →
//! baseline cross-checks, spanning the whole public API through the `ncql`
//! facade.

use ncql::core::analysis;
use ncql::core::eval::eval_with_stats;
use ncql::core::expr::Expr;
use ncql::object::morphism::{commutes_with, Morphism};
use ncql::object::{Type, Value};
use ncql::queries::{aggregates, datagen, graph, parity, relalg, Relation};
use ncql::surface;
use ncql::Session;

#[test]
fn surface_to_result_pipeline() {
    // Parse, typecheck and evaluate a query that mixes most constructs,
    // through the engine's one supported front door.
    let text = "let r = {(@1, @2)} union {(@2, @3)} union {(@3, @1)} in \
                dcr(empty[(atom * atom)], \\y: atom. r, \
                    \\p: ({(atom * atom)} * {(atom * atom)}). pi1 p union pi2 p, \
                    ext(\\e: (atom * atom). {pi1 e} union {pi2 e}, r))";
    let session = Session::new();
    let prepared = session.prepare(text).expect("prepares");
    assert_eq!(*prepared.ty(), Type::binary_relation());
    let outcome = session.execute(&prepared).expect("evaluates");
    // dcr with the plain union combiner over the vertex set just reproduces r.
    assert_eq!(
        outcome.value,
        Value::relation_from_pairs(vec![(1, 2), (2, 3), (3, 1)])
    );
}

#[test]
fn transitive_closure_matches_baseline_on_many_graphs() {
    let graphs = vec![
        datagen::path_graph(9),
        datagen::cycle_graph(7),
        datagen::binary_tree(10),
        datagen::grid_graph(3),
        datagen::random_graph(10, 0.2, 1),
        datagen::random_graph(12, 0.15, 2),
    ];
    for rel in graphs {
        let expected = rel.transitive_closure().to_value();
        let r = Expr::constant(rel.to_value());
        assert_eq!(
            ncql::core::eval::eval_closed(&graph::tc_dcr(r.clone())).unwrap(),
            expected
        );
        assert_eq!(
            ncql::core::eval::eval_closed(&graph::tc_log_loop(r)).unwrap(),
            expected
        );
    }
}

#[test]
fn queries_are_generic_under_order_preserving_renamings() {
    // Chandra–Harel genericity (§5): TC and parity commute with morphisms.
    let rel = datagen::random_graph(8, 0.3, 5);
    let input = rel.to_value();
    let phi = Morphism::stretch(&input.atoms(), 17);
    let tc = |v: &Value| {
        ncql::core::eval::eval_closed(&graph::tc_dcr(Expr::constant(v.clone()))).unwrap()
    };
    assert!(commutes_with(tc, &input, &phi));

    let set = Value::atom_set(vec![3, 8, 20, 21]);
    let phi2 = Morphism::shift(&set.atoms(), 1000);
    let par = |v: &Value| {
        ncql::core::eval::eval_closed(&parity::parity_dcr(Expr::constant(v.clone()))).unwrap()
    };
    assert!(commutes_with(par, &set, &phi2));
}

#[test]
fn relational_algebra_composes_with_recursion() {
    // reachable pairs restricted by a semijoin, then aggregated.
    let rel = datagen::path_graph(6);
    let tc = graph::tc_dcr(Expr::constant(rel.to_value()));
    let filtered = relalg::semijoin(
        tc,
        Expr::constant(Relation::from_pairs(vec![(3, 0), (5, 0)]).to_value()),
    );
    let count = aggregates::cardinality_dcr(ncql::core::derived::project1(
        Type::Base,
        Type::Base,
        filtered,
    ));
    let (value, stats) = eval_with_stats(&count).unwrap();
    // Pairs (x, y) in the closure with y ∈ {3, 5}: y=3 ← {0,1,2}, y=5 ← {0..4};
    // distinct first components = {0,1,2,3,4}.
    assert_eq!(value, Value::Nat(5));
    assert!(stats.work > 0);
}

#[test]
fn ac_level_reporting_matches_construct_usage() {
    let r = Expr::constant(datagen::path_graph(4).to_value());
    assert_eq!(analysis::ac_level(&relalg::select_leq(r.clone())), 1);
    assert_eq!(analysis::recursion_depth(&graph::tc_dcr(r.clone())), 1);
    let nested = ncql::queries::iterate::count_log_squared_n(Expr::constant(Value::atom_set(0..9)));
    assert_eq!(analysis::recursion_depth(&nested), 2);
    let _ = r;
}

#[test]
fn evaluation_is_deterministic_across_runs() {
    let text = "ext(\\x: atom. {(x, x)}, {@5} union {@1} union {@3})";
    let expr = surface::parse(text).unwrap();
    let first = ncql::core::eval::eval_closed(&expr).unwrap();
    for _ in 0..5 {
        assert_eq!(ncql::core::eval::eval_closed(&expr).unwrap(), first);
    }
    assert_eq!(
        first,
        Value::relation_from_pairs(vec![(1, 1), (3, 3), (5, 5)])
    );
}

#[test]
fn pretty_printer_round_trips_library_queries() {
    let r = Expr::constant(datagen::path_graph(3).to_value());
    for query in [
        graph::tc_dcr(r.clone()),
        graph::tc_log_loop(r.clone()),
        parity::parity_dcr(Expr::constant(Value::atom_set(0..4))),
        aggregates::cardinality_dcr(Expr::constant(Value::atom_set(0..4))),
    ] {
        let printed = surface::print_expr(&query);
        let reparsed = surface::parse(&printed)
            .unwrap_or_else(|e| panic!("reparse failed for {printed}: {e}"));
        assert_eq!(
            ncql::core::eval::eval_closed(&query).unwrap(),
            ncql::core::eval::eval_closed(&reparsed).unwrap()
        );
    }
}
