//! The full query corpus must be lint-clean at deny level: none of the
//! library queries the differential suites trust may trip a deny-level
//! finding (an ignored combiner argument, a doomed work bound, ...). CI runs
//! this alongside the arch lint on every push.

use ncql::core::analyze_query;
use ncql::core::externs::ExternRegistry;
use ncql::queries::corpus::differential_corpus;
use ncql::{Error, LintPolicy, SessionBuilder};

#[test]
fn corpus_is_deny_clean() {
    let registry = ExternRegistry::standard();
    for entry in differential_corpus() {
        let analysis = analyze_query(&entry.expr, &[], &registry);
        let denied: Vec<_> = analysis.deny_findings().collect();
        assert!(
            denied.is_empty(),
            "{}: deny-level lint findings: {denied:?}",
            entry.name
        );
    }
}

#[test]
fn corpus_prepares_under_a_deny_session() {
    // The engine-level gate agrees: a deny-policy session never rejects a
    // corpus query for lint reasons. (A few corpus idioms predate the
    // surface typechecker and fail `prepare_expr` with a *type* error on the
    // checked pipeline — the differential suites run them on the trusted-AST
    // path — but none may fail with a lint rejection.)
    let session = SessionBuilder::new().lint_policy(LintPolicy::Deny).build();
    let mut prepared = 0usize;
    for entry in differential_corpus() {
        match session.prepare_expr(entry.expr.clone()) {
            Ok(_) => prepared += 1,
            Err(Error::Lint { message, .. }) => {
                panic!(
                    "{}: lint rejection under deny policy: {message}",
                    entry.name
                )
            }
            Err(_) => {}
        }
    }
    assert!(
        prepared >= 40,
        "only {prepared} corpus queries prepared under the deny policy"
    );
}

#[test]
fn corpus_stays_deny_clean_under_the_optimizer() {
    // The optimizer must not manufacture lint rejections: findings describe
    // the query as written (they are computed from the raw AST), so a session
    // that both optimizes and denies behaves exactly like the plain deny
    // session on the corpus — while still rewriting the plans it prepares.
    let session = SessionBuilder::new()
        .lint_policy(LintPolicy::Deny)
        .opt_level(ncql::OptLevel::Default)
        .build();
    let mut prepared = 0usize;
    let mut fired = 0usize;
    for entry in differential_corpus() {
        match session.prepare_expr(entry.expr.clone()) {
            Ok(q) => {
                prepared += 1;
                fired += q.rewrites().len();
            }
            Err(Error::Lint { message, .. }) => {
                panic!(
                    "{}: the optimizer introduced a deny-policy rejection: {message}",
                    entry.name
                )
            }
            Err(_) => {}
        }
    }
    assert!(
        prepared >= 40,
        "only {prepared} corpus queries prepared under deny + optimizer"
    );
    assert!(
        fired > 0,
        "the optimizing deny session never rewrote anything — the level is not wired"
    );
}
