//! Base-domain morphisms and genericity of database queries (§5).
//!
//! The paper (following Chandra & Harel) defines a database query of type
//! `s → t` as a family of functions, one per interpretation of the base type `D`,
//! that commutes with every *morphism* `φ : D → D'` — an order-preserving
//! (hence injective) map between interpretations of `D`. This module provides the
//! morphism machinery so that the test suites can check genericity of concrete
//! queries: for a query `q` and a morphism `φ`, `φ_t(q(x)) = q(φ_s(x))`.

use crate::value::{Atom, Value};
use std::collections::BTreeMap;

/// An order-preserving injection on a finite set of atoms, represented as an
/// explicit mapping. Atoms outside the domain of the map are left unchanged,
/// which is adequate for testing genericity on concrete inputs whose atom set is
/// known.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Morphism {
    map: BTreeMap<Atom, Atom>,
}

impl Morphism {
    /// The identity morphism.
    pub fn identity() -> Morphism {
        Morphism {
            map: BTreeMap::new(),
        }
    }

    /// Build a morphism from explicit pairs. Returns `None` if the mapping is not
    /// strictly order-preserving (and hence not injective) on its domain.
    pub fn from_pairs<I: IntoIterator<Item = (Atom, Atom)>>(pairs: I) -> Option<Morphism> {
        let map: BTreeMap<Atom, Atom> = pairs.into_iter().collect();
        let mut prev: Option<Atom> = None;
        for (_, v) in map.iter() {
            if let Some(p) = prev {
                if *v <= p {
                    return None;
                }
            }
            prev = Some(*v);
        }
        Some(Morphism { map })
    }

    /// The morphism that shifts every atom in `atoms` by a fixed offset.
    pub fn shift(atoms: &[Atom], offset: u64) -> Morphism {
        Morphism {
            map: atoms.iter().map(|&a| (a, a + offset)).collect(),
        }
    }

    /// The morphism that multiplies every atom in `atoms` by a fixed stretch
    /// factor (≥ 1), another easy source of order-preserving injections.
    pub fn stretch(atoms: &[Atom], factor: u64) -> Morphism {
        let factor = factor.max(1);
        Morphism {
            map: atoms.iter().map(|&a| (a, a * factor)).collect(),
        }
    }

    /// Apply the morphism to a single atom.
    pub fn apply_atom(&self, a: Atom) -> Atom {
        *self.map.get(&a).unwrap_or(&a)
    }

    /// Apply the morphism structurally to a complex object value — this is the
    /// canonical extension `φ_t : t → t'` of the paper.
    pub fn apply(&self, v: &Value) -> Value {
        match v {
            Value::Atom(a) => Value::Atom(self.apply_atom(*a)),
            Value::Bool(_) | Value::Unit | Value::Nat(_) => v.clone(),
            Value::Pair(a, b) => Value::pair(self.apply(a), self.apply(b)),
            Value::Set(s) => Value::set_from(s.iter().map(|x| self.apply(x))),
        }
    }

    /// Is the morphism strictly order-preserving on the given atoms? (It is by
    /// construction on its own domain; this checks the interaction with atoms it
    /// leaves fixed, which matters when a test applies it to a value whose atoms
    /// are not all in the domain.)
    pub fn is_order_preserving_on(&self, atoms: &[Atom]) -> bool {
        let mut sorted = atoms.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        sorted
            .windows(2)
            .all(|w| self.apply_atom(w[0]) < self.apply_atom(w[1]))
    }
}

/// Check genericity of a query on one input: `φ(q(x)) == q(φ(x))`. The query is
/// given as a closure so that this helper is usable from every crate in the
/// workspace without depending on the expression language.
pub fn commutes_with<Q>(query: Q, input: &Value, phi: &Morphism) -> bool
where
    Q: Fn(&Value) -> Value,
{
    let lhs = phi.apply(&query(input));
    let rhs = query(&phi.apply(input));
    lhs == rhs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_preserves_order() {
        let atoms = vec![1, 5, 9];
        let phi = Morphism::shift(&atoms, 100);
        assert!(phi.is_order_preserving_on(&atoms));
        assert_eq!(phi.apply_atom(5), 105);
        assert_eq!(phi.apply_atom(42), 42);
    }

    #[test]
    fn from_pairs_rejects_order_reversal() {
        assert!(Morphism::from_pairs(vec![(1, 10), (2, 5)]).is_none());
        assert!(Morphism::from_pairs(vec![(1, 5), (2, 10)]).is_some());
    }

    #[test]
    fn apply_commutes_with_set_canonicalisation() {
        let v = Value::atom_set(vec![3, 1, 2]);
        let phi = Morphism::from_pairs(vec![(1, 10), (2, 20), (3, 30)]).unwrap();
        let w = phi.apply(&v);
        assert_eq!(w, Value::atom_set(vec![10, 20, 30]));
    }

    #[test]
    fn generic_query_commutes() {
        // Projection Π1 of a binary relation is a generic query.
        let q = |v: &Value| {
            let s = v.as_set().unwrap();
            Value::set_from(s.iter().map(|p| p.as_pair().unwrap().0.clone()))
        };
        let rel = Value::relation_from_pairs(vec![(1, 2), (3, 4)]);
        let phi = Morphism::shift(&rel.atoms(), 7);
        assert!(commutes_with(q, &rel, &phi));
    }

    #[test]
    fn non_generic_query_fails_to_commute() {
        // A query that hard-codes the atom 1 is not generic.
        let q = |_: &Value| Value::Atom(1);
        let rel = Value::atom_set(vec![1, 2]);
        let phi = Morphism::shift(&[1, 2], 5);
        assert!(!commutes_with(q, &rel, &phi));
    }
}
