//! Recursive-descent parser for the surface syntax.
//!
//! Every [`Expr`] node the parser builds carries the byte [`Span`] of the
//! source text it was parsed from (`expr.span`), so the type checker and the
//! evaluator can point their errors back into the query string. Parse errors
//! themselves are located the same way: [`ParseError::Unexpected`] names the
//! byte span of the offending token (or the end-of-input position), matching
//! the lexer's byte-offset convention.

use crate::lexer::{tokenize, LexError, SpannedToken, Token};
use ncql_core::span::Span;
use ncql_core::Expr;
use ncql_object::Type;
use std::fmt;

/// A parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The tokenizer failed.
    Lex(LexError),
    /// An unexpected token (or end of input) was encountered.
    Unexpected {
        /// Byte span of the offending token in the source text; an empty span
        /// at the end of the input when the input ended too early.
        span: Span,
        /// What was found (`None` = end of input).
        found: Option<Token>,
        /// What was expected.
        expected: String,
    },
}

impl ParseError {
    /// The byte span of the failure — the offending token's span, or the
    /// lexical error's span. Always within the source text.
    pub fn span(&self) -> Span {
        match self {
            ParseError::Lex(e) => e.span,
            ParseError::Unexpected { span, .. } => *span,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(e) => write!(f, "{e}"),
            ParseError::Unexpected {
                span,
                found,
                expected,
            } => match found {
                Some(t) => write!(
                    f,
                    "parse error at byte {}: expected {expected}, found `{t}`",
                    span.start
                ),
                None => write!(
                    f,
                    "parse error at byte {}: expected {expected}, found end of input",
                    span.start
                ),
            },
        }
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError::Lex(e)
    }
}

struct Parser {
    tokens: Vec<SpannedToken>,
    pos: usize,
    /// Byte length of the source text: the position reported for unexpected
    /// end of input.
    eof: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|t| &t.token)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|t| t.token.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Byte offset where the *next* token starts (end of input if exhausted).
    /// Capture this before parsing a construct; together with
    /// [`Parser::prev_end`] it brackets the construct's span.
    fn current_start(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|t| t.span.start)
            .unwrap_or(self.eof)
    }

    /// Byte offset just past the most recently consumed token.
    fn prev_end(&self) -> usize {
        if self.pos == 0 {
            0
        } else {
            self.tokens[self.pos - 1].span.end
        }
    }

    /// The span of the construct that began at byte `start` and ended with
    /// the last consumed token.
    fn span_from(&self, start: usize) -> Span {
        Span::new(start, self.prev_end().max(start))
    }

    /// The span of the current token — or an empty span at end of input.
    fn here(&self) -> Span {
        self.tokens
            .get(self.pos)
            .map(|t| t.span)
            .unwrap_or_else(|| Span::point(self.eof))
    }

    fn unexpected<T>(&self, expected: &str) -> Result<T, ParseError> {
        Err(ParseError::Unexpected {
            span: self.here(),
            found: self.peek().cloned(),
            expected: expected.to_string(),
        })
    }

    fn expect(&mut self, token: &Token) -> Result<(), ParseError> {
        if self.peek() == Some(token) {
            self.pos += 1;
            Ok(())
        } else {
            self.unexpected(&format!("`{token}`"))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.peek().cloned() {
            Some(Token::Ident(s)) => {
                self.pos += 1;
                Ok(s)
            }
            _ => self.unexpected("an identifier"),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Some(Token::Ident(s)) if s == kw => {
                self.pos += 1;
                Ok(())
            }
            _ => self.unexpected(&format!("keyword `{kw}`")),
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s == kw)
    }

    // ----- types -----

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => match s.as_str() {
                "atom" => Ok(Type::Base),
                "bool" => Ok(Type::Bool),
                "unit" => Ok(Type::Unit),
                "nat" => Ok(Type::Nat),
                _ => {
                    self.pos -= 1;
                    self.unexpected("a type (atom, bool, unit, nat, {..}, (..))")
                }
            },
            Some(Token::LBrace) => {
                let inner = self.parse_type()?;
                self.expect(&Token::RBrace)?;
                Ok(Type::set(inner))
            }
            Some(Token::LParen) => {
                let left = self.parse_type()?;
                match self.next() {
                    Some(Token::Star) => {
                        let right = self.parse_type()?;
                        self.expect(&Token::RParen)?;
                        Ok(Type::prod(left, right))
                    }
                    Some(Token::Arrow) => {
                        let right = self.parse_type()?;
                        self.expect(&Token::RParen)?;
                        Ok(Type::fun(left, right))
                    }
                    Some(Token::RParen) => Ok(left),
                    _ => {
                        self.pos -= 1;
                        self.unexpected("`*`, `->` or `)` in a type")
                    }
                }
            }
            _ => {
                if self.pos > 0 {
                    self.pos -= 1;
                }
                self.unexpected("a type")
            }
        }
    }

    // ----- expressions -----

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        let start = self.current_start();
        if self.peek() == Some(&Token::Backslash) {
            self.pos += 1;
            let name = self.expect_ident()?;
            self.expect(&Token::Colon)?;
            let ty = self.parse_type()?;
            self.expect(&Token::Dot)?;
            let body = self.parse_expr()?;
            return Ok(Expr::lam(name, ty, body).at(self.span_from(start)));
        }
        if self.peek_keyword("let") {
            self.pos += 1;
            let name = self.expect_ident()?;
            self.expect(&Token::Equals)?;
            let bound = self.parse_expr()?;
            self.expect_keyword("in")?;
            let body = self.parse_expr()?;
            return Ok(Expr::let_in(name, bound, body).at(self.span_from(start)));
        }
        if self.peek_keyword("if") {
            self.pos += 1;
            let c = self.parse_expr()?;
            self.expect_keyword("then")?;
            let t = self.parse_expr()?;
            self.expect_keyword("else")?;
            let e = self.parse_expr()?;
            return Ok(Expr::ite(c, t, e).at(self.span_from(start)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let start = self.current_start();
        let left = self.parse_union()?;
        match self.peek() {
            Some(Token::Equals) => {
                self.pos += 1;
                let right = self.parse_union()?;
                Ok(Expr::eq(left, right).at(self.span_from(start)))
            }
            Some(Token::Leq) => {
                self.pos += 1;
                let right = self.parse_union()?;
                Ok(Expr::leq(left, right).at(self.span_from(start)))
            }
            _ => Ok(left),
        }
    }

    fn parse_union(&mut self) -> Result<Expr, ParseError> {
        let start = self.current_start();
        let mut left = self.parse_primary()?;
        while self.peek_keyword("union") {
            self.pos += 1;
            let right = self.parse_primary()?;
            left = Expr::union(left, right).at(self.span_from(start));
        }
        Ok(left)
    }

    fn parse_args(&mut self, count: usize) -> Result<Vec<Expr>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut args = Vec::with_capacity(count);
        for i in 0..count {
            if i > 0 {
                self.expect(&Token::Comma)?;
            }
            args.push(self.parse_expr()?);
        }
        self.expect(&Token::RParen)?;
        Ok(args)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let start = self.current_start();
        let expr = match self.next() {
            Some(Token::Number(n)) => Expr::nat(n),
            Some(Token::AtomLit(n)) => Expr::atom(n),
            Some(Token::LBrace) => {
                let inner = self.parse_expr()?;
                self.expect(&Token::RBrace)?;
                Expr::singleton(inner)
            }
            Some(Token::LParen) => {
                if self.peek() == Some(&Token::RParen) {
                    self.pos += 1;
                    return Ok(Expr::unit().at(self.span_from(start)));
                }
                let first = self.parse_expr()?;
                match self.next() {
                    Some(Token::Comma) => {
                        let second = self.parse_expr()?;
                        self.expect(&Token::RParen)?;
                        Expr::pair(first, second)
                    }
                    // A parenthesised expression keeps its own (inner) span.
                    Some(Token::RParen) => return Ok(first),
                    _ => {
                        self.pos -= 1;
                        return self.unexpected("`,` or `)`");
                    }
                }
            }
            Some(Token::Ident(name)) => self.parse_ident_form(name)?,
            _ => {
                if self.pos > 0 {
                    self.pos -= 1;
                }
                return self.unexpected("an expression");
            }
        };
        Ok(expr.at(self.span_from(start)))
    }

    fn parse_ident_form(&mut self, name: String) -> Result<Expr, ParseError> {
        match name.as_str() {
            "true" => Ok(Expr::bool_val(true)),
            "false" => Ok(Expr::bool_val(false)),
            "unit" => Ok(Expr::unit()),
            "pi1" => Ok(Expr::proj1(self.parse_primary()?)),
            "pi2" => Ok(Expr::proj2(self.parse_primary()?)),
            "empty" => {
                self.expect(&Token::LBracket)?;
                let ty = self.parse_type()?;
                self.expect(&Token::RBracket)?;
                Ok(Expr::empty(ty))
            }
            "isempty" => {
                let mut a = self.parse_args(1)?;
                Ok(Expr::is_empty(a.remove(0)))
            }
            "ext" => {
                let mut a = self.parse_args(2)?;
                let e = a.remove(1);
                let f = a.remove(0);
                Ok(Expr::ext(f, e))
            }
            "apply" => {
                let mut a = self.parse_args(2)?;
                let arg = a.remove(1);
                let f = a.remove(0);
                Ok(Expr::app(f, arg))
            }
            "dcr" | "sru" => {
                let mut a = self.parse_args(4)?;
                let arg = a.remove(3);
                let u = a.remove(2);
                let f = a.remove(1);
                let e = a.remove(0);
                Ok(if name == "dcr" {
                    Expr::dcr(e, f, u, arg)
                } else {
                    Expr::sru(e, f, u, arg)
                })
            }
            "sri" | "esr" => {
                let mut a = self.parse_args(3)?;
                let arg = a.remove(2);
                let i = a.remove(1);
                let e = a.remove(0);
                Ok(if name == "sri" {
                    Expr::sri(e, i, arg)
                } else {
                    Expr::esr(e, i, arg)
                })
            }
            "bdcr" => {
                let mut a = self.parse_args(5)?;
                let arg = a.remove(4);
                let bound = a.remove(3);
                let u = a.remove(2);
                let f = a.remove(1);
                let e = a.remove(0);
                Ok(Expr::bdcr(e, f, u, bound, arg))
            }
            "bsri" => {
                let mut a = self.parse_args(4)?;
                let arg = a.remove(3);
                let bound = a.remove(2);
                let i = a.remove(1);
                let e = a.remove(0);
                Ok(Expr::bsri(e, i, bound, arg))
            }
            "logloop" | "loop" => {
                let mut a = self.parse_args(3)?;
                let init = a.remove(2);
                let set = a.remove(1);
                let f = a.remove(0);
                Ok(if name == "logloop" {
                    Expr::log_loop(f, set, init)
                } else {
                    Expr::loop_(f, set, init)
                })
            }
            "blogloop" | "bloop" => {
                let mut a = self.parse_args(4)?;
                let init = a.remove(3);
                let set = a.remove(2);
                let bound = a.remove(1);
                let f = a.remove(0);
                Ok(if name == "blogloop" {
                    Expr::blog_loop(f, bound, set, init)
                } else {
                    Expr::bloop(f, bound, set, init)
                })
            }
            _ => {
                // Extern call if followed by '(', otherwise a variable.
                if self.peek() == Some(&Token::LParen) {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if self.peek() != Some(&Token::RParen) {
                        loop {
                            args.push(self.parse_expr()?);
                            if self.peek() == Some(&Token::Comma) {
                                self.pos += 1;
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect(&Token::RParen)?;
                    Ok(Expr::extern_call(name, args))
                } else {
                    Ok(Expr::var(name))
                }
            }
        }
    }
}

/// Parse a complete expression from surface text. Every node of the result
/// carries the byte span of the text it was parsed from.
pub fn parse_expr(text: &str) -> Result<Expr, ParseError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        eof: text.len(),
    };
    let expr = parser.parse_expr()?;
    if parser.pos != parser.tokens.len() {
        return parser.unexpected("end of input");
    }
    Ok(expr)
}

/// Parse a type from surface text.
pub fn parse_type(text: &str) -> Result<Type, ParseError> {
    let tokens = tokenize(text)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        eof: text.len(),
    };
    let ty = parser.parse_type()?;
    if parser.pos != parser.tokens.len() {
        return parser.unexpected("end of input");
    }
    Ok(ty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ncql_core::eval::eval_closed;
    use ncql_core::typecheck::typecheck_closed;
    use ncql_core::ExprKind;
    use ncql_object::Value;

    #[test]
    fn parses_types() {
        assert_eq!(parse_type("atom").unwrap(), Type::Base);
        assert_eq!(
            parse_type("{(atom * atom)}").unwrap(),
            Type::binary_relation()
        );
        assert_eq!(
            parse_type("(atom -> {bool})").unwrap(),
            Type::fun(Type::Base, Type::set(Type::Bool))
        );
        assert!(parse_type("notatype!").is_err());
    }

    #[test]
    fn parses_literals_and_operators() {
        assert_eq!(parse_expr("true").unwrap(), Expr::bool_val(true));
        assert_eq!(parse_expr("@7").unwrap(), Expr::atom(7));
        assert_eq!(parse_expr("7").unwrap(), Expr::nat(7));
        assert_eq!(
            parse_expr("{@1} union {@2}").unwrap(),
            Expr::union(
                Expr::singleton(Expr::atom(1)),
                Expr::singleton(Expr::atom(2))
            )
        );
        assert_eq!(
            parse_expr("@1 <= @2").unwrap(),
            Expr::leq(Expr::atom(1), Expr::atom(2))
        );
    }

    #[test]
    fn parses_lambda_let_if() {
        let e = parse_expr("\\x: atom. if x = @1 then {x} else empty[atom]").unwrap();
        assert!(matches!(e.kind, ExprKind::Lam(_, _, _)));
        let l = parse_expr("let r = {@1} in r union r").unwrap();
        assert_eq!(eval_closed(&l).unwrap(), Value::atom_set(vec![1]));
    }

    #[test]
    fn parses_and_evaluates_parity_query() {
        let text = "dcr(false, \\y: atom. true, \\p: (bool * bool). \
                    if pi1 p then (if pi2 p then false else true) else pi2 p, \
                    {@1} union {@2} union {@3})";
        let e = parse_expr(text).unwrap();
        assert!(typecheck_closed(&e).is_ok());
        assert_eq!(eval_closed(&e).unwrap(), Value::Bool(true));
    }

    #[test]
    fn parses_ext_and_iterators() {
        let e = parse_expr("ext(\\x: atom. {(x, x)}, {@1} union {@2})").unwrap();
        assert_eq!(
            eval_closed(&e).unwrap(),
            Value::relation_from_pairs(vec![(1, 1), (2, 2)])
        );
        let l =
            parse_expr("logloop(\\r: {atom}. r union {@9}, {@1} union {@2}, empty[atom])").unwrap();
        assert_eq!(eval_closed(&l).unwrap(), Value::atom_set(vec![9]));
    }

    #[test]
    fn parses_extern_calls_and_variables() {
        let e = parse_expr("nat_add(2, 3)").unwrap();
        assert_eq!(eval_closed(&e).unwrap(), Value::Nat(5));
        let v = parse_expr("some_relation").unwrap();
        assert_eq!(v, Expr::var("some_relation"));
    }

    #[test]
    fn reports_errors_with_positions() {
        assert!(parse_expr("dcr(true, true)").is_err());
        assert!(parse_expr("{@1} union").is_err());
        assert!(parse_expr("(@1, @2").is_err());
        assert!(parse_expr("@1 @2").is_err());
        let err = parse_expr("if true then @1").unwrap_err();
        assert!(err.to_string().contains("else"));
    }

    #[test]
    fn unexpected_tokens_report_byte_spans() {
        // The offending token is `@2` at bytes 3..5: the same unit (byte
        // offsets) the lexer reports, not a token index.
        let err = parse_expr("@1 @2").unwrap_err();
        match &err {
            ParseError::Unexpected { span, found, .. } => {
                assert_eq!(*span, Span::new(3, 5));
                assert_eq!(
                    found.as_ref().map(|t| t.to_string()),
                    Some("@2".to_string())
                );
            }
            other => panic!("expected Unexpected, got {other:?}"),
        }
        assert!(err.to_string().starts_with("parse error at byte 3"));
        // A missing closing token at end of input reports an empty span just
        // past the text.
        let eof = parse_expr("(@1, @2").unwrap_err();
        assert_eq!(eof.span(), Span::point(7));
        assert!(eof.to_string().contains("end of input"));
        assert!(eof.to_string().starts_with("parse error at byte 7"));
        // Input that ends mid-construct re-points at the last token, byte-wise.
        let tail = parse_expr("{@1} union").unwrap_err();
        assert_eq!(tail.span(), Span::new(5, 10));
    }

    #[test]
    fn every_parsed_node_is_spanned_within_the_source() {
        let text = "let r = {(@1, @2)} in dcr(empty[(atom * atom)], \\y: atom. r, \
                    \\p: ({(atom * atom)} * {(atom * atom)}). pi1 p union pi2 p, {@1} union {@2})";
        let e = parse_expr(text).unwrap();
        let mut nodes = 0usize;
        e.visit(&mut |n| {
            nodes += 1;
            let span = n.span.expect("parsed node lacks a span");
            assert!(span.start <= span.end, "inverted span {span}");
            assert!(span.end <= text.len(), "span {span} exceeds source");
            assert!(!span.is_empty(), "parsed node has an empty span");
        });
        assert!(nodes >= 20, "visited only {nodes} nodes");
        // The root covers the whole text.
        assert_eq!(e.span, Some(Span::new(0, text.len())));
    }

    #[test]
    fn spans_slice_the_source_to_the_subterm() {
        let text = "{@1} union {@23}";
        let e = parse_expr(text).unwrap();
        assert_eq!(e.span, Some(Span::new(0, text.len())));
        if let ExprKind::Union(a, b) = &e.kind {
            let sa = a.span.unwrap();
            let sb = b.span.unwrap();
            assert_eq!(&text[sa.start..sa.end], "{@1}");
            assert_eq!(&text[sb.start..sb.end], "{@23}");
        } else {
            panic!("expected a union");
        }
    }

    #[test]
    fn parses_bounded_recursors() {
        let text = "bdcr(empty[atom], \\y: atom. {y}, \
                    \\p: ({atom} * {atom}). pi1 p union pi2 p, \
                    {@1} union {@2}, {@1} union {@2} union {@3})";
        let e = parse_expr(text).unwrap();
        assert_eq!(eval_closed(&e).unwrap(), Value::atom_set(vec![1, 2]));
    }
}
